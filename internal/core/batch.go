package core

import (
	"fmt"

	"tdb/internal/interval"
)

// This file holds the columnar batch editions of the stream operators: the
// same single-pass algorithms as engine.go/semijoin.go/merge.go/coalesce.go,
// rewritten over flat endpoint columns in the style of Piatov et al.'s
// cache-efficient sweeping. A kernel sweeps two sorted []interval.Time
// column pairs with integer cursors, keeps its active tuples in pooled
// gapless arrays (arena.go), and reports matches as *row indexes* into the
// input columns — materialization is the caller's concern, so shard workers
// and the serial driver alike move no row data through the sweep.
//
// Each kernel is a faithful translation of its row-at-a-time counterpart
// under the ReadSweep policy: same read order, same garbage-collection
// criteria, same per-turn probe accounting, and — load-bearing for the
// engine's equivalence contract — the same emission order, which is why
// state removal compacts in insertion order instead of swap-removing.
// The row operators remain the reference implementation (engine option
// RowExec) and the oracle for the equivalence property tests.

// Cols is the columnar lifespan view a batch kernel sweeps over: parallel
// ValidFrom/ValidTo columns, row i spanning [TS[i], TE[i]). Kernels only
// read endpoints; value columns stay wherever the caller keeps them
// (relation.Batch, engine row slices) and are joined back by index.
type Cols struct {
	TS, TE []interval.Time
}

// Len reports the number of rows in the view.
func (c Cols) Len() int { return len(c.TS) }

// Span returns row i's lifespan.
func (c Cols) Span(i int) interval.Interval {
	return interval.Interval{Start: c.TS[i], End: c.TE[i]}
}

// verifyAsc is the batch edition of the VerifyOrder wrapping: one upfront
// pass over the sort-key column instead of a per-element check in the sweep.
func verifyAsc(name, side string, key []interval.Time) error {
	for i := 1; i < len(key); i++ {
		if key[i] < key[i-1] {
			return fmt.Errorf("%s: %s input violates sort order at row %d: %d after %d", name, side, i, key[i], key[i-1])
		}
	}
	return nil
}

// BatchContainJoinTSTS is the columnar ContainJoinTSTS under ReadSweep:
// both inputs sorted on ValidFrom ascending, state = {x spanning the Y
// ValidFrom frontier} (the sweep policy keeps the lookahead component
// empty, so no y is ever retained). emit receives row indexes into x and y;
// pairs appear in exactly the row engine's order: grouped by the y that
// completes them, x's in arrival order within each group.
func BatchContainJoinTSTS(x, y Cols, opt Options, emit func(xi, yi int32)) error {
	const name = "contain-join[TS↑,TS↑]"
	if opt.VerifyOrder {
		if err := verifyAsc(name, "X", x.TS); err != nil {
			return err
		}
		if err := verifyAsc(name, "Y", y.TS); err != nil {
			return err
		}
	}
	probe := opt.Probe
	probe.SetBuffers(2)

	ar := acquireSweep()
	ats, ate, aidx := ar.x.ts[:0], ar.x.te[:0], ar.x.idx[:0]
	defer func() {
		ar.x.ts, ar.x.te, ar.x.idx = ats, ate, aidx
		ar.release()
	}()

	nx, ny := len(x.TS), len(y.TS)
	xi, yi := 0, 0
	//tdb:hotpath
	for {
		xok := xi < nx
		// Termination: Y exhausted (the spanning set can complete no more
		// pairs — no y is ever retained under sweep), or X exhausted with
		// nothing retained.
		if yi >= ny || (!xok && len(ats) == 0) {
			break
		}
		ys := y.TS[yi]
		if xok && x.TS[xi] <= ys {
			probe.IncReadLeft()
			// Retain x only if its lifespan spans the Y ValidFrom frontier.
			if x.TE[xi] > ys {
				if len(ats) == cap(ats) {
					probe.IncStateGrow()
				}
				ats = append(ats, x.TS[xi])
				ate = append(ate, x.TE[xi])
				aidx = append(aidx, int32(xi))
				probe.StateAdd(1)
				probe.ObserveActive(int64(len(ats)))
				if err := opt.checkLimit(); err != nil {
					return orderError(name, err)
				}
			}
			opt.observe()
			xi++
			continue
		}
		probe.IncReadRight()
		yte := y.TE[yi]
		// Garbage collection: x is dead once x.TE ≤ the Y ValidFrom
		// frontier (Section 4.2.1). Compact in insertion order.
		k := 0
		for j := 0; j < len(ats); j++ {
			if ate[j] <= ys {
				continue
			}
			ats[k], ate[k], aidx[k] = ats[j], ate[j], aidx[j]
			k++
		}
		probe.StateRemove(int64(len(ats) - k))
		ats, ate, aidx = ats[:k], ate[:k], aidx[:k]
		// Match surviving x's: x.TS < y.TS ∧ y.TE < x.TE.
		probe.IncComparisons(int64(k))
		for j := 0; j < k; j++ {
			if ats[j] < ys && yte < ate[j] {
				probe.IncEmitted(1)
				emit(aidx[j], int32(yi))
			}
		}
		opt.observe()
		yi++
	}
	probe.StateRemove(int64(len(ats)))
	opt.observe()
	return nil
}

// BatchOverlapJoin is the columnar OverlapJoin under ReadSweep: both
// inputs sorted on ValidFrom ascending, one spanning set per input. emit
// receives row indexes into x and y, in the row engine's emission order.
func BatchOverlapJoin(x, y Cols, opt Options, emit func(xi, yi int32)) error {
	const name = "overlap-join[TS↑,TS↑]"
	if opt.VerifyOrder {
		if err := verifyAsc(name, "X", x.TS); err != nil {
			return err
		}
		if err := verifyAsc(name, "Y", y.TS); err != nil {
			return err
		}
	}
	probe := opt.Probe
	probe.SetBuffers(2)

	ar := acquireSweep()
	xts, xte, xidx := ar.x.ts[:0], ar.x.te[:0], ar.x.idx[:0]
	yts, yte, yidx := ar.y.ts[:0], ar.y.te[:0], ar.y.idx[:0]
	defer func() {
		ar.x.ts, ar.x.te, ar.x.idx = xts, xte, xidx
		ar.y.ts, ar.y.te, ar.y.idx = yts, yte, yidx
		ar.release()
	}()

	nx, ny := len(x.TS), len(y.TS)
	xi, yi := 0, 0
	//tdb:hotpath
	for {
		xok := xi < nx
		yok := yi < ny
		if !xok && !yok {
			break
		}
		if (!xok && len(xts) == 0) || (!yok && len(yts) == 0) {
			break
		}
		if xok && (!yok || x.TS[xi] <= y.TS[yi]) {
			xs, xe := x.TS[xi], x.TE[xi]
			probe.IncReadLeft()
			// GC: y is dead once y.TE ≤ the X ValidFrom frontier.
			k := 0
			for j := 0; j < len(yts); j++ {
				if yte[j] <= xs {
					continue
				}
				yts[k], yte[k], yidx[k] = yts[j], yte[j], yidx[j]
				k++
			}
			probe.StateRemove(int64(len(yts) - k))
			yts, yte, yidx = yts[:k], yte[:k], yidx[:k]
			// Surviving y have y.TE > x.TS; intersection reduces to y.TS < x.TE.
			probe.IncComparisons(int64(k))
			for j := 0; j < k; j++ {
				if yts[j] < xe {
					probe.IncEmitted(1)
					emit(int32(xi), yidx[j])
				}
			}
			// Retain x only if it spans the Y ValidFrom frontier (with Y
			// exhausted, nothing ahead can intersect it).
			if yok && xe > y.TS[yi] {
				if len(xts) == cap(xts) {
					probe.IncStateGrow()
				}
				xts = append(xts, xs)
				xte = append(xte, xe)
				xidx = append(xidx, int32(xi))
				probe.StateAdd(1)
				probe.ObserveActive(int64(len(xts)))
				if err := opt.checkLimit(); err != nil {
					return orderError(name, err)
				}
			}
			opt.observe()
			xi++
			continue
		}
		ys, ye := y.TS[yi], y.TE[yi]
		probe.IncReadRight()
		k := 0
		for j := 0; j < len(xts); j++ {
			if xte[j] <= ys {
				continue
			}
			xts[k], xte[k], xidx[k] = xts[j], xte[j], xidx[j]
			k++
		}
		probe.StateRemove(int64(len(xts) - k))
		xts, xte, xidx = xts[:k], xte[:k], xidx[:k]
		probe.IncComparisons(int64(k))
		for j := 0; j < k; j++ {
			if xts[j] < ye {
				probe.IncEmitted(1)
				emit(xidx[j], int32(yi))
			}
		}
		if xok && ye > x.TS[xi] {
			if len(yts) == cap(yts) {
				probe.IncStateGrow()
			}
			yts = append(yts, ys)
			yte = append(yte, ye)
			yidx = append(yidx, int32(yi))
			probe.StateAdd(1)
			probe.ObserveActive(int64(len(yts)))
			if err := opt.checkLimit(); err != nil {
				return orderError(name, err)
			}
		}
		opt.observe()
		yi++
	}
	probe.StateRemove(int64(len(xts) + len(yts)))
	opt.observe()
	return nil
}

// batchContainPairScan is the columnar containPairScan (Figure 6): stream a
// holds candidate containers sorted on ValidFrom ascending, stream b the
// candidate containees sorted on ValidTo ascending; no state beyond the two
// cursors. emit receives indexes into a (emitA) or b (!emitA).
func batchContainPairScan(name string, a, b Cols, opt Options, emitA bool, emit func(int32)) error {
	if opt.VerifyOrder {
		if err := verifyAsc(name, "container", a.TS); err != nil {
			return err
		}
		if err := verifyAsc(name, "containee", b.TE); err != nil {
			return err
		}
	}
	probe := opt.Probe
	probe.SetBuffers(2)

	na, nb := len(a.TS), len(b.TS)
	ai, bi := 0, 0
	//tdb:hotpath
	for ai < na && bi < nb {
		probe.IncComparisons(1)
		switch {
		case b.TS[bi] <= a.TS[ai]:
			// b starts no later than the earliest remaining a: strictly
			// inside none of them.
			bi++
			probe.IncReadRight()
		case b.TE[bi] < a.TE[ai]:
			// a.TS < b.TS ∧ b.TE < a.TE: a contains b.
			probe.IncEmitted(1)
			if emitA {
				emit(int32(ai))
				ai++
				probe.IncReadLeft()
			} else {
				emit(int32(bi))
				bi++
				probe.IncReadRight()
			}
		default:
			// b.TE ≥ a.TE: no remaining b ends strictly inside a.
			ai++
			probe.IncReadLeft()
		}
		opt.observe()
	}
	return nil
}

// BatchContainSemijoin is the columnar ContainSemijoin: X sorted on
// ValidFrom ascending, Y on ValidTo ascending; emits X row indexes in X
// input order.
func BatchContainSemijoin(x, y Cols, opt Options, emit func(xi int32)) error {
	return batchContainPairScan("contain-semijoin[TS↑,TE↑]", x, y, opt, true, emit)
}

// BatchContainedSemijoin is the columnar ContainedSemijoin: X sorted on
// ValidTo ascending, Y on ValidFrom ascending; emits X row indexes in X
// input order.
func BatchContainedSemijoin(x, y Cols, opt Options, emit func(xi int32)) error {
	return batchContainPairScan("contained-semijoin[TE↑,TS↑]", y, x, opt, false, emit)
}

// BatchOverlapSemijoin is the columnar OverlapSemijoin: both inputs sorted
// on ValidFrom ascending, workspace exactly the two cursors; emits X row
// indexes in X input order.
func BatchOverlapSemijoin(x, y Cols, opt Options, emit func(xi int32)) error {
	const name = "overlap-semijoin[TS↑,TS↑]"
	if opt.VerifyOrder {
		if err := verifyAsc(name, "X", x.TS); err != nil {
			return err
		}
		if err := verifyAsc(name, "Y", y.TS); err != nil {
			return err
		}
	}
	probe := opt.Probe
	probe.SetBuffers(2)

	nx, ny := len(x.TS), len(y.TS)
	xi, yi := 0, 0
	//tdb:hotpath
	for xi < nx && yi < ny {
		probe.IncComparisons(1)
		switch {
		case x.TE[xi] <= y.TS[yi]:
			// x ends before the earliest remaining y begins.
			xi++
			probe.IncReadLeft()
		case y.TE[yi] <= x.TS[xi]:
			// y ends before x (and every later x) begins.
			yi++
			probe.IncReadRight()
		default:
			probe.IncEmitted(1)
			emit(int32(xi))
			xi++
			probe.IncReadLeft()
		}
		opt.observe()
	}
	return nil
}

// BatchContainSemijoinTSTS is the columnar ContainSemijoinTSTS: both inputs
// sorted on ValidFrom ascending, state = unmatched x spanning the frontier.
// Emission follows witness-discovery order, exactly like the row engine.
func BatchContainSemijoinTSTS(x, y Cols, opt Options, emit func(xi int32)) error {
	const name = "contain-semijoin[TS↑,TS↑]"
	if opt.VerifyOrder {
		if err := verifyAsc(name, "X", x.TS); err != nil {
			return err
		}
		if err := verifyAsc(name, "Y", y.TS); err != nil {
			return err
		}
	}
	probe := opt.Probe
	probe.SetBuffers(2)

	ar := acquireSweep()
	sts, ste, sidx := ar.x.ts[:0], ar.x.te[:0], ar.x.idx[:0]
	defer func() {
		ar.x.ts, ar.x.te, ar.x.idx = sts, ste, sidx
		ar.release()
	}()

	nx, ny := len(x.TS), len(y.TS)
	xi, yi := 0, 0
	//tdb:hotpath
	for {
		xok := xi < nx
		if yi >= ny || (!xok && len(sts) == 0) {
			break
		}
		ys := y.TS[yi]
		if xok && x.TS[xi] <= ys {
			probe.IncReadLeft()
			if len(sts) == cap(sts) {
				probe.IncStateGrow()
			}
			sts = append(sts, x.TS[xi])
			ste = append(ste, x.TE[xi])
			sidx = append(sidx, int32(xi))
			probe.StateAdd(1)
			probe.ObserveActive(int64(len(sts)))
			if err := opt.checkLimit(); err != nil {
				return orderError(name, err)
			}
			opt.observe()
			xi++
			continue
		}
		probe.IncReadRight()
		yte := y.TE[yi]
		// Emit and retire the x that contain y; retire the x that can
		// contain no future y (future y.TE > y.TS ≥ this y.TS).
		probe.IncComparisons(int64(len(sts)))
		k := 0
		removed := 0
		for j := 0; j < len(sts); j++ {
			switch {
			case sts[j] < ys && yte < ste[j]:
				probe.IncEmitted(1)
				emit(sidx[j])
				removed++
			case ste[j] <= ys:
				removed++
			default:
				sts[k], ste[k], sidx[k] = sts[j], ste[j], sidx[j]
				k++
			}
		}
		probe.StateRemove(int64(removed))
		sts, ste, sidx = sts[:k], ste[:k], sidx[:k]
		opt.observe()
		yi++
	}
	probe.StateRemove(int64(len(sts)))
	opt.observe()
	return nil
}

// BatchContainedSemijoinTSTS is the columnar ContainedSemijoinTSTS: both
// inputs sorted on ValidFrom ascending, state = candidate container ys
// spanning the X frontier; emits X row indexes in X input order.
func BatchContainedSemijoinTSTS(x, y Cols, opt Options, emit func(xi int32)) error {
	const name = "contained-semijoin[TS↑,TS↑]"
	if opt.VerifyOrder {
		if err := verifyAsc(name, "X", x.TS); err != nil {
			return err
		}
		if err := verifyAsc(name, "Y", y.TS); err != nil {
			return err
		}
	}
	probe := opt.Probe
	probe.SetBuffers(2)

	ar := acquireSweep()
	sts, ste := ar.y.ts[:0], ar.y.te[:0]
	defer func() {
		ar.y.ts, ar.y.te = sts, ste
		ar.release()
	}()

	nx, ny := len(x.TS), len(y.TS)
	xi, yi := 0, 0
	//tdb:hotpath
	for xi < nx {
		xs := x.TS[xi]
		// Pull every y starting strictly before x; later y cannot contain
		// it (a container must start strictly earlier).
		if yi < ny && y.TS[yi] < xs {
			probe.IncReadRight()
			if y.TE[yi] > xs { // not dead on arrival
				if len(sts) == cap(sts) {
					probe.IncStateGrow()
				}
				sts = append(sts, y.TS[yi])
				ste = append(ste, y.TE[yi])
				probe.StateAdd(1)
				probe.ObserveActive(int64(len(sts)))
				if err := opt.checkLimit(); err != nil {
					return orderError(name, err)
				}
			}
			opt.observe()
			yi++
			continue
		}
		probe.IncReadLeft()
		xe := x.TE[xi]
		// GC: y can contain an x starting at or after xs only if y.TE > xs.
		k := 0
		for j := 0; j < len(sts); j++ {
			if ste[j] <= xs {
				continue
			}
			sts[k], ste[k] = sts[j], ste[j]
			k++
		}
		probe.StateRemove(int64(len(sts) - k))
		sts, ste = sts[:k], ste[:k]
		// First container wins; comparisons counted to the witness, like
		// the row engine's early-exit scan.
		scanned := 0
		for j := 0; j < k; j++ {
			scanned++
			if sts[j] < xs && xe < ste[j] {
				probe.IncEmitted(1)
				emit(int32(xi))
				break
			}
		}
		probe.IncComparisons(int64(scanned))
		opt.observe()
		xi++
	}
	probe.StateRemove(int64(len(sts)))
	opt.observe()
	return nil
}

// batchMergeGroupScan is the columnar mergeGroupScan: merge on endpoint
// keys (ValidFrom or ValidTo column per side), buffer one equal-key Y group
// of row indexes, filter with the residual on raw endpoints. residual may
// be nil (pure equality).
func batchMergeGroupScan(x, y Cols, keyXEnd, keyYEnd bool,
	residual func(xs, xe, ys, ye interval.Time) bool,
	opt Options, semijoin bool, emitPair func(xi, yi int32), emitX func(int32)) error {

	const name = "merge-group-join"
	kx := x.TS
	if keyXEnd {
		kx = x.TE
	}
	ky := y.TS
	if keyYEnd {
		ky = y.TE
	}
	if opt.VerifyOrder {
		if err := verifyAsc(name, "X", kx); err != nil {
			return err
		}
		if err := verifyAsc(name, "Y", ky); err != nil {
			return err
		}
	}
	probe := opt.Probe
	probe.SetBuffers(2)

	ar := acquireSweep()
	grp := ar.grp[:0]
	defer func() {
		ar.grp = grp
		ar.release()
	}()

	groupKey := interval.MinTime
	nx, ny := len(kx), len(ky)
	xi, yi := 0, 0
	//tdb:hotpath
	for xi < nx {
		k := kx[xi]

		// Refill the group when x has moved past it: discard smaller-keyed
		// y rows, then buffer the next whole equal-key group.
		if len(grp) == 0 || groupKey < k {
			probe.StateRemove(int64(len(grp)))
			grp = grp[:0]
			for yi < ny {
				probe.IncComparisons(1)
				if ky[yi] >= k {
					break
				}
				yi++
				probe.IncReadRight()
			}
			if yi < ny {
				groupKey = ky[yi]
				for yi < ny && ky[yi] == groupKey {
					grp = append(grp, int32(yi))
					probe.IncReadRight()
					probe.StateAdd(1)
					yi++
				}
			}
			if len(grp) == 0 {
				break // Y exhausted: no remaining x can match
			}
		}

		if groupKey > k {
			// x is behind the buffered group: it matches nothing.
			xi++
			probe.IncReadLeft()
			continue
		}

		probe.IncReadLeft()
		xs, xe := x.TS[xi], x.TE[xi]
		for _, gj := range grp {
			probe.IncComparisons(1)
			if residual == nil || residual(xs, xe, y.TS[gj], y.TE[gj]) {
				probe.IncEmitted(1)
				if semijoin {
					emitX(int32(xi))
					break
				}
				emitPair(int32(xi), gj)
			}
		}
		xi++
	}
	probe.StateRemove(int64(len(grp)))
	return nil
}

// BatchMeetsJoin pairs x with y when X.TE = Y.TS; X sorted on ValidTo
// ascending, Y on ValidFrom ascending.
func BatchMeetsJoin(x, y Cols, opt Options, emit func(xi, yi int32)) error {
	return batchMergeGroupScan(x, y, true, false, nil, opt, false, emit, nil)
}

// BatchEqualJoin pairs x with y when the lifespans are identical; both
// inputs sorted on ValidFrom ascending.
func BatchEqualJoin(x, y Cols, opt Options, emit func(xi, yi int32)) error {
	residual := func(_, xe, _, ye interval.Time) bool { return xe == ye }
	return batchMergeGroupScan(x, y, false, false, residual, opt, false, emit, nil)
}

// BatchStartsJoin pairs x with y when X.TS = Y.TS ∧ X.TE < Y.TE; both
// inputs sorted on ValidFrom ascending.
func BatchStartsJoin(x, y Cols, opt Options, emit func(xi, yi int32)) error {
	residual := func(_, xe, _, ye interval.Time) bool { return xe < ye }
	return batchMergeGroupScan(x, y, false, false, residual, opt, false, emit, nil)
}

// BatchFinishesJoin pairs x with y when X.TE = Y.TE ∧ X.TS > Y.TS; both
// inputs sorted on ValidTo ascending.
func BatchFinishesJoin(x, y Cols, opt Options, emit func(xi, yi int32)) error {
	residual := func(xs, _, ys, _ interval.Time) bool { return xs > ys }
	return batchMergeGroupScan(x, y, true, true, residual, opt, false, emit, nil)
}

// BatchMeetsSemijoin selects each x met at its end by some y.
func BatchMeetsSemijoin(x, y Cols, opt Options, emit func(xi int32)) error {
	return batchMergeGroupScan(x, y, true, false, nil, opt, true, nil, emit)
}

// BatchEqualSemijoin selects each x whose lifespan equals some y's.
func BatchEqualSemijoin(x, y Cols, opt Options, emit func(xi int32)) error {
	residual := func(_, xe, _, ye interval.Time) bool { return xe == ye }
	return batchMergeGroupScan(x, y, false, false, residual, opt, true, nil, emit)
}

// BatchStartsSemijoin selects each x starting some y.
func BatchStartsSemijoin(x, y Cols, opt Options, emit func(xi int32)) error {
	residual := func(_, xe, _, ye interval.Time) bool { return xe < ye }
	return batchMergeGroupScan(x, y, false, false, residual, opt, true, nil, emit)
}

// BatchFinishesSemijoin selects each x finishing some y.
func BatchFinishesSemijoin(x, y Cols, opt Options, emit func(xi int32)) error {
	residual := func(xs, _, ys, _ interval.Time) bool { return xs > ys }
	return batchMergeGroupScan(x, y, true, true, residual, opt, true, nil, emit)
}

// BatchCoalesce is the columnar Coalesce: the input columns must be grouped
// by key with each group sorted on ValidFrom ascending; sameKey reports
// whether rows i and j belong to the same group (the engine compares
// interned value columns, one integer compare per column). emit receives a
// representative row index and the coalesced lifespan.
func BatchCoalesce(c Cols, sameKey func(i, j int32) bool, opt Options, emit func(rep int32, span interval.Interval)) error {
	const name = "coalesce"
	probe := opt.Probe
	probe.SetBuffers(1)

	var (
		rep     int32
		curSpan interval.Interval
		open    bool
	)
	flush := func() {
		if open {
			probe.IncEmitted(1)
			emit(rep, curSpan)
			probe.StateRemove(1)
			open = false
		}
	}
	n := len(c.TS)
	//tdb:hotpath
	for i := 0; i < n; i++ {
		probe.IncReadLeft()
		ts, te := c.TS[i], c.TE[i]
		if open && sameKey(int32(i), rep) {
			if ts < curSpan.Start {
				return fmt.Errorf("%s: group not sorted on ValidFrom: %v after %v", name, c.Span(i), curSpan)
			}
			probe.IncComparisons(1)
			if curSpan.End >= ts { // meets or overlaps: extend
				if te > curSpan.End {
					curSpan.End = te
				}
				continue
			}
		}
		flush()
		rep, curSpan, open = int32(i), interval.Interval{Start: ts, End: te}, true
		probe.StateAdd(1)
		opt.observe()
	}
	flush()
	opt.observe()
	return nil
}
