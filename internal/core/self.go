package core

import (
	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/stream"
)

// ContainedSelfSemijoin evaluates Contained-semijoin(X,X): select each x
// whose lifespan is strictly contained within that of another x of the same
// stream. The input must have primary sort order ValidFrom ascending with
// secondary ValidTo ascending (paper Figure 7). The operand is scanned once
// and the local workspace is one state tuple plus the input buffer —
// Table 3 case (a). Output preserves input order.
//
// The algorithm (Section 4.2.3): keep as the state tuple x_s the best
// container candidate seen so far. Because containers must start strictly
// earlier than their containees and the stream is sorted on ValidFrom, only
// earlier tuples can contain later ones, and among earlier tuples the one
// with the maximal ValidTo dominates; the secondary ValidTo order resolves
// the equal-ValidFrom ties soundly.
func ContainedSelfSemijoin[T any](xs stream.Stream[T], span Span[T], opt Options, emit func(T)) error {
	const name = "contained-semijoin(X,X)[TS↑,TE↑]"
	in := ordered(xs, span, relation.Order{relation.TSAsc, relation.TEAsc}, opt.VerifyOrder)
	probe := opt.Probe
	probe.SetBuffers(1)

	var xState T
	haveState := false
	for {
		xb, ok := in.Next()
		if !ok {
			break
		}
		probe.IncReadLeft()
		if !haveState {
			xState, haveState = xb, true
			probe.StateAdd(1)
			opt.observe()
			continue
		}
		ss, sb := span(xState), span(xb)
		probe.IncComparisons(1)
		switch {
		case interval.CmpStart(ss, sb) == 0:
			// Same ValidFrom: neither strictly contains the other; x_b has
			// the larger ValidTo (secondary order) so it supersedes x_s.
			xState = xb
		case interval.CmpEnd(ss, sb) <= 0:
			// x_s starts earlier but does not outlast x_b: x_b becomes the
			// new best container candidate.
			xState = xb
		default:
			// ss.Start < sb.Start ∧ sb.End < ss.End: x_b during x_s.
			probe.IncEmitted(1)
			emit(xb)
		}
	}
	if haveState {
		probe.StateRemove(1)
	}
	opt.observe()
	return orderError(name, in.Err())
}

// ContainSelfSemijoin evaluates Contain-semijoin(X,X): select each x whose
// lifespan strictly contains that of another x of the same stream. The
// input must have primary sort order ValidFrom *descending* with secondary
// ValidTo descending — Table 3 case (a) in the ValidFrom ↓ row; with this
// ordering a single state tuple suffices, mirroring ContainedSelfSemijoin.
//
// Scanning in descending ValidFrom, containees are read before their
// containers; the best containee witness among the tuples read so far is
// the one with the minimal ValidTo, with equal-ValidFrom ties resolved by
// the secondary descending ValidTo order.
func ContainSelfSemijoin[T any](xs stream.Stream[T], span Span[T], opt Options, emit func(T)) error {
	const name = "contain-semijoin(X,X)[TS↓,TE↓]"
	in := ordered(xs, span, relation.Order{relation.TSDesc, relation.TEDesc}, opt.VerifyOrder)
	probe := opt.Probe
	probe.SetBuffers(1)

	var xState T
	haveState := false
	for {
		xb, ok := in.Next()
		if !ok {
			break
		}
		probe.IncReadLeft()
		if !haveState {
			xState, haveState = xb, true
			probe.StateAdd(1)
			opt.observe()
			continue
		}
		ss, sb := span(xState), span(xb)
		probe.IncComparisons(1)
		switch {
		case interval.CmpStart(ss, sb) == 0:
			// Same ValidFrom: x_b has the smaller ValidTo (secondary
			// descending order) and supersedes x_s as witness.
			xState = xb
		case interval.CmpEnd(sb, ss) <= 0:
			// x_b starts earlier but does not outlast x_s: x_b is the new
			// best (smallest-ValidTo) containee witness.
			xState = xb
		default:
			// sb.Start < ss.Start ∧ ss.End < sb.End: x_b contains x_s.
			probe.IncEmitted(1)
			emit(xb)
		}
	}
	if haveState {
		probe.StateRemove(1)
	}
	opt.observe()
	return orderError(name, in.Err())
}

// ContainSelfSemijoinTSAsc evaluates Contain-semijoin(X,X) on input sorted
// ValidFrom ascending — the suboptimal ordering of Table 3, whose state is
// a subset of the not-yet-matched tuples overlapping the frontier
// (case (b)). The experiments contrast its workspace against the
// single-tuple state of the descending-order algorithm: the optimal sort
// order depends on the operator, not just the data.
func ContainSelfSemijoinTSAsc[T any](xs stream.Stream[T], span Span[T], opt Options, emit func(T)) error {
	const name = "contain-semijoin(X,X)[TS↑]"
	in := ordered(xs, span, relation.Order{relation.TSAsc}, opt.VerifyOrder)
	probe := opt.Probe
	probe.SetBuffers(1)

	var state []held[T] // candidate containers not yet reported
	for {
		xb, ok := in.Next()
		if !ok {
			break
		}
		probe.IncReadLeft()
		sb := span(xb)
		kept := state[:0]
		for _, h := range state {
			probe.IncComparisons(1)
			switch {
			case containMatch(h.span, sb):
				// h contains x_b: report h once and retire it.
				probe.IncEmitted(1)
				emit(h.elem)
				probe.StateRemove(1)
			case h.span.End <= sb.Start+1:
				// h ends by the frontier: no future tuple fits strictly
				// inside it (future x have TS ≥ sb.Start, TE ≥ TS+1).
				probe.StateRemove(1)
			default:
				kept = append(kept, h)
			}
		}
		state = kept
		state = append(state, held[T]{elem: xb, span: sb})
		probe.StateAdd(1)
		opt.observe()
	}
	probe.StateRemove(int64(len(state)))
	opt.observe()
	return orderError(name, in.Err())
}

// ContainedSelfSemijoinTSDesc evaluates Contained-semijoin(X,X) on input
// sorted ValidFrom descending — the ordering Table 3 marks "–". No
// single-tuple state suffices; this implementation keeps the unreported
// tuples that may yet prove to be contained in a later-read (earlier-
// starting) tuple, so its workspace grows with the data, which is what the
// "–" experiment measures.
func ContainedSelfSemijoinTSDesc[T any](xs stream.Stream[T], span Span[T], opt Options, emit func(T)) error {
	const name = "contained-semijoin(X,X)[TS↓]"
	in := ordered(xs, span, relation.Order{relation.TSDesc}, opt.VerifyOrder)
	probe := opt.Probe
	probe.SetBuffers(1)

	type pending[U any] struct {
		h     held[U]
		order int64 // input position, to restore output order
	}
	var state []pending[T]
	var pos int64
	var outs []pending[T]
	for {
		xb, ok := in.Next()
		if !ok {
			break
		}
		probe.IncReadLeft()
		sb := span(xb)
		kept := state[:0]
		for _, p := range state {
			probe.IncComparisons(1)
			if containMatch(sb, p.h.span) {
				// x_b (earlier-starting, read later) contains p: report p.
				probe.IncEmitted(1)
				outs = append(outs, p)
				probe.StateRemove(1)
				continue
			}
			kept = append(kept, p)
		}
		state = kept
		state = append(state, pending[T]{h: held[T]{elem: xb, span: sb}, order: pos})
		probe.StateAdd(1)
		opt.observe()
		pos++
	}
	probe.StateRemove(int64(len(state)))
	opt.observe()
	// Restore input order for the reported tuples.
	for i := 1; i < len(outs); i++ {
		for j := i; j > 0 && outs[j-1].order > outs[j].order; j-- {
			outs[j-1], outs[j] = outs[j], outs[j-1]
		}
	}
	for _, p := range outs {
		emit(p.h.elem)
	}
	return orderError(name, in.Err())
}
