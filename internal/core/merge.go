package core

import (
	"tdb/internal/interval"
	"tdb/internal/stream"
)

// MergeGroupJoin is the classic merge-join of Section 4.1 applied to
// temporal endpoint keys, the "obvious stream processing method" the paper
// prescribes for the non-inequality operators (footnote 8): sort both
// relations on the attributes involved in the equalities, merge, and filter
// the equal-key groups with the residual inequality constraints. keyX and
// keyY project the merge key from each element's lifespan; X must arrive
// sorted on keyX ascending and Y on keyY ascending. residual may be nil
// (pure equality). The workspace is the currently buffered Y key group —
// one group at a time, the merge-join state of the paper's Section 4.1
// discussion generalized to duplicate keys.
func MergeGroupJoin[T any](xs, ys stream.Stream[T], span Span[T],
	keyX, keyY func(interval.Interval) interval.Time,
	residual func(x, y interval.Interval) bool,
	opt Options, emit func(x, y T)) error {
	return mergeGroupScan(xs, ys, span, keyX, keyY, residual, opt, false, emit, nil)
}

// mergeGroupScan is the shared merge engine: in join mode it emits every
// qualifying pair; in semijoin mode it emits each x once, on its first
// qualifying partner.
func mergeGroupScan[T any](xs, ys stream.Stream[T], span Span[T],
	keyX, keyY func(interval.Interval) interval.Time,
	residual func(x, y interval.Interval) bool,
	opt Options, semijoin bool, emitPair func(x, y T), emitX func(T)) error {

	const name = "merge-group-join"
	cmpX := func(a, b interval.Interval) int { return cmpTime(keyX(a), keyX(b)) }
	cmpY := func(a, b interval.Interval) int { return cmpTime(keyY(a), keyY(b)) }
	var inX, inY stream.Stream[T] = xs, ys
	if opt.VerifyOrder {
		inX = stream.CheckOrdered(xs, func(t T) interval.Interval { return span(t) }, cmpX)
		inY = stream.CheckOrdered(ys, func(t T) interval.Interval { return span(t) }, cmpY)
	}
	px, py := newPeek(inX), newPeek(inY)
	probe := opt.Probe
	probe.SetBuffers(2)

	var group []held[T] // the buffered equal-key Y group
	groupKey := interval.MinTime

	// The group sweep: each turn reads one x or refills the equal-key group.
	//tdb:hotpath
	for {
		xh, xok := px.Head()
		if !xok {
			break
		}
		kx := keyX(span(xh))

		// Refill the group when x has moved past it: discard smaller-keyed
		// y tuples, then buffer the next whole equal-key group (its key may
		// exceed kx; it is kept until X catches up).
		if len(group) == 0 || groupKey < kx {
			probe.StateRemove(int64(len(group)))
			group = group[:0]
			for {
				yh, yok := py.Head()
				if !yok {
					break
				}
				probe.IncComparisons(1)
				if keyY(span(yh)) >= kx {
					break
				}
				py.Take()
				probe.IncReadRight()
			}
			if yh, yok := py.Head(); yok {
				groupKey = keyY(span(yh))
				for {
					yh2, yok2 := py.Head()
					if !yok2 || keyY(span(yh2)) != groupKey {
						break
					}
					y, _ := py.Take()
					probe.IncReadRight()
					group = append(group, held[T]{elem: y, span: span(y)})
					probe.StateAdd(1)
				}
			}
			if len(group) == 0 {
				break // Y exhausted: no remaining x can match
			}
		}

		if groupKey > kx {
			// x is behind the buffered group: it matches nothing.
			px.Take()
			probe.IncReadLeft()
			continue
		}

		// kx == groupKey: pair x with every group member passing residual.
		x, _ := px.Take()
		probe.IncReadLeft()
		sx := span(x)
		for _, h := range group {
			probe.IncComparisons(1)
			if residual == nil || residual(sx, h.span) {
				probe.IncEmitted(1)
				if semijoin {
					emitX(x)
					break
				}
				emitPair(x, h.elem)
			}
		}
	}
	probe.StateRemove(int64(len(group)))
	if err := px.Err(); err != nil {
		return orderError(name, err)
	}
	if err := py.Err(); err != nil {
		return orderError(name, err)
	}
	return nil
}

func cmpTime(a, b interval.Time) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func tsKey(s interval.Interval) interval.Time { return s.Start }
func teKey(s interval.Interval) interval.Time { return s.End }

// MeetsJoin pairs x with y when X.TE = Y.TS (Figure 2 relationship 2),
// with X sorted on ValidTo ascending and Y on ValidFrom ascending.
func MeetsJoin[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(x, y T)) error {
	return MergeGroupJoin(xs, ys, span, teKey, tsKey, nil, opt, emit)
}

// EqualJoin pairs x with y when the lifespans are identical (Figure 2
// relationship 1), with both inputs sorted on ValidFrom ascending; the
// residual checks the ValidTo equality within each equal-ValidFrom group.
func EqualJoin[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(x, y T)) error {
	residual := func(x, y interval.Interval) bool { return interval.CmpEnd(x, y) == 0 }
	return MergeGroupJoin(xs, ys, span, tsKey, tsKey, residual, opt, emit)
}

// StartsJoin pairs x with y when X.TS = Y.TS ∧ X.TE < Y.TE (Figure 2
// relationship 3), with both inputs sorted on ValidFrom ascending.
func StartsJoin[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(x, y T)) error {
	residual := func(x, y interval.Interval) bool { return interval.CmpEnd(x, y) < 0 }
	return MergeGroupJoin(xs, ys, span, tsKey, tsKey, residual, opt, emit)
}

// FinishesJoin pairs x with y when X.TE = Y.TE ∧ X.TS > Y.TS (Figure 2
// relationship 4), with both inputs sorted on ValidTo ascending.
func FinishesJoin[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(x, y T)) error {
	residual := func(x, y interval.Interval) bool { return interval.CmpStart(x, y) > 0 }
	return MergeGroupJoin(xs, ys, span, teKey, teKey, residual, opt, emit)
}

// MeetsSemijoin selects each x met at its end by some y (X.TE = Y.TS),
// with X sorted on ValidTo ascending and Y on ValidFrom ascending. Like
// every semijoin here, each x is emitted at most once, in X input order.
func MeetsSemijoin[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(T)) error {
	return mergeGroupScan(xs, ys, span, teKey, tsKey, nil, opt, true, nil, emit)
}

// EqualSemijoin selects each x whose lifespan equals some y's, both inputs
// sorted on ValidFrom ascending.
func EqualSemijoin[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(T)) error {
	residual := func(x, y interval.Interval) bool { return interval.CmpEnd(x, y) == 0 }
	return mergeGroupScan(xs, ys, span, tsKey, tsKey, residual, opt, true, nil, emit)
}

// StartsSemijoin selects each x starting some y (same ValidFrom, ending
// strictly earlier), both inputs sorted on ValidFrom ascending.
func StartsSemijoin[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(T)) error {
	residual := func(x, y interval.Interval) bool { return interval.CmpEnd(x, y) < 0 }
	return mergeGroupScan(xs, ys, span, tsKey, tsKey, residual, opt, true, nil, emit)
}

// FinishesSemijoin selects each x finishing some y (same ValidTo, starting
// strictly later), both inputs sorted on ValidTo ascending.
func FinishesSemijoin[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(T)) error {
	residual := func(x, y interval.Interval) bool { return interval.CmpStart(x, y) > 0 }
	return mergeGroupScan(xs, ys, span, teKey, teKey, residual, opt, true, nil, emit)
}
