package core

import (
	"sync"

	"tdb/internal/interval"
)

// activeList is the gapless active-tuple list of a batch sweep: the
// endpoints of the retained tuples in flat parallel arrays plus their row
// indexes in the input columns. Scans walk two int64 arrays; removal is an
// order-preserving compaction (the emission contract requires insertion
// order, so the classic swap-remove is off the table — compaction is still
// a single forward pass with no holes).
type activeList struct {
	ts, te []interval.Time
	idx    []int32
}

func (a *activeList) reset() {
	a.ts, a.te, a.idx = a.ts[:0], a.te[:0], a.idx[:0]
}

// arenaCap pre-sizes the pooled active lists. The sweeps of Tables 1–3
// hold the concurrently-live tuples only; 256 covers the experiments'
// steady state so a pooled kernel run never grows its state arrays.
const arenaCap = 256

// sweepArena is the reusable state of one batch kernel run: one active
// list per input plus the merge-group index buffer. Arenas are pooled;
// a kernel acquires one before entering its hot loop, takes local slice
// views (`s[:0]`, keeping the backing arrays), and releases the arena —
// with whatever capacity the run grew — when it returns. Reuse across
// runs keeps allocation off the sweep entirely after warm-up; the pool
// owns lifetime, release resets length but never capacity.
type sweepArena struct {
	x, y activeList
	grp  []int32
}

var sweepPool = sync.Pool{
	New: func() any {
		return &sweepArena{
			x: activeList{
				ts:  make([]interval.Time, 0, arenaCap),
				te:  make([]interval.Time, 0, arenaCap),
				idx: make([]int32, 0, arenaCap),
			},
			y: activeList{
				ts:  make([]interval.Time, 0, arenaCap),
				te:  make([]interval.Time, 0, arenaCap),
				idx: make([]int32, 0, arenaCap),
			},
			grp: make([]int32, 0, arenaCap),
		}
	},
}

// acquireSweep takes a reset arena from the pool.
func acquireSweep() *sweepArena {
	a := sweepPool.Get().(*sweepArena)
	a.x.reset()
	a.y.reset()
	a.grp = a.grp[:0]
	return a
}

// release returns the arena to the pool for the next kernel run.
func (a *sweepArena) release() { sweepPool.Put(a) }
