package core

import (
	"errors"
	"math/rand"
	"testing"

	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/stream"
)

// genClustered draws items with few distinct endpoints so that the
// equality-based operators (equal, meets, starts, finishes) actually fire.
func genClustered(rng *rand.Rand, n, idBase int) []item {
	items := make([]item, n)
	for i := range items {
		s := interval.Time(rng.Intn(10))
		d := interval.Time(1 + rng.Intn(8))
		items[i] = item{id: idBase + i, iv: interval.New(s, s+d)}
	}
	return items
}

func TestEventJoinsMatchOracle(t *testing.T) {
	type variant struct {
		name           string
		orderX, orderY relation.Order
		theta          func(x, y interval.Interval) bool
		run            func(xs, ys stream.Stream[item], opt Options, emit func(x, y item)) error
	}
	variants := []variant{
		{
			"equal-join", relation.Order{relation.TSAsc}, relation.Order{relation.TSAsc},
			func(x, y interval.Interval) bool { return x.Equal(y) },
			func(xs, ys stream.Stream[item], opt Options, emit func(x, y item)) error {
				return EqualJoin(xs, ys, itemSpan, opt, emit)
			},
		},
		{
			"meets-join", relation.Order{relation.TEAsc}, relation.Order{relation.TSAsc},
			func(x, y interval.Interval) bool { return x.Meets(y) },
			func(xs, ys stream.Stream[item], opt Options, emit func(x, y item)) error {
				return MeetsJoin(xs, ys, itemSpan, opt, emit)
			},
		},
		{
			"starts-join", relation.Order{relation.TSAsc}, relation.Order{relation.TSAsc},
			func(x, y interval.Interval) bool { return x.Starts(y) },
			func(xs, ys stream.Stream[item], opt Options, emit func(x, y item)) error {
				return StartsJoin(xs, ys, itemSpan, opt, emit)
			},
		},
		{
			"finishes-join", relation.Order{relation.TEAsc}, relation.Order{relation.TEAsc},
			func(x, y interval.Interval) bool { return x.Finishes(y) },
			func(xs, ys stream.Stream[item], opt Options, emit func(x, y item)) error {
				return FinishesJoin(xs, ys, itemSpan, opt, emit)
			},
		},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(307))
			for trial := 0; trial < 250; trial++ {
				xs := genClustered(rng, rng.Intn(25), 0)
				ys := genClustered(rng, rng.Intn(25), 1000)
				got := collectPairs(t, func(emit func(x, y item)) error {
					return v.run(streamOf(sorted(xs, v.orderX)), streamOf(sorted(ys, v.orderY)),
						Options{VerifyOrder: true}, emit)
				})
				want := oraclePairs(xs, ys, v.theta)
				samePairs(t, v.name, got, want, sorted(xs, v.orderX), sorted(ys, v.orderY))
				if t.Failed() {
					return
				}
			}
		})
	}
}

// The event semijoins agree with the oracle, keep one-group workspace, and
// emit each x at most once in X input order.
func TestEventSemijoinsMatchOracle(t *testing.T) {
	type variant struct {
		name           string
		orderX, orderY relation.Order
		theta          func(x, y interval.Interval) bool
		run            func(xs, ys stream.Stream[item], opt Options, emit func(item)) error
	}
	variants := []variant{
		{
			"equal-semijoin", relation.Order{relation.TSAsc}, relation.Order{relation.TSAsc},
			func(x, y interval.Interval) bool { return x.Equal(y) },
			func(xs, ys stream.Stream[item], opt Options, emit func(item)) error {
				return EqualSemijoin(xs, ys, itemSpan, opt, emit)
			},
		},
		{
			"meets-semijoin", relation.Order{relation.TEAsc}, relation.Order{relation.TSAsc},
			func(x, y interval.Interval) bool { return x.Meets(y) },
			func(xs, ys stream.Stream[item], opt Options, emit func(item)) error {
				return MeetsSemijoin(xs, ys, itemSpan, opt, emit)
			},
		},
		{
			"starts-semijoin", relation.Order{relation.TSAsc}, relation.Order{relation.TSAsc},
			func(x, y interval.Interval) bool { return x.Starts(y) },
			func(xs, ys stream.Stream[item], opt Options, emit func(item)) error {
				return StartsSemijoin(xs, ys, itemSpan, opt, emit)
			},
		},
		{
			"finishes-semijoin", relation.Order{relation.TEAsc}, relation.Order{relation.TEAsc},
			func(x, y interval.Interval) bool { return x.Finishes(y) },
			func(xs, ys stream.Stream[item], opt Options, emit func(item)) error {
				return FinishesSemijoin(xs, ys, itemSpan, opt, emit)
			},
		},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(331))
			for trial := 0; trial < 200; trial++ {
				xs := genClustered(rng, rng.Intn(25), 0)
				ys := genClustered(rng, rng.Intn(25), 1000)
				sx := sorted(xs, v.orderX)
				pos := map[int]int{}
				for i, x := range sx {
					pos[x.id] = i
				}
				last := -1
				got := collectSemi(t, func(emit func(item)) error {
					return v.run(streamOf(sx), streamOf(sorted(ys, v.orderY)),
						Options{VerifyOrder: true}, func(x item) {
							if pos[x.id] < last {
								t.Fatalf("%s: output out of X order", v.name)
							}
							last = pos[x.id]
							emit(x)
						})
				})
				want := oracleSemi(xs, ys, v.theta)
				sameSemi(t, v.name, got, want, sx, ys)
				if t.Failed() {
					return
				}
			}
		})
	}
}

// The merge-join state is one Y key group at a time.
func TestMergeJoinStateIsOneGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	for trial := 0; trial < 80; trial++ {
		xs := genClustered(rng, 30, 0)
		ys := genClustered(rng, 30, 1000)
		// Largest equal-TS group of Y bounds the state.
		counts := map[interval.Time]int64{}
		var maxGroup int64
		for _, y := range ys {
			counts[y.iv.Start]++
			if counts[y.iv.Start] > maxGroup {
				maxGroup = counts[y.iv.Start]
			}
		}
		probe := newProbe()
		err := EqualJoin(streamOf(sorted(xs, relation.Order{relation.TSAsc})),
			streamOf(sorted(ys, relation.Order{relation.TSAsc})), itemSpan,
			Options{Probe: probe}, func(a, b item) {})
		if err != nil {
			t.Fatal(err)
		}
		if probe.StateHighWater > maxGroup {
			t.Fatalf("merge state %d exceeds largest Y group %d", probe.StateHighWater, maxGroup)
		}
	}
}

func TestBeforeJoinSortedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	beforeTheta := func(x, y interval.Interval) bool { return x.Before(y) }
	for trial := 0; trial < 200; trial++ {
		xs := genItems(rng, rng.Intn(25), 0)
		ys := genItems(rng, rng.Intn(25), 1000)
		sy := sorted(ys, relation.Order{relation.TSAsc})
		got := collectPairs(t, func(emit func(x, y item)) error {
			return BeforeJoinSorted(streamOf(sorted(xs, relation.Order{relation.TEAsc})), sy,
				itemSpan, Options{VerifyOrder: true}, emit)
		})
		want := oraclePairs(xs, ys, beforeTheta)
		samePairs(t, "before-join", got, want, xs, ys)
		if t.Failed() {
			return
		}
	}
}

func TestBeforeJoinRejectsUnsortedInner(t *testing.T) {
	xs := []item{{1, interval.New(0, 2)}}
	ysBad := []item{{10, interval.New(9, 12)}, {11, interval.New(3, 5)}}
	err := BeforeJoinSorted(streamOf(xs), ysBad, itemSpan, Options{}, func(a, b item) {})
	if err == nil {
		t.Fatal("unsorted inner accepted")
	}
}

func TestBeforeSemijoinMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(317))
	beforeTheta := func(x, y interval.Interval) bool { return x.Before(y) }
	for trial := 0; trial < 200; trial++ {
		xs := genItems(rng, rng.Intn(25), 0)
		ys := genItems(rng, rng.Intn(25), 1000)
		probe := newProbe()
		// Deliberately unsorted: Before-semijoin is sort-independent.
		got := collectSemi(t, func(emit func(item)) error {
			return BeforeSemijoin(streamOf(xs), streamOf(ys), itemSpan, Options{Probe: probe}, emit)
		})
		want := oracleSemi(xs, ys, beforeTheta)
		sameSemi(t, "before-semijoin", got, want, xs, ys)
		if probe.StateHighWater != 0 {
			t.Fatalf("before-semijoin retained state: %d", probe.StateHighWater)
		}
		if probe.Passes != 2 {
			t.Fatalf("before-semijoin passes = %d, want 2 (one per operand)", probe.Passes)
		}
		if t.Failed() {
			return
		}
	}
}

func TestBeforeSemijoinEmptyY(t *testing.T) {
	xs := []item{{1, interval.New(0, 2)}}
	n := 0
	if err := BeforeSemijoin(streamOf(xs), stream.Empty[item](), itemSpan, Options{}, func(item) { n++ }); err != nil || n != 0 {
		t.Errorf("empty Y: n=%d err=%v", n, err)
	}
}

func TestMergeAndBeforeErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	xs := []item{{1, interval.New(0, 5)}, {2, interval.New(1, 6)}}
	if err := EqualJoin(stream.FailAfter(streamOf(xs), 1, boom), streamOf(xs), itemSpan,
		Options{}, func(a, b item) {}); !errors.Is(err, boom) {
		t.Errorf("merge X failure: %v", err)
	}
	if err := EqualJoin(streamOf(xs), stream.FailAfter(streamOf(xs), 0, boom), itemSpan,
		Options{}, func(a, b item) {}); !errors.Is(err, boom) {
		t.Errorf("merge Y failure: %v", err)
	}
	if err := BeforeSemijoin(streamOf(xs), stream.FailAfter(streamOf(xs), 1, boom), itemSpan,
		Options{}, func(item) {}); !errors.Is(err, boom) {
		t.Errorf("before-semijoin Y failure: %v", err)
	}
	if err := BeforeJoinSorted(stream.FailAfter(streamOf(xs), 1, boom), nil, itemSpan,
		Options{}, func(a, b item) {}); !errors.Is(err, boom) {
		t.Errorf("before-join X failure: %v", err)
	}
}
