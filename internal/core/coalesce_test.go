package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/stream"
)

type keyed struct {
	k  string
	iv interval.Interval
}

func keyedKey(t keyed) string             { return t.k }
func keyedSpan(t keyed) interval.Interval { return t.iv }
func keyedWrap(t keyed, iv interval.Interval) keyed {
	t.iv = iv
	return t
}

func coalesceAll(t *testing.T, in []keyed, probe *metrics.Probe) []keyed {
	t.Helper()
	var out []keyed
	err := Coalesce(stream.FromSlice(in), keyedKey, keyedSpan, keyedWrap,
		Options{Probe: probe}, func(x keyed) { out = append(out, x) })
	if err != nil {
		t.Fatalf("coalesce: %v", err)
	}
	return out
}

func TestCoalesceBasics(t *testing.T) {
	in := []keyed{
		{"a", interval.New(0, 5)},
		{"a", interval.New(5, 9)},   // meets: extends
		{"a", interval.New(7, 12)},  // overlaps: extends
		{"a", interval.New(14, 20)}, // gap: new period
		{"b", interval.New(14, 16)}, // new key
	}
	probe := &metrics.Probe{}
	out := coalesceAll(t, in, probe)
	want := []keyed{
		{"a", interval.New(0, 12)},
		{"a", interval.New(14, 20)},
		{"b", interval.New(14, 16)},
	}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if probe.StateHighWater != 1 {
		t.Errorf("state %d, want 1 pending element", probe.StateHighWater)
	}
	if probe.Emitted != 3 {
		t.Errorf("emitted %d", probe.Emitted)
	}
}

func TestCoalesceContainedPeriod(t *testing.T) {
	// A period wholly inside the open one must not shrink its end.
	in := []keyed{
		{"a", interval.New(0, 20)},
		{"a", interval.New(3, 7)},
	}
	out := coalesceAll(t, in, nil)
	if len(out) != 1 || out[0].iv != interval.New(0, 20) {
		t.Fatalf("out = %v", out)
	}
}

func TestCoalesceEdges(t *testing.T) {
	if out := coalesceAll(t, nil, nil); len(out) != 0 {
		t.Errorf("empty input: %v", out)
	}
	one := []keyed{{"a", interval.New(3, 4)}}
	if out := coalesceAll(t, one, nil); len(out) != 1 || out[0] != one[0] {
		t.Errorf("singleton: %v", out)
	}
	// Unsorted group rejected.
	bad := []keyed{{"a", interval.New(5, 9)}, {"a", interval.New(1, 2)}}
	err := Coalesce(stream.FromSlice(bad), keyedKey, keyedSpan, keyedWrap, Options{}, func(keyed) {})
	if err == nil {
		t.Error("unsorted group accepted")
	}
}

// Properties: per key, the output covers exactly the chronons the input
// covers; output periods are disjoint, non-meeting, and ValidFrom-ordered.
func TestCoalesceProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var in []keyed
		for _, k := range []string{"a", "b", "c"} {
			n := rng.Intn(15)
			var group []keyed
			for i := 0; i < n; i++ {
				s := interval.Time(rng.Intn(40))
				group = append(group, keyed{k, interval.New(s, s+interval.Time(1+rng.Intn(10)))})
			}
			sort.Slice(group, func(i, j int) bool { return group[i].iv.Start < group[j].iv.Start })
			in = append(in, group...)
		}
		var out []keyed
		if err := Coalesce(stream.FromSlice(in), keyedKey, keyedSpan, keyedWrap,
			Options{}, func(x keyed) { out = append(out, x) }); err != nil {
			return false
		}
		covered := func(items []keyed, k string, t interval.Time) bool {
			for _, it := range items {
				if it.k == k && it.iv.Contains(t) {
					return true
				}
			}
			return false
		}
		for _, k := range []string{"a", "b", "c"} {
			for t := interval.Time(-1); t < 60; t++ {
				if covered(in, k, t) != covered(out, k, t) {
					return false
				}
			}
			// Output periods per key: ordered, disjoint, non-meeting.
			var prev *keyed
			for i := range out {
				if out[i].k != k {
					continue
				}
				if prev != nil && out[i].iv.Start <= prev.iv.End {
					return false
				}
				p := out[i]
				prev = &p
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Coalesce then join: the coalesced stream feeds a contain join directly
// (order preservation in action).
func TestCoalesceFeedsJoin(t *testing.T) {
	history := []keyed{
		{"x", interval.New(0, 10)},
		{"x", interval.New(10, 30)}, // coalesces to [0,30)
	}
	inner := []keyed{{"y", interval.New(5, 25)}}
	coalesced := GoRun(func(emit func(keyed)) error {
		return Coalesce(stream.FromSlice(history), keyedKey, keyedSpan, keyedWrap, Options{}, emit)
	})
	n := 0
	err := ContainJoinTSTS[keyed](coalesced, stream.FromSlice(inner), keyedSpan,
		Options{}, func(a, b keyed) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("joined %d pairs, want 1 (only after coalescing does [0,30) contain [5,25))", n)
	}
}
