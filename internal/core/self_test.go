package core

import (
	"math/rand"
	"testing"

	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/stream"
)

// oracleSelfContained returns the ids of tuples strictly contained in some
// other tuple of the same set; oracleSelfContain the ids of tuples strictly
// containing some other tuple.
func oracleSelfContained(xs []item) map[int]bool {
	want := map[int]bool{}
	for _, a := range xs {
		for _, b := range xs {
			if a.id != b.id && containMatch(b.iv, a.iv) {
				want[a.id] = true
				break
			}
		}
	}
	return want
}

func oracleSelfContain(xs []item) map[int]bool {
	want := map[int]bool{}
	for _, a := range xs {
		for _, b := range xs {
			if a.id != b.id && containMatch(a.iv, b.iv) {
				want[a.id] = true
				break
			}
		}
	}
	return want
}

// Figure 7 worked example: the stream x1..x4 with x4 inside x3.
func TestContainedSelfSemijoinFigure7(t *testing.T) {
	xs := []item{
		{1, interval.New(0, 4)},
		{2, interval.New(1, 6)},
		{3, interval.New(2, 12)},
		{4, interval.New(3, 8)}, // during x3
	}
	probe := newProbe()
	got := collectSemi(t, func(emit func(item)) error {
		return ContainedSelfSemijoin(streamOf(xs), itemSpan,
			Options{Probe: probe, VerifyOrder: true}, emit)
	})
	sameSemi(t, "fig7", got, map[int]bool{4: true}, xs, nil)
	if probe.StateHighWater != 1 || probe.Workspace() != 2 {
		t.Errorf("Figure 7 workspace must be one state tuple + one buffer: state=%d ws=%d",
			probe.StateHighWater, probe.Workspace())
	}
	if probe.ReadLeft != 4 {
		t.Errorf("single scan violated: %d reads", probe.ReadLeft)
	}
}

// Equal-ValidFrom ties exercise the secondary-order replacement rule.
func TestContainedSelfSemijoinTies(t *testing.T) {
	cases := []struct {
		name string
		xs   []item
		want map[int]bool
	}{
		{
			"equal spans are not strict containment",
			[]item{{1, interval.New(5, 9)}, {2, interval.New(5, 9)}},
			map[int]bool{},
		},
		{
			"same start, longer end does not contain",
			[]item{{1, interval.New(5, 9)}, {2, interval.New(5, 20)}},
			map[int]bool{},
		},
		{
			"replacement must not lose the old container",
			// x2 replaces x1 as state (same TE reached), but x3 is inside x1 only.
			[]item{{1, interval.New(0, 10)}, {2, interval.New(5, 10)}, {3, interval.New(6, 9)}},
			map[int]bool{3: true},
		},
		{
			"tie then containment",
			[]item{{1, interval.New(0, 10)}, {2, interval.New(5, 8)}, {3, interval.New(5, 10)}},
			map[int]bool{2: true},
		},
	}
	for _, c := range cases {
		xs := sorted(c.xs, relation.Order{relation.TSAsc, relation.TEAsc})
		got := collectSemi(t, func(emit func(item)) error {
			return ContainedSelfSemijoin(streamOf(xs), itemSpan, Options{VerifyOrder: true}, emit)
		})
		sameSemi(t, c.name, got, c.want, xs, nil)
	}
}

// Property: all four self-semijoin variants agree with the exhaustive
// oracle; the optimal orderings keep exactly one state tuple (Table 3 (a)).
func TestSelfSemijoinsMatchOracle(t *testing.T) {
	type variant struct {
		name     string
		order    relation.Order
		oneState bool
		oracle   func([]item) map[int]bool
		run      func(xs stream.Stream[item], opt Options, emit func(item)) error
	}
	variants := []variant{
		{
			"contained(X,X)[TS↑,TE↑]", relation.Order{relation.TSAsc, relation.TEAsc}, true,
			oracleSelfContained,
			func(xs stream.Stream[item], opt Options, emit func(item)) error {
				return ContainedSelfSemijoin(xs, itemSpan, opt, emit)
			},
		},
		{
			"contain(X,X)[TS↓,TE↓]", relation.Order{relation.TSDesc, relation.TEDesc}, true,
			oracleSelfContain,
			func(xs stream.Stream[item], opt Options, emit func(item)) error {
				return ContainSelfSemijoin(xs, itemSpan, opt, emit)
			},
		},
		{
			"contain(X,X)[TS↑]", relation.Order{relation.TSAsc, relation.TEAsc}, false,
			oracleSelfContain,
			func(xs stream.Stream[item], opt Options, emit func(item)) error {
				return ContainSelfSemijoinTSAsc(xs, itemSpan, opt, emit)
			},
		},
		{
			"contained(X,X)[TS↓]", relation.Order{relation.TSDesc, relation.TEDesc}, false,
			oracleSelfContained,
			func(xs stream.Stream[item], opt Options, emit func(item)) error {
				return ContainedSelfSemijoinTSDesc(xs, itemSpan, opt, emit)
			},
		},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(211))
			for trial := 0; trial < 300; trial++ {
				xs := sorted(genItems(rng, rng.Intn(35), 0), v.order)
				probe := newProbe()
				got := collectSemi(t, func(emit func(item)) error {
					return v.run(streamOf(xs), Options{Probe: probe, VerifyOrder: true}, emit)
				})
				sameSemi(t, v.name, got, v.oracle(xs), xs, nil)
				if v.oneState && probe.StateHighWater > 1 {
					t.Fatalf("%s: state high water %d, Table 3 promises 1", v.name, probe.StateHighWater)
				}
				if t.Failed() {
					return
				}
			}
		})
	}
}

// The self-semijoin output preserves input order.
func TestSelfSemijoinOrderPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	for trial := 0; trial < 50; trial++ {
		xs := sorted(genItems(rng, 30, 0), relation.Order{relation.TSAsc, relation.TEAsc})
		pos := map[int]int{}
		for i, x := range xs {
			pos[x.id] = i
		}
		last := -1
		err := ContainedSelfSemijoin(streamOf(xs), itemSpan, Options{}, func(x item) {
			if pos[x.id] < last {
				t.Fatal("contained(X,X) output out of order")
			}
			last = pos[x.id]
		})
		if err != nil {
			t.Fatal(err)
		}

		desc := sorted(xs, relation.Order{relation.TSDesc})
		for i, x := range desc {
			pos[x.id] = i
		}
		last = -1
		err = ContainedSelfSemijoinTSDesc(streamOf(desc), itemSpan, Options{}, func(x item) {
			if pos[x.id] < last {
				t.Fatal("contained(X,X)[TS↓] output out of order")
			}
			last = pos[x.id]
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSelfSemijoinEdges(t *testing.T) {
	// Empty and singleton inputs.
	for _, run := range []func(stream.Stream[item]) (int, error){
		func(s stream.Stream[item]) (int, error) {
			n := 0
			err := ContainedSelfSemijoin(s, itemSpan, Options{}, func(item) { n++ })
			return n, err
		},
		func(s stream.Stream[item]) (int, error) {
			n := 0
			err := ContainSelfSemijoin(s, itemSpan, Options{}, func(item) { n++ })
			return n, err
		},
	} {
		if n, err := run(stream.Empty[item]()); err != nil || n != 0 {
			t.Errorf("empty: n=%d err=%v", n, err)
		}
		if n, err := run(streamOf([]item{{1, interval.New(0, 5)}})); err != nil || n != 0 {
			t.Errorf("singleton: n=%d err=%v", n, err)
		}
	}
	// VerifyOrder catches a missing secondary sort.
	bad := []item{{1, interval.New(0, 9)}, {2, interval.New(0, 5)}} // TE descending tie
	if err := ContainedSelfSemijoin(streamOf(bad), itemSpan, Options{VerifyOrder: true}, func(item) {}); err == nil {
		t.Error("secondary-order violation accepted")
	}
}
