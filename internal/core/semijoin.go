package core

import (
	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/stream"
)

// containPairScan is the optimized one-buffer-per-stream semijoin scan of
// paper Section 4.2.2 (Figure 6): stream a holds the candidate containers
// sorted on ValidFrom ascending, stream b the candidate containees sorted
// on ValidTo ascending. Depending on emitA it implements
// Contain-semijoin(A,B) (output each a containing some b) or
// Contained-semijoin(B,A) (output each b contained in some a). The local
// workspace is exactly the two input buffers — Table 1 case (d).
//
// Invariant kept by the scan: a b tuple is discarded unmatched only when
// b.TS ≤ a.TS, which disqualifies it as a containee of the buffered a and,
// because A is sorted on ValidFrom ascending, of every subsequent a; an a
// tuple is abandoned only when the buffered b has b.TE ≥ a.TE, which —
// because B is sorted on ValidTo ascending — disqualifies every remaining b
// as a containee of a.
func containPairScan[T any](name string, as, bs stream.Stream[T], span Span[T], opt Options, emitA bool, emit func(T)) error {
	pa := newPeek(ordered(as, span, relation.Order{relation.TSAsc}, opt.VerifyOrder))
	pb := newPeek(ordered(bs, span, relation.Order{relation.TEAsc}, opt.VerifyOrder))
	probe := opt.Probe
	probe.SetBuffers(2)

	// The pair scan holds no state at all: two buffers, one step per turn.
	//tdb:hotpath
	for {
		a, aok := pa.Head()
		if !aok {
			break
		}
		b, bok := pb.Head()
		if !bok {
			break
		}
		sa, sb := span(a), span(b)
		probe.IncComparisons(1)
		switch {
		case interval.CmpStart(sb, sa) <= 0:
			// b starts no later than the earliest remaining a: it can be
			// strictly inside none of them.
			pb.Take()
			probe.IncReadRight()
		case interval.CmpEnd(sb, sa) < 0:
			// sa.Start < sb.Start ∧ sb.End < sa.End: a contains b.
			if emitA {
				probe.IncEmitted(1)
				emit(a)
				pa.Take() // a is reported once; b may witness further a's
				probe.IncReadLeft()
			} else {
				probe.IncEmitted(1)
				emit(b)
				pb.Take() // b is reported once; a may contain further b's
				probe.IncReadRight()
			}
		default:
			// sb.End >= sa.End: every remaining b ends at or after sb, so
			// none can end strictly inside a.
			pa.Take()
			probe.IncReadLeft()
		}
		opt.observe()
	}
	if err := pa.Err(); err != nil {
		return orderError(name, err)
	}
	if err := pb.Err(); err != nil {
		return orderError(name, err)
	}
	return nil
}

// ContainSemijoin evaluates Contain-semijoin(X,Y) — select each x whose
// lifespan contains that of at least one y — with X sorted on ValidFrom
// ascending and Y on ValidTo ascending. Workspace: the two input buffers
// (Table 1 case (d), Figure 6). Output preserves the X input order.
func ContainSemijoin[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(T)) error {
	return containPairScan("contain-semijoin[TS↑,TE↑]", xs, ys, span, opt, true, emit)
}

// ContainedSemijoin evaluates Contained-semijoin(X,Y) — select each x whose
// lifespan is contained in that of at least one y — with X sorted on
// ValidTo ascending and Y on ValidFrom ascending (Table 1 case (d) in the
// (ValidTo ↑, ValidFrom ↑) row). Output preserves the X input order.
func ContainedSemijoin[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(T)) error {
	return containPairScan("contained-semijoin[TE↑,TS↑]", ys, xs, span, opt, false, emit)
}

// ContainSemijoinTSTS evaluates Contain-semijoin(X,Y) with both inputs
// sorted on ValidFrom ascending (Table 1 case (c)): the retained state is a
// subset of the x tuples spanning the frontier that have not yet found a
// containee. Each x is emitted as soon as its first containee arrives, so
// the output follows witness-discovery order rather than X input order;
// use ContainSemijoin (TS↑/TE↑) when order preservation matters.
func ContainSemijoinTSTS[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(T)) error {
	const name = "contain-semijoin[TS↑,TS↑]"
	px := newPeek(ordered(xs, span, relation.Order{relation.TSAsc}, opt.VerifyOrder))
	py := newPeek(ordered(ys, span, relation.Order{relation.TSAsc}, opt.VerifyOrder))
	probe := opt.Probe
	probe.SetBuffers(2)

	state := make([]held[T], 0, 16) // unmatched x, awaiting a y strictly inside; pre-sized for the hot loop

	//tdb:hotpath
	for {
		xh, xok := px.Head()
		yh, yok := py.Head()
		if !yok || (!xok && len(state) == 0) {
			break
		}
		sy := span(yh)
		if xok && interval.CmpStart(span(xh), sy) <= 0 {
			x, _ := px.Take()
			probe.IncReadLeft()
			if len(state) == cap(state) {
				probe.IncStateGrow()
			}
			state = append(state, held[T]{elem: x, span: span(x)})
			probe.StateAdd(1)
			probe.ObserveActive(int64(len(state)))
			if err := opt.checkLimit(); err != nil {
				return orderError(name, err)
			}
			opt.observe()
			continue
		}
		py.Take()
		probe.IncReadRight()
		// Emit and retire the x that contain y; collect the x that can
		// contain no future y (y.TS ascending ⇒ future y.TE > y.TS ≥ sy.TS).
		kept := state[:0]
		for _, h := range state {
			probe.IncComparisons(1)
			switch {
			case containMatch(h.span, sy):
				probe.IncEmitted(1)
				emit(h.elem)
				probe.StateRemove(1)
			case h.span.BeforeOrMeets(sy):
				probe.StateRemove(1)
			default:
				kept = append(kept, h)
			}
		}
		state = kept
		opt.observe()
	}
	probe.StateRemove(int64(len(state)))
	opt.observe()
	if err := px.Err(); err != nil {
		return orderError(name, err)
	}
	if err := py.Err(); err != nil {
		return orderError(name, err)
	}
	return nil
}

// ContainedSemijoinTSTS evaluates Contained-semijoin(X,Y) with both inputs
// sorted on ValidFrom ascending (Table 1 case (c)): the retained state is
// the set of y tuples whose lifespan spans the X frontier — the candidate
// containers. Each x is decided, and emitted in input order, the moment it
// is read.
func ContainedSemijoinTSTS[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(T)) error {
	const name = "contained-semijoin[TS↑,TS↑]"
	px := newPeek(ordered(xs, span, relation.Order{relation.TSAsc}, opt.VerifyOrder))
	py := newPeek(ordered(ys, span, relation.Order{relation.TSAsc}, opt.VerifyOrder))
	probe := opt.Probe
	probe.SetBuffers(2)

	state := make([]held[T], 0, 16) // y tuples that may contain the next x; pre-sized for the hot loop

	gc := func(frontier interval.Time) {
		kept := state[:0]
		for _, h := range state {
			// y can contain an x with x.TS >= frontier only if
			// y.TE > x.TE > x.TS >= frontier.
			if h.span.End <= frontier {
				probe.StateRemove(1)
				continue
			}
			kept = append(kept, h)
		}
		state = kept
	}

	//tdb:hotpath
	for {
		xh, xok := px.Head()
		if !xok {
			break
		}
		sx := span(xh)
		// Pull every y that starts strictly before x; later y cannot
		// contain x (container must start strictly earlier).
		if yh, yok := py.Head(); yok && interval.CmpStart(span(yh), sx) < 0 {
			y, _ := py.Take()
			probe.IncReadRight()
			sy := span(y)
			if !sy.BeforeOrMeets(sx) { // not dead on arrival
				if len(state) == cap(state) {
					probe.IncStateGrow()
				}
				state = append(state, held[T]{elem: y, span: sy})
				probe.StateAdd(1)
				probe.ObserveActive(int64(len(state)))
				if err := opt.checkLimit(); err != nil {
					return orderError(name, err)
				}
			}
			opt.observe()
			continue
		}
		px.Take()
		probe.IncReadLeft()
		gc(sx.Start)
		for _, h := range state {
			probe.IncComparisons(1)
			if containMatch(h.span, sx) {
				probe.IncEmitted(1)
				emit(xh)
				break
			}
		}
		opt.observe()
	}
	probe.StateRemove(int64(len(state)))
	opt.observe()
	if err := px.Err(); err != nil {
		return orderError(name, err)
	}
	if err := py.Err(); err != nil {
		return orderError(name, err)
	}
	return nil
}

// OverlapSemijoin evaluates Overlap-semijoin(X,Y) — select each x whose
// lifespan shares at least one chronon with some y — with both inputs
// sorted on ValidFrom ascending. As Table 2 case (b) promises, the local
// workspace is exactly the two input buffers: a buffered x either precedes
// every remaining y (discard x), or the buffered y precedes every remaining
// x (discard y), or the two intersect (emit x, keep y for the next x).
// Output preserves the X input order.
func OverlapSemijoin[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(T)) error {
	const name = "overlap-semijoin[TS↑,TS↑]"
	px := newPeek(ordered(xs, span, relation.Order{relation.TSAsc}, opt.VerifyOrder))
	py := newPeek(ordered(ys, span, relation.Order{relation.TSAsc}, opt.VerifyOrder))
	probe := opt.Probe
	probe.SetBuffers(2)

	//tdb:hotpath
	for {
		x, xok := px.Head()
		if !xok {
			break
		}
		y, yok := py.Head()
		if !yok {
			break
		}
		sx, sy := span(x), span(y)
		probe.IncComparisons(1)
		switch {
		case sx.BeforeOrMeets(sy):
			// x ends before the earliest remaining y begins.
			px.Take()
			probe.IncReadLeft()
		case sy.BeforeOrMeets(sx):
			// y ends before x (and every later x) begins.
			py.Take()
			probe.IncReadRight()
		default:
			probe.IncEmitted(1)
			emit(x)
			px.Take()
			probe.IncReadLeft()
		}
		opt.observe()
	}
	if err := px.Err(); err != nil {
		return orderError(name, err)
	}
	if err := py.Err(); err != nil {
		return orderError(name, err)
	}
	return nil
}

// BufferedLoopSemijoin is the fallback for sort orderings with no
// garbage-collection criteria ("–" in Table 1): it buffers all of Y and
// streams X against it, emitting each x with a witness under the given
// predicate (e.g. containMatch for Contain-semijoin, its flip for
// Contained-semijoin). Workspace: |Y| + the input buffers.
func BufferedLoopSemijoin[T any](xs, ys stream.Stream[T], span Span[T], match func(x, y interval.Interval) bool, opt Options, emit func(T)) error {
	probe := opt.Probe
	probe.SetBuffers(2)
	var stateY []held[T]
	for {
		y, ok := ys.Next()
		if !ok {
			break
		}
		probe.IncReadRight()
		if len(stateY) == cap(stateY) {
			probe.IncStateGrow()
		}
		stateY = append(stateY, held[T]{elem: y, span: span(y)})
		probe.StateAdd(1)
		probe.ObserveActive(int64(len(stateY)))
		if err := opt.checkLimit(); err != nil {
			return orderError("buffered-loop-semijoin", err)
		}
		opt.observe()
	}
	if err := ys.Err(); err != nil {
		return orderError("buffered-loop-semijoin", err)
	}
	for {
		x, ok := xs.Next()
		if !ok {
			break
		}
		probe.IncReadLeft()
		sx := span(x)
		for _, h := range stateY {
			probe.IncComparisons(1)
			if match(sx, h.span) {
				probe.IncEmitted(1)
				emit(x)
				break
			}
		}
	}
	if err := xs.Err(); err != nil {
		return orderError("buffered-loop-semijoin", err)
	}
	probe.StateRemove(int64(len(stateY)))
	opt.observe()
	return nil
}
