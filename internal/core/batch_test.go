package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/relation"
)

// colsOf lays items out as endpoint columns, in slice order.
func colsOf(items []item) Cols {
	c := Cols{
		TS: make([]interval.Time, len(items)),
		TE: make([]interval.Time, len(items)),
	}
	for i, it := range items {
		c.TS[i], c.TE[i] = it.iv.Start, it.iv.End
	}
	return c
}

// The batch kernels promise more than multiset equality: the engine's
// byte-identical contract needs the row engine's exact emission sequence.
// Every check below therefore compares ordered sequences, not sets.

type joinCase struct {
	name           string
	orderX, orderY relation.Order
	row            func(xs, ys []item, opt Options, emit func(x, y item)) error
	batch          func(x, y Cols, opt Options, emit func(xi, yi int32)) error
}

func joinCases() []joinCase {
	return []joinCase{
		{
			name:   "contain-TSTS",
			orderX: relation.Order{relation.TSAsc}, orderY: relation.Order{relation.TSAsc},
			row: func(xs, ys []item, opt Options, emit func(x, y item)) error {
				return ContainJoinTSTS(streamOf(xs), streamOf(ys), itemSpan, opt, emit)
			},
			batch: BatchContainJoinTSTS,
		},
		{
			name:   "overlap",
			orderX: relation.Order{relation.TSAsc}, orderY: relation.Order{relation.TSAsc},
			row: func(xs, ys []item, opt Options, emit func(x, y item)) error {
				return OverlapJoin(streamOf(xs), streamOf(ys), itemSpan, opt, emit)
			},
			batch: BatchOverlapJoin,
		},
		{
			name:   "meets",
			orderX: relation.Order{relation.TEAsc}, orderY: relation.Order{relation.TSAsc},
			row: func(xs, ys []item, opt Options, emit func(x, y item)) error {
				return MeetsJoin(streamOf(xs), streamOf(ys), itemSpan, opt, emit)
			},
			batch: BatchMeetsJoin,
		},
		{
			name:   "equal",
			orderX: relation.Order{relation.TSAsc}, orderY: relation.Order{relation.TSAsc},
			row: func(xs, ys []item, opt Options, emit func(x, y item)) error {
				return EqualJoin(streamOf(xs), streamOf(ys), itemSpan, opt, emit)
			},
			batch: BatchEqualJoin,
		},
		{
			name:   "starts",
			orderX: relation.Order{relation.TSAsc}, orderY: relation.Order{relation.TSAsc},
			row: func(xs, ys []item, opt Options, emit func(x, y item)) error {
				return StartsJoin(streamOf(xs), streamOf(ys), itemSpan, opt, emit)
			},
			batch: BatchStartsJoin,
		},
		{
			name:   "finishes",
			orderX: relation.Order{relation.TEAsc}, orderY: relation.Order{relation.TEAsc},
			row: func(xs, ys []item, opt Options, emit func(x, y item)) error {
				return FinishesJoin(streamOf(xs), streamOf(ys), itemSpan, opt, emit)
			},
			batch: BatchFinishesJoin,
		},
	}
}

type semijoinCase struct {
	name           string
	orderX, orderY relation.Order
	row            func(xs, ys []item, opt Options, emit func(item)) error
	batch          func(x, y Cols, opt Options, emit func(int32)) error
}

func semijoinCases() []semijoinCase {
	return []semijoinCase{
		{
			name:   "contain-pairscan",
			orderX: relation.Order{relation.TSAsc}, orderY: relation.Order{relation.TEAsc},
			row: func(xs, ys []item, opt Options, emit func(item)) error {
				return ContainSemijoin(streamOf(xs), streamOf(ys), itemSpan, opt, emit)
			},
			batch: BatchContainSemijoin,
		},
		{
			name:   "contained-pairscan",
			orderX: relation.Order{relation.TEAsc}, orderY: relation.Order{relation.TSAsc},
			row: func(xs, ys []item, opt Options, emit func(item)) error {
				return ContainedSemijoin(streamOf(xs), streamOf(ys), itemSpan, opt, emit)
			},
			batch: BatchContainedSemijoin,
		},
		{
			name:   "contain-TSTS",
			orderX: relation.Order{relation.TSAsc}, orderY: relation.Order{relation.TSAsc},
			row: func(xs, ys []item, opt Options, emit func(item)) error {
				return ContainSemijoinTSTS(streamOf(xs), streamOf(ys), itemSpan, opt, emit)
			},
			batch: BatchContainSemijoinTSTS,
		},
		{
			name:   "contained-TSTS",
			orderX: relation.Order{relation.TSAsc}, orderY: relation.Order{relation.TSAsc},
			row: func(xs, ys []item, opt Options, emit func(item)) error {
				return ContainedSemijoinTSTS(streamOf(xs), streamOf(ys), itemSpan, opt, emit)
			},
			batch: BatchContainedSemijoinTSTS,
		},
		{
			name:   "overlap",
			orderX: relation.Order{relation.TSAsc}, orderY: relation.Order{relation.TSAsc},
			row: func(xs, ys []item, opt Options, emit func(item)) error {
				return OverlapSemijoin(streamOf(xs), streamOf(ys), itemSpan, opt, emit)
			},
			batch: BatchOverlapSemijoin,
		},
		{
			name:   "meets",
			orderX: relation.Order{relation.TEAsc}, orderY: relation.Order{relation.TSAsc},
			row: func(xs, ys []item, opt Options, emit func(item)) error {
				return MeetsSemijoin(streamOf(xs), streamOf(ys), itemSpan, opt, emit)
			},
			batch: BatchMeetsSemijoin,
		},
		{
			name:   "equal",
			orderX: relation.Order{relation.TSAsc}, orderY: relation.Order{relation.TSAsc},
			row: func(xs, ys []item, opt Options, emit func(item)) error {
				return EqualSemijoin(streamOf(xs), streamOf(ys), itemSpan, opt, emit)
			},
			batch: BatchEqualSemijoin,
		},
		{
			name:   "starts",
			orderX: relation.Order{relation.TSAsc}, orderY: relation.Order{relation.TSAsc},
			row: func(xs, ys []item, opt Options, emit func(item)) error {
				return StartsSemijoin(streamOf(xs), streamOf(ys), itemSpan, opt, emit)
			},
			batch: BatchStartsSemijoin,
		},
		{
			name:   "finishes",
			orderX: relation.Order{relation.TEAsc}, orderY: relation.Order{relation.TEAsc},
			row: func(xs, ys []item, opt Options, emit func(item)) error {
				return FinishesSemijoin(streamOf(xs), streamOf(ys), itemSpan, opt, emit)
			},
			batch: BatchFinishesSemijoin,
		},
	}
}

// randomWorkloads yields x/y instance pairs across sizes including empty
// and tiny inputs.
func randomWorkloads(t *testing.T, f func(name string, xs, ys []item)) {
	t.Helper()
	for _, n := range []int{0, 1, 2, 5, 30, 200} {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed*977 + int64(n)))
			ny := 0
			if n > 0 {
				ny = 1 + rng.Intn(2*n)
			}
			xs := genItems(rng, n, 0)
			ys := genItems(rng, ny, 1000)
			f(fmt.Sprintf("n=%d/seed=%d", n, seed), xs, ys)
		}
	}
}

func TestBatchJoinsMatchRowEngineExactly(t *testing.T) {
	for _, jc := range joinCases() {
		jc := jc
		t.Run(jc.name, func(t *testing.T) {
			randomWorkloads(t, func(name string, xs, ys []item) {
				xs, ys = sorted(xs, jc.orderX), sorted(ys, jc.orderY)
				rowProbe, batchProbe := newProbe(), newProbe()
				var want []string
				if err := jc.row(xs, ys, Options{Probe: rowProbe, VerifyOrder: true}, func(x, y item) {
					want = append(want, pairKey(x, y))
				}); err != nil {
					t.Fatalf("%s: row: %v", name, err)
				}
				var got []string
				if err := jc.batch(colsOf(xs), colsOf(ys), Options{Probe: batchProbe, VerifyOrder: true}, func(xi, yi int32) {
					got = append(got, pairKey(xs[xi], ys[yi]))
				}); err != nil {
					t.Fatalf("%s: batch: %v", name, err)
				}
				sameSequence(t, jc.name+"/"+name, got, want)
				sameProbeTotals(t, jc.name+"/"+name, batchProbe, rowProbe)
			})
		})
	}
}

func TestBatchSemijoinsMatchRowEngineExactly(t *testing.T) {
	for _, sc := range semijoinCases() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			randomWorkloads(t, func(name string, xs, ys []item) {
				xs, ys = sorted(xs, sc.orderX), sorted(ys, sc.orderY)
				rowProbe, batchProbe := newProbe(), newProbe()
				var want []int
				if err := sc.row(xs, ys, Options{Probe: rowProbe, VerifyOrder: true}, func(x item) {
					want = append(want, x.id)
				}); err != nil {
					t.Fatalf("%s: row: %v", name, err)
				}
				var got []int
				if err := sc.batch(colsOf(xs), colsOf(ys), Options{Probe: batchProbe, VerifyOrder: true}, func(xi int32) {
					got = append(got, xs[xi].id)
				}); err != nil {
					t.Fatalf("%s: batch: %v", name, err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s/%s: %d emitted, row engine emitted %d", sc.name, name, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s/%s: emission %d = #%d, row engine emitted #%d", sc.name, name, i, got[i], want[i])
					}
				}
				sameProbeTotals(t, sc.name+"/"+name, batchProbe, rowProbe)
			})
		})
	}
}

func sameSequence(t *testing.T, name string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, row engine emitted %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: emission %d = %s, row engine emitted %s", name, i, got[i], want[i])
		}
	}
}

// sameProbeTotals checks the externally meaningful counters agree with the
// row engine: reads, emissions, and comparison work. (Growth counts differ
// by construction — the batch state is arena-backed and pooled.)
func sameProbeTotals(t *testing.T, name string, got, want *metrics.Probe) {
	t.Helper()
	if got.ReadLeft != want.ReadLeft || got.ReadRight != want.ReadRight {
		t.Fatalf("%s: reads L=%d R=%d, row engine L=%d R=%d", name, got.ReadLeft, got.ReadRight, want.ReadLeft, want.ReadRight)
	}
	if got.Emitted != want.Emitted {
		t.Fatalf("%s: emitted %d, row engine %d", name, got.Emitted, want.Emitted)
	}
	if got.Comparisons != want.Comparisons {
		t.Fatalf("%s: comparisons %d, row engine %d", name, got.Comparisons, want.Comparisons)
	}
}

func TestBatchContainJoinGovernedBreachMatchesRow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := sorted(genItems(rng, 400, 0), relation.Order{relation.TSAsc})
	ys := sorted(genItems(rng, 400, 1000), relation.Order{relation.TSAsc})
	const limit = 4
	rowProbe, batchProbe := newProbe(), newProbe()
	rowErr := ContainJoinTSTS(streamOf(xs), streamOf(ys), itemSpan,
		Options{Probe: rowProbe, Limit: limit}, func(x, y item) {})
	batchErr := BatchContainJoinTSTS(colsOf(xs), colsOf(ys),
		Options{Probe: batchProbe, Limit: limit}, func(xi, yi int32) {})
	if !errors.Is(rowErr, ErrWorkspaceBreach) {
		t.Fatalf("row engine did not breach: %v", rowErr)
	}
	if !errors.Is(batchErr, ErrWorkspaceBreach) {
		t.Fatalf("batch engine did not breach: %v", batchErr)
	}
	// Both abort on the same state transition: identical reads so far.
	if rowProbe.ReadLeft != batchProbe.ReadLeft || rowProbe.ReadRight != batchProbe.ReadRight {
		t.Fatalf("breach points differ: batch L=%d R=%d, row L=%d R=%d",
			batchProbe.ReadLeft, batchProbe.ReadRight, rowProbe.ReadLeft, rowProbe.ReadRight)
	}
}

func TestBatchVerifyOrderRejectsUnsortedInput(t *testing.T) {
	bad := Cols{TS: []interval.Time{5, 1}, TE: []interval.Time{9, 8}}
	good := Cols{TS: []interval.Time{1}, TE: []interval.Time{2}}
	if err := BatchContainJoinTSTS(bad, good, Options{VerifyOrder: true}, func(xi, yi int32) {}); err == nil {
		t.Fatal("unsorted X accepted")
	}
	if err := BatchOverlapSemijoin(good, bad, Options{VerifyOrder: true}, func(xi int32) {}); err == nil {
		t.Fatal("unsorted Y accepted")
	}
}

func TestBatchCoalesceMatchesRowEngine(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		items := genItems(rng, 60, 0)
		for i := range items {
			items[i].id = i % 4 // a few groups with many runs each
		}
		// Grouped by key, each group sorted on ValidFrom: the operator's
		// input contract.
		relation.SortSpans(items, itemSpan, relation.Order{relation.TSAsc})
		grouped := make([]item, 0, len(items))
		for g := 0; g < 4; g++ {
			for _, it := range items {
				if it.id == g {
					grouped = append(grouped, it)
				}
			}
		}
		type out struct {
			key  int
			span interval.Interval
		}
		var want []out
		err := Coalesce(streamOf(grouped), func(t item) int { return t.id }, itemSpan,
			func(rep item, s interval.Interval) item { return item{id: rep.id, iv: s} },
			Options{Probe: newProbe()}, func(x item) { want = append(want, out{x.id, x.iv}) })
		if err != nil {
			t.Fatalf("seed %d: row: %v", seed, err)
		}
		var got []out
		err = BatchCoalesce(colsOf(grouped), func(i, j int32) bool { return grouped[i].id == grouped[j].id },
			Options{Probe: newProbe()}, func(rep int32, s interval.Interval) { got = append(got, out{grouped[rep].id, s}) })
		if err != nil {
			t.Fatalf("seed %d: batch: %v", seed, err)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d coalesced spans, row engine %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: output %d = %+v, row engine %+v", seed, i, got[i], want[i])
			}
		}
	}
}

func TestBatchCoalesceRejectsUnsortedGroup(t *testing.T) {
	c := Cols{TS: []interval.Time{5, 1}, TE: []interval.Time{9, 3}}
	err := BatchCoalesce(c, func(i, j int32) bool { return true }, Options{}, func(int32, interval.Interval) {})
	if err == nil {
		t.Fatal("unsorted group accepted")
	}
}
