// Package core implements the paper's primary contribution: stream
// processing algorithms for temporal join and semijoin operators
// (Section 4.2). Each algorithm consumes its inputs exactly once, in a
// required sort order, keeping a local state whose size is characterized by
// Tables 1–3 of the paper; the state is instrumented through
// metrics.Probe so the experiments can measure the characterizations.
//
// The algorithms are generic over the element type T with a lifespan
// accessor, so the same implementations serve the canonical 4-tuple of the
// data model, engine rows, and plain intervals in tests.
//
// Naming follows the paper:
//
//   - Contain-join(X,Y) pairs x with y when the lifespan of x contains that
//     of y: x.TS < y.TS ∧ y.TE < x.TE (y "during" x, strictly).
//   - Contain-semijoin(X,Y) selects the x that contain at least one y.
//   - Contained-semijoin(X,Y) selects the x contained in at least one y.
//   - Overlap uses the general TQuel sense: the lifespans share a chronon.
//   - Before-join(X,Y) pairs x with y when x.TE < y.TS.
package core

import (
	"errors"
	"fmt"

	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/obs"
	"tdb/internal/relation"
	"tdb/internal/stream"
)

// ErrWorkspaceBreach is the governed-workspace violation: an operator's
// measured workspace (state high-water mark plus input buffers) exceeded
// the ceiling in Options.Limit. The operator aborts instead of growing
// past its admission bound; the engine catches the error and degrades to
// a baseline algorithm with a bounded-by-construction workspace.
var ErrWorkspaceBreach = errors.New("core: workspace exceeds governed bound")

// Span extracts the lifespan of an element.
type Span[T any] func(T) interval.Interval

// ReadPolicy selects which input stream a two-input stream processor
// advances next. Correctness does not depend on the policy — garbage
// collection only discards tuples that cannot match any future tuple of the
// other stream — but the workspace profile does (Section 4.2.1).
type ReadPolicy uint8

const (
	// ReadSweep advances the stream whose buffered head is earliest in
	// the sweep order. It keeps the lookahead component of the state
	// empty: the state reduces to the spanning sets of Table 1.
	ReadSweep ReadPolicy = iota
	// ReadLambda is the paper's policy: advance the stream expected to
	// let the most state tuples be discarded, estimating the frontier
	// advance with the mean inter-arrival gaps 1/λx and 1/λy. It
	// reproduces the paper's full state characterization, including the
	// lookahead component.
	ReadLambda
)

// String names the policy.
func (p ReadPolicy) String() string {
	if p == ReadLambda {
		return "lambda"
	}
	return "sweep"
}

// Options configures a stream algorithm run.
type Options struct {
	// Probe receives cost accounting; nil disables instrumentation.
	Probe *metrics.Probe
	// Policy selects the read policy for the two-input join engines.
	Policy ReadPolicy
	// LambdaX and LambdaY are the mean arrival rates (tuples per
	// chronon) of the inputs, used by ReadLambda. Zero means unknown; the
	// engine falls back to a gap of 1 chronon.
	LambdaX, LambdaY float64
	// VerifyOrder wraps the inputs so that a violation of the
	// algorithm's required sort order fails the run with a descriptive
	// error instead of silently producing a wrong answer.
	VerifyOrder bool
	// Sampler, when non-nil, receives state(t) observations — the
	// retained-state level against the operator's logical clock (input
	// tuples consumed) — turning the paper's Table 1–3 state
	// characterizations into observable trajectories. Nil disables
	// curve collection, same discipline as Probe.
	Sampler *obs.StateSampler
	// Limit, when positive, is the governed workspace ceiling in tuples:
	// the operator aborts with ErrWorkspaceBreach as soon as its measured
	// workspace (probe state high-water mark plus buffers) exceeds it.
	// Enforcement needs a non-nil Probe; zero disables governing.
	Limit int64
}

// checkLimit enforces the governed workspace ceiling after a state
// transition. Ungoverned runs (Limit 0) pay one branch.
func (o Options) checkLimit() error {
	if o.Limit > 0 && o.Probe.Workspace() > o.Limit {
		return fmt.Errorf("%w: workspace %d > %d", ErrWorkspaceBreach, o.Probe.Workspace(), o.Limit)
	}
	return nil
}

// observe records the probe's current retained state against its logical
// clock. Operators call it after every state transition; with a nil
// sampler or nil probe it costs only a branch.
func (o Options) observe() {
	if o.Sampler == nil {
		return
	}
	o.Sampler.Observe(o.Probe.TuplesRead(), o.Probe.StateNow())
}

// gapX returns the expected frontier advance 1/λx in chronons, at least 1.
func (o Options) gapX() interval.Time {
	if o.LambdaX <= 0 {
		return 1
	}
	g := interval.Time(1 / o.LambdaX)
	if g < 1 {
		g = 1
	}
	return g
}

func (o Options) gapY() interval.Time {
	if o.LambdaY <= 0 {
		return 1
	}
	g := interval.Time(1 / o.LambdaY)
	if g < 1 {
		g = 1
	}
	return g
}

// peek is a one-element lookahead over a stream: the buffered head is the
// paper's input buffer (Buffer-x / Buffer-y).
type peek[T any] struct {
	in     stream.Stream[T]
	head   T
	ok     bool
	primed bool
}

func newPeek[T any](in stream.Stream[T]) *peek[T] { return &peek[T]{in: in} }

// Head returns the buffered element without consuming it.
func (p *peek[T]) Head() (T, bool) {
	if !p.primed {
		p.head, p.ok = p.in.Next()
		p.primed = true
	}
	return p.head, p.ok
}

// Take consumes and returns the buffered element.
func (p *peek[T]) Take() (T, bool) {
	x, ok := p.Head()
	p.primed = false
	return x, ok
}

func (p *peek[T]) Err() error { return p.in.Err() }

// ordered wraps a stream with an order check when opt.VerifyOrder is set.
func ordered[T any](in stream.Stream[T], span Span[T], o relation.Order, verify bool) stream.Stream[T] {
	if !verify {
		return in
	}
	return stream.CheckOrdered(in, span, o.Compare)
}

// orderError decorates a stream error with the operator name.
func orderError(op string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%s: %w", op, err)
}
