package core

import (
	"sync"

	"tdb/internal/stream"
)

// Async adapts a callback-style stream algorithm into a pull-based
// stream.Stream by running the algorithm in a goroutine and handing its
// emissions over a channel. It is the glue that lets the join processors
// participate in stream processor networks (paper Section 4.1: function
// composition as connecting processors through which data objects flow).
//
// Synchronization: err is guarded by mu and written before ch is closed,
// so Err observes the final error both when called after Next returns
// ok=false and when polled concurrently. Stop closes quit, which unblocks
// any pending producer send (the emit select below) and makes subsequent
// Next calls return ok=false deterministically.
type Async[T any] struct {
	ch   chan T
	quit chan struct{}
	once sync.Once

	mu  sync.Mutex
	err error
}

// GoRun starts run in a goroutine; every value passed to the algorithm's
// emit callback becomes an element of the returned stream. After the
// consumer calls Stop, further emissions are dropped and the producer runs
// to completion in the background.
func GoRun[T any](run func(emit func(T)) error) *Async[T] {
	a := &Async[T]{ch: make(chan T, 64), quit: make(chan struct{})}
	go func() {
		err := run(func(t T) {
			select {
			case a.ch <- t:
			case <-a.quit:
			}
		})
		a.mu.Lock()
		a.err = err
		a.mu.Unlock()
		close(a.ch)
	}()
	return a
}

// GoRunPairs is GoRun for two-output algorithms (joins): each emitted pair
// becomes one stream element.
func GoRunPairs[T any](run func(emit func(x, y T)) error) *Async[stream.Pair[T, T]] {
	return GoRun(func(emit func(stream.Pair[T, T])) error {
		return run(func(x, y T) { emit(stream.Pair[T, T]{First: x, Second: y}) })
	})
}

// Next implements stream.Stream. Once Stop has returned, Next returns
// ok=false: Stop abandons the stream, including elements still buffered.
func (a *Async[T]) Next() (T, bool) {
	select {
	case <-a.quit:
		var zero T
		return zero, false
	default:
	}
	select {
	case t, ok := <-a.ch:
		return t, ok
	case <-a.quit:
		var zero T
		return zero, false
	}
}

// Err implements stream.Stream. It is meaningful once Next has returned
// ok=false; it is safe to call from any goroutine at any time.
func (a *Async[T]) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// Stop abandons the stream: the producer's remaining emissions are dropped
// (closing quit unblocks any emit blocked on a full channel) and its
// goroutine finishes in the background. Stop is idempotent.
func (a *Async[T]) Stop() {
	a.once.Do(func() { close(a.quit) })
}
