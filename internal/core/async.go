package core

import (
	"sync"

	"tdb/internal/stream"
)

// Async adapts a callback-style stream algorithm into a pull-based
// stream.Stream by running the algorithm in a goroutine and handing its
// emissions over a channel. It is the glue that lets the join processors
// participate in stream processor networks (paper Section 4.1: function
// composition as connecting processors through which data objects flow).
type Async[T any] struct {
	ch   chan T
	err  error // set before ch is closed; read after ch is drained
	quit chan struct{}
	once sync.Once
}

// GoRun starts run in a goroutine; every value passed to the algorithm's
// emit callback becomes an element of the returned stream. After the
// consumer calls Stop, further emissions are dropped and the producer runs
// to completion in the background.
func GoRun[T any](run func(emit func(T)) error) *Async[T] {
	a := &Async[T]{ch: make(chan T, 64), quit: make(chan struct{})}
	go func() {
		err := run(func(t T) {
			select {
			case a.ch <- t:
			case <-a.quit:
			}
		})
		a.err = err
		close(a.ch)
	}()
	return a
}

// GoRunPairs is GoRun for two-output algorithms (joins): each emitted pair
// becomes one stream element.
func GoRunPairs[T any](run func(emit func(x, y T)) error) *Async[stream.Pair[T, T]] {
	return GoRun(func(emit func(stream.Pair[T, T])) error {
		return run(func(x, y T) { emit(stream.Pair[T, T]{First: x, Second: y}) })
	})
}

// Next implements stream.Stream.
func (a *Async[T]) Next() (T, bool) {
	t, ok := <-a.ch
	return t, ok
}

// Err implements stream.Stream. It is meaningful once Next has returned
// ok=false (the channel close happens after err is set).
func (a *Async[T]) Err() error { return a.err }

// Stop abandons the stream: the producer's remaining emissions are dropped
// and its goroutine finishes in the background. Stop is idempotent.
func (a *Async[T]) Stop() {
	a.once.Do(func() { close(a.quit) })
	// Drain so the producer is never blocked on a full channel.
	go func() {
		for range a.ch {
		}
	}()
}
