package core

import (
	"errors"
	"math/rand"
	"testing"

	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/stream"
)

// Figure 6 worked example: X sorted on ValidFrom ↑, Y on ValidTo ↑.
func TestContainSemijoinFigure6(t *testing.T) {
	xs := []item{
		{1, interval.New(0, 10)},
		{2, interval.New(4, 20)},
	}
	ys := []item{
		{10, interval.New(-2, 3)}, // starts before every x: inside none
		{11, interval.New(2, 6)},  // inside x1
		{12, interval.New(5, 15)}, // inside x2
		{13, interval.New(1, 30)}, // inside none
	}
	sx := sorted(xs, relation.Order{relation.TSAsc})
	sy := sorted(ys, relation.Order{relation.TEAsc})

	probe := newProbe()
	got := collectSemi(t, func(emit func(item)) error {
		return ContainSemijoin(streamOf(sx), streamOf(sy), itemSpan,
			Options{Probe: probe, VerifyOrder: true}, emit)
	})
	sameSemi(t, "contain-semijoin fig6", got, map[int]bool{1: true, 2: true}, sx, sy)
	if probe.StateHighWater != 0 || probe.Workspace() != 2 {
		t.Errorf("Figure 6 workspace must be exactly the two buffers: state=%d workspace=%d",
			probe.StateHighWater, probe.Workspace())
	}

	// The same scan's contained direction.
	got = collectSemi(t, func(emit func(item)) error {
		return ContainedSemijoin(streamOf(sorted(ys, relation.Order{relation.TEAsc})),
			streamOf(sorted(xs, relation.Order{relation.TSAsc})), itemSpan,
			Options{VerifyOrder: true}, emit)
	})
	sameSemi(t, "contained-semijoin fig6", got, map[int]bool{11: true, 12: true}, sy, sx)
}

type semiVariant struct {
	name           string
	orderX, orderY relation.Order
	buffersOnly    bool
	theta          func(x, y interval.Interval) bool
	run            func(xs, ys stream.Stream[item], opt Options, emit func(item)) error
}

func semijoinVariants() []semiVariant {
	containThetaXY := containMatch // x contains y
	return []semiVariant{
		{
			name:   "contain-semijoin[TS↑,TE↑]",
			orderX: relation.Order{relation.TSAsc}, orderY: relation.Order{relation.TEAsc},
			buffersOnly: true, theta: containThetaXY,
			run: func(xs, ys stream.Stream[item], opt Options, emit func(item)) error {
				return ContainSemijoin(xs, ys, itemSpan, opt, emit)
			},
		},
		{
			name:   "contain-semijoin[TE↓,TS↓]",
			orderX: relation.Order{relation.TEDesc}, orderY: relation.Order{relation.TSDesc},
			buffersOnly: true, theta: containThetaXY,
			run: func(xs, ys stream.Stream[item], opt Options, emit func(item)) error {
				return ContainSemijoinTEDescTSDesc(xs, ys, itemSpan, opt, emit)
			},
		},
		{
			name:   "contain-semijoin[TS↑,TS↑]",
			orderX: relation.Order{relation.TSAsc}, orderY: relation.Order{relation.TSAsc},
			theta: containThetaXY,
			run: func(xs, ys stream.Stream[item], opt Options, emit func(item)) error {
				return ContainSemijoinTSTS(xs, ys, itemSpan, opt, emit)
			},
		},
		{
			name:   "contained-semijoin[TE↑,TS↑]",
			orderX: relation.Order{relation.TEAsc}, orderY: relation.Order{relation.TSAsc},
			buffersOnly: true, theta: containedTheta,
			run: func(xs, ys stream.Stream[item], opt Options, emit func(item)) error {
				return ContainedSemijoin(xs, ys, itemSpan, opt, emit)
			},
		},
		{
			name:   "contained-semijoin[TS↓,TE↓]",
			orderX: relation.Order{relation.TSDesc}, orderY: relation.Order{relation.TEDesc},
			buffersOnly: true, theta: containedTheta,
			run: func(xs, ys stream.Stream[item], opt Options, emit func(item)) error {
				return ContainedSemijoinTSDescTEDesc(xs, ys, itemSpan, opt, emit)
			},
		},
		{
			name:   "contained-semijoin[TS↑,TS↑]",
			orderX: relation.Order{relation.TSAsc}, orderY: relation.Order{relation.TSAsc},
			theta: containedTheta,
			run: func(xs, ys stream.Stream[item], opt Options, emit func(item)) error {
				return ContainedSemijoinTSTS(xs, ys, itemSpan, opt, emit)
			},
		},
		{
			name:   "overlap-semijoin[TS↑,TS↑]",
			orderX: relation.Order{relation.TSAsc}, orderY: relation.Order{relation.TSAsc},
			buffersOnly: true, theta: overlapTheta,
			run: func(xs, ys stream.Stream[item], opt Options, emit func(item)) error {
				return OverlapSemijoin(xs, ys, itemSpan, opt, emit)
			},
		},
	}
}

// Property: every semijoin variant agrees with the exhaustive oracle, and
// the Figure 6 variants never retain state beyond the two input buffers.
func TestSemijoinsMatchOracle(t *testing.T) {
	for _, v := range semijoinVariants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(101))
			for trial := 0; trial < 250; trial++ {
				xs := genItems(rng, rng.Intn(30), 0)
				ys := genItems(rng, rng.Intn(30), 1000)
				probe := newProbe()
				got := collectSemi(t, func(emit func(item)) error {
					return v.run(streamOf(sorted(xs, v.orderX)), streamOf(sorted(ys, v.orderY)),
						Options{Probe: probe, VerifyOrder: true}, emit)
				})
				want := oracleSemi(xs, ys, v.theta)
				sameSemi(t, v.name, got, want, sorted(xs, v.orderX), sorted(ys, v.orderY))
				if v.buffersOnly && probe.StateHighWater != 0 {
					t.Fatalf("%s retained %d state tuples; Table 1 case (d) promises buffers only",
						v.name, probe.StateHighWater)
				}
				if t.Failed() {
					return
				}
			}
		})
	}
}

// Semijoin output preserves the X input order — the property Section 4.2.3
// exploits when a semijoin preprocesses a join. ContainSemijoinTSTS is the
// documented exception: it emits each x when its witness arrives.
func TestSemijoinOrderPreserving(t *testing.T) {
	for _, v := range semijoinVariants() {
		if v.name == "contain-semijoin[TS↑,TS↑]" {
			continue
		}
		v := v
		t.Run(v.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(103))
			for trial := 0; trial < 60; trial++ {
				xs := sorted(genItems(rng, 25, 0), v.orderX)
				ys := sorted(genItems(rng, 25, 1000), v.orderY)
				pos := map[int]int{}
				for i, x := range xs {
					pos[x.id] = i
				}
				last := -1
				err := v.run(streamOf(xs), streamOf(ys), Options{}, func(x item) {
					if pos[x.id] < last {
						t.Fatalf("%s: output out of input order", v.name)
					}
					last = pos[x.id]
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// The TS↑,TS↑ semijoins (Table 1 case (c)) keep state bounded by the
// spanning sets with one sweep step of lookahead: for Contain, the x read
// by the next y's ValidFrom that survived the previous garbage collection;
// for Contained, symmetrically the y candidates against consecutive x.
func TestSemijoinTSTSStateBound(t *testing.T) {
	peak := func(inner, outer []item) int64 {
		// max over consecutive outer o', with prev frontier = previous
		// o.TS, of |{i in inner : i.TS <= o'.TS, i.TE > prev}|.
		so := sorted(outer, relation.Order{relation.TSAsc})
		prev := interval.MinTime
		var best int64
		for _, o := range so {
			var cnt int64
			for _, in := range inner {
				if in.iv.Start <= o.iv.Start && in.iv.End > prev {
					cnt++
				}
			}
			if cnt > best {
				best = cnt
			}
			prev = o.iv.Start
		}
		return best
	}
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 100; trial++ {
		xs := genItems(rng, 5+rng.Intn(40), 0)
		ys := genItems(rng, 5+rng.Intn(40), 1000)

		probe := newProbe()
		err := ContainSemijoinTSTS(streamOf(sorted(xs, relation.Order{relation.TSAsc})),
			streamOf(sorted(ys, relation.Order{relation.TSAsc})), itemSpan,
			Options{Probe: probe}, func(item) {})
		if err != nil {
			t.Fatal(err)
		}
		if b := peak(xs, ys); probe.StateHighWater > b {
			t.Fatalf("contain TS,TS state %d > bound %d", probe.StateHighWater, b)
		}

		probe = newProbe()
		err = ContainedSemijoinTSTS(streamOf(sorted(xs, relation.Order{relation.TSAsc})),
			streamOf(sorted(ys, relation.Order{relation.TSAsc})), itemSpan,
			Options{Probe: probe}, func(item) {})
		if err != nil {
			t.Fatal(err)
		}
		if b := peak(ys, xs); probe.StateHighWater > b {
			t.Fatalf("contained TS,TS state %d > bound %d", probe.StateHighWater, b)
		}
	}
}

func TestBufferedLoopSemijoinMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 100; trial++ {
		xs := genItems(rng, rng.Intn(25), 0)
		ys := genItems(rng, rng.Intn(25), 1000)
		probe := newProbe()
		got := collectSemi(t, func(emit func(item)) error {
			return BufferedLoopSemijoin(streamOf(xs), streamOf(ys), itemSpan, containedTheta,
				Options{Probe: probe}, emit)
		})
		want := oracleSemi(xs, ys, containedTheta)
		sameSemi(t, "buffered-loop-semijoin", got, want, xs, ys)
		if probe.StateHighWater != int64(len(ys)) {
			t.Fatalf("state %d, want |Y|=%d", probe.StateHighWater, len(ys))
		}
		if t.Failed() {
			return
		}
	}
}

func TestSemijoinVerifyOrderAndErrors(t *testing.T) {
	// The fixtures force the scans to actually reach the out-of-order
	// element (an algorithm may legitimately stop before a stream's end).
	bad := []item{{1, interval.New(9, 12)}, {2, interval.New(3, 5)}}
	if err := ContainSemijoin(streamOf(bad), streamOf([]item{{3, interval.New(10, 11)}}),
		itemSpan, Options{VerifyOrder: true}, func(item) {}); err == nil {
		t.Error("unsorted X accepted by contain-semijoin")
	}
	badY := []item{{1, interval.New(1, 20)}, {2, interval.New(0, 30)}}
	if err := ContainedSemijoinTSTS(streamOf([]item{{3, interval.New(5, 6)}}), streamOf(badY),
		itemSpan, Options{VerifyOrder: true}, func(item) {}); err == nil {
		t.Error("unsorted Y accepted by contained-semijoin TS,TS")
	}
	good := []item{{3, interval.New(1, 2)}, {4, interval.New(2, 30)}}

	boom := errors.New("boom")
	if err := ContainSemijoin(stream.FailAfter(streamOf(good), 1, boom), streamOf(good), itemSpan,
		Options{}, func(item) {}); !errors.Is(err, boom) {
		t.Errorf("X failure not surfaced: %v", err)
	}
	if err := BufferedLoopSemijoin(streamOf(good), stream.FailAfter(streamOf(good), 0, boom),
		itemSpan, containMatch, Options{}, func(item) {}); !errors.Is(err, boom) {
		t.Errorf("Y failure not surfaced: %v", err)
	}
}

func TestSemijoinEmptyInputs(t *testing.T) {
	some := []item{{1, interval.New(0, 10)}}
	for _, v := range semijoinVariants() {
		n := 0
		if err := v.run(stream.Empty[item](), streamOf(some), Options{}, func(item) { n++ }); err != nil || n != 0 {
			t.Errorf("%s empty X: n=%d err=%v", v.name, n, err)
		}
		if err := v.run(streamOf(some), stream.Empty[item](), Options{}, func(item) { n++ }); err != nil || n != 0 {
			t.Errorf("%s empty Y: n=%d err=%v", v.name, n, err)
		}
	}
}
