package core

import (
	"testing"

	"tdb/internal/interval"
	"tdb/internal/relation"
)

// The spec under test is the TS↑/TS↑ contain-join of Figure 5; the sweepY
// cases use the TS↑/TE↑ variant, whose ReadSweep side choice is driven by
// the buffered y's ValidFrom rather than its sort key.
func tstsSpec() joinSpec {
	return joinSpec{
		name:   "contain-join[TS↑,TS↑]",
		match:  containMatch,
		keyX:   func(s interval.Interval) interval.Time { return s.Start },
		keyY:   func(s interval.Interval) interval.Time { return s.Start },
		xDead:  func(x interval.Interval, yk interval.Time) bool { return x.End <= yk },
		yDead:  func(y interval.Interval, xk interval.Time) bool { return y.Start <= xk },
		orderX: relation.Order{relation.TSAsc},
		orderY: relation.Order{relation.TSAsc},
	}
}

func ivSpan(s interval.Interval) interval.Interval { return s }

func heldOf(spans ...interval.Interval) []held[interval.Interval] {
	hs := make([]held[interval.Interval], len(spans))
	for i, s := range spans {
		hs[i] = held[interval.Interval]{elem: s, span: s}
	}
	return hs
}

func mustChoose(t *testing.T, name string, opt Options, xh, yh interval.Interval, xok, yok bool,
	sx, sy []held[interval.Interval], wantX bool) {
	t.Helper()
	got := chooseSide(tstsSpec(), opt, xh, yh, xok, yok, ivSpan, sx, sy)
	if got != wantX {
		t.Errorf("%s: chooseSide = %v, want %v", name, got, wantX)
	}
}

func TestChooseSideExhaustedStream(t *testing.T) {
	x := interval.New(5, 10)
	y := interval.New(7, 9)
	// An exhausted side can never be read, regardless of policy or state.
	for _, opt := range []Options{{Policy: ReadSweep}, {Policy: ReadLambda}} {
		mustChoose(t, "X exhausted", opt, interval.Interval{}, y, false, true, nil, heldOf(x), false)
		mustChoose(t, "Y exhausted", opt, x, interval.Interval{}, true, false, heldOf(y), nil, true)
	}
}

func TestChooseSideSweepOrder(t *testing.T) {
	opt := Options{Policy: ReadSweep}
	mustChoose(t, "smaller X key", opt, interval.New(3, 9), interval.New(5, 8), true, true, nil, nil, true)
	mustChoose(t, "smaller Y key", opt, interval.New(6, 9), interval.New(5, 8), true, true, nil, nil, false)
	// The tie goes to X — the convention the shard-ownership proof of the
	// parallel driver relies on.
	mustChoose(t, "tie", opt, interval.New(5, 9), interval.New(5, 8), true, true, nil, nil, true)
}

// The TS↑/TE↑ variant sweeps against the buffered y's ValidFrom, not its
// ValidTo sort key: y=[2,20) sorts late but must be read before x=[5,..)
// because it starts first.
func TestChooseSideSweepYOverride(t *testing.T) {
	spec := tstsSpec()
	spec.keyY = func(s interval.Interval) interval.Time { return s.End }
	spec.sweepY = func(s interval.Interval) interval.Time { return s.Start }
	x, y := interval.New(5, 9), interval.New(2, 20)
	if got := chooseSide(spec, Options{Policy: ReadSweep}, x, y, true, true, ivSpan, nil, nil); got {
		t.Error("sweepY override ignored: chose X against an earlier-starting y")
	}
	// Without the override the ValidTo key would (wrongly, for this
	// ordering) prefer X.
	spec.sweepY = nil
	if got := chooseSide(spec, Options{Policy: ReadSweep}, x, y, true, true, ivSpan, nil, nil); !got {
		t.Error("without sweepY the raw keyY should have preferred X")
	}
}

// ReadLambda reads the side expected to let more opposite-state tuples be
// discarded.
func TestChooseSideLambdaDisposableMajority(t *testing.T) {
	opt := Options{Policy: ReadLambda, LambdaX: 1, LambdaY: 1}
	x, y := interval.New(10, 30), interval.New(11, 12)
	// Reading X advances the X frontier to kx+1 = 11; y-state tuples with
	// Start <= 11 become disposable.
	stateY := heldOf(interval.New(8, 9), interval.New(9, 14), interval.New(12, 13))
	mustChoose(t, "Y-state majority", opt, x, y, true, true, nil, stateY, true)
	// Symmetric: reading Y advances the Y frontier to ky+1 = 12; x-state
	// tuples with End <= 12 become disposable.
	stateX := heldOf(interval.New(1, 4), interval.New(2, 11), interval.New(3, 40))
	mustChoose(t, "X-state majority", opt, x, y, true, true, stateX, nil, false)
}

// On a disposable tie the λ policy falls back to the sweep comparison.
func TestChooseSideLambdaTieFallsBackToKeys(t *testing.T) {
	opt := Options{Policy: ReadLambda, LambdaX: 1, LambdaY: 1}
	stateX := heldOf(interval.New(1, 4))
	stateY := heldOf(interval.New(2, 3))
	mustChoose(t, "tie, X first", opt, interval.New(10, 20), interval.New(11, 19), true, true, stateX, stateY, true)
	mustChoose(t, "tie, Y first", opt, interval.New(12, 20), interval.New(11, 19), true, true, stateX, stateY, false)
	mustChoose(t, "tie, equal keys", opt, interval.New(11, 20), interval.New(11, 19), true, true, stateX, stateY, true)
}

// Zero λ means the arrival rate is unknown: the lookahead gap defaults to
// one chronon, making the disposability estimate maximally conservative.
func TestChooseSideZeroLambdaGap(t *testing.T) {
	x, y := interval.New(10, 30), interval.New(25, 26)
	// With λx unknown the frontier estimate is kx+1 = 11, which frees the
	// y-state tuple starting at 11 but not the one at 12.
	onEdge := heldOf(interval.New(11, 40))
	past := heldOf(interval.New(12, 40))
	mustChoose(t, "gap reaches edge", Options{Policy: ReadLambda}, x, y, true, true, nil, onEdge, true)
	// Nothing disposable on either side: fall back to keys (kx=10 <= ky=25).
	mustChoose(t, "gap short of it", Options{Policy: ReadLambda}, x, y, true, true, nil, past, true)
	// A generous λx (0.1 → gap 10) reaches the Start=12 tuple too, while
	// the key fallback alone would also read X — distinguish via a case
	// where the majority flips the decision against the keys.
	optWide := Options{Policy: ReadLambda, LambdaX: 0.1}
	xLate := interval.New(27, 30)
	mustChoose(t, "wide gap frees Y state", optWide, xLate, y, true, true, nil, past, true)
}
