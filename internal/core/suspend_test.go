package core

import (
	"fmt"
	"testing"
	"time"

	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/stream"
)

// batchOverlapPairs runs the overlap join in one shot over slices.
func batchOverlapPairs(t *testing.T, xs, ys []interval.Interval) []string {
	t.Helper()
	var out []string
	err := OverlapJoin(stream.FromSlice(xs), stream.FromSlice(ys), ivSpan, Options{},
		func(x, y interval.Interval) { out = append(out, fmt.Sprintf("%v|%v", x, y)) })
	if err != nil {
		t.Fatalf("batch overlap join: %v", err)
	}
	return out
}

func TestRunnerIncrementalMatchesBatch(t *testing.T) {
	xs := []interval.Interval{{Start: 1, End: 5}, {Start: 2, End: 9}, {Start: 6, End: 8}, {Start: 7, End: 12}}
	ys := []interval.Interval{{Start: 0, End: 3}, {Start: 4, End: 7}, {Start: 8, End: 10}, {Start: 11, End: 13}}
	want := batchOverlapPairs(t, xs, ys)

	r := NewRunner[string](0)
	fx := Attach[interval.Interval](r)
	fy := Attach[interval.Interval](r)
	probe := &metrics.Probe{}
	r.Start(func(emit func(string)) error {
		return OverlapJoin[interval.Interval](fx, fy, ivSpan, Options{Probe: probe},
			func(x, y interval.Interval) { emit(fmt.Sprintf("%v|%v", x, y)) })
	})

	var got []string
	// Feed in unbalanced dribbles; after each quiescent point the drained
	// prefix must be a byte-identical prefix of the batch output.
	fx.Feed(xs[0], xs[1])
	fy.Feed(ys[0])
	r.Quiesce()
	got = append(got, r.Drain()...)
	checkPrefix(t, got, want)

	fy.Feed(ys[1], ys[2], ys[3])
	r.Quiesce()
	got = append(got, r.Drain()...)
	checkPrefix(t, got, want)

	fx.Feed(xs[2], xs[3])
	r.CloseAll()
	if err := r.Wait(); err != nil {
		t.Fatalf("runner: %v", err)
	}
	got = append(got, r.Drain()...)

	if len(got) != len(want) {
		t.Fatalf("incremental emitted %d pairs, batch %d", len(got), len(want))
	}
	checkPrefix(t, got, want)
	if r.Emitted() != int64(len(want)) {
		t.Errorf("Emitted() = %d, want %d", r.Emitted(), len(want))
	}
	if probe.Workspace() <= 0 {
		t.Errorf("probe workspace not tracked: %v", probe.Workspace())
	}
}

func checkPrefix(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) > len(want) {
		t.Fatalf("incremental emitted %d pairs, batch only %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("delta %d = %q, batch has %q", i, got[i], want[i])
		}
	}
}

func TestRunnerBackpressureSuspendsOperator(t *testing.T) {
	r := NewRunner[interval.Interval](2)
	fx := Attach[interval.Interval](r)
	r.Start(func(emit func(interval.Interval)) error {
		for {
			x, ok := fx.Next()
			if !ok {
				return nil
			}
			emit(x)
		}
	})
	for i := 0; i < 5; i++ {
		fx.Feed(interval.Interval{Start: interval.Time(i), End: interval.Time(i + 1)})
	}
	r.Quiesce()
	if s := r.Suspended(); s != "backpressure" {
		t.Fatalf("suspended = %q, want backpressure", s)
	}
	if n := r.PendingLen(); n != 2 {
		t.Fatalf("pending = %d, want cap 2", n)
	}
	// Draining resumes the operator; the remaining emissions arrive.
	var got int
	for got < 5 {
		got += len(r.Drain())
		r.Quiesce()
	}
	if s := r.Suspended(); s != "input" {
		t.Fatalf("suspended = %q, want input", s)
	}
	fx.Close()
	if err := r.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
}

func TestRunnerStopTearsDown(t *testing.T) {
	r := NewRunner[interval.Interval](0)
	fx := Attach[interval.Interval](r)
	fy := Attach[interval.Interval](r)
	r.Start(func(emit func(interval.Interval)) error {
		return OverlapJoin[interval.Interval](fx, fy, ivSpan, Options{},
			func(x, y interval.Interval) { emit(x) })
	})
	fx.Feed(interval.Interval{Start: 1, End: 4})
	r.Quiesce()
	r.Stop()
	if err := r.Wait(); err != nil {
		t.Fatalf("wait after stop: %v", err)
	}
	if got := r.Drain(); len(got) != 0 {
		t.Fatalf("drained %d after stop, want 0", len(got))
	}
	// Feeding after stop is a no-op, not a hang or panic.
	fx.Feed(interval.Interval{Start: 2, End: 3})
	if fx.Fed() != 1 {
		t.Errorf("fed after stop counted: %d", fx.Fed())
	}
}

func TestRunnerQuiesceWakesPromptly(t *testing.T) {
	r := NewRunner[interval.Interval](0)
	fx := Attach[interval.Interval](r)
	r.Start(func(emit func(interval.Interval)) error {
		for {
			x, ok := fx.Next()
			if !ok {
				return nil
			}
			emit(x)
		}
	})
	done := make(chan struct{})
	go func() {
		r.Quiesce()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Quiesce did not observe the suspended operator")
	}
	fx.Close()
	if err := r.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
}
