package core

import (
	"strings"
	"testing"

	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/stream"
)

// TestCoalesceEmptyInput: an empty batch emits nothing and the workspace is
// exactly the single input buffer.
func TestCoalesceEmptyInput(t *testing.T) {
	probe := &metrics.Probe{}
	out := coalesceAll(t, nil, probe)
	if len(out) != 0 {
		t.Fatalf("coalesce of empty input = %v", out)
	}
	if probe.Workspace() != 1 {
		t.Fatalf("workspace = %d, want 1 (buffer only)", probe.Workspace())
	}
	if probe.Emitted != 0 || probe.ReadLeft != 0 {
		t.Fatalf("probe = %+v, want untouched", probe)
	}
}

// TestCoalesceDuplicateTS: rows sharing a ValidFrom — identical spans,
// nested spans, and a same-start extension — collapse into one value-
// equivalent period per key instead of tripping the order check (equal
// starts satisfy ValidFrom-sorted).
func TestCoalesceDuplicateTS(t *testing.T) {
	in := []keyed{
		{"a", interval.New(3, 7)},
		{"a", interval.New(3, 7)}, // exact duplicate
		{"a", interval.New(3, 5)}, // nested, same start
		{"a", interval.New(3, 9)}, // same start, extends
		{"b", interval.New(3, 4)}, // same TS, other key
	}
	out := coalesceAll(t, in, nil)
	want := []keyed{
		{"a", interval.New(3, 9)},
		{"b", interval.New(3, 4)},
	}
	if len(out) != len(want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

// TestCoalesceMeetsAtDuplicateBoundary: a period ending exactly where the
// next begins merges (half-open adjacency), while a one-chronon gap splits.
func TestCoalesceMeetsAtDuplicateBoundary(t *testing.T) {
	in := []keyed{
		{"a", interval.New(0, 4)},
		{"a", interval.New(4, 8)},  // meets: merge
		{"a", interval.New(9, 12)}, // gap of one chronon: split
	}
	out := coalesceAll(t, in, nil)
	want := []keyed{
		{"a", interval.New(0, 8)},
		{"a", interval.New(9, 12)},
	}
	if len(out) != len(want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

// TestCoalesceUnsortedGroupRejected: a ValidFrom regression inside a group
// is an input-contract violation, reported rather than silently merged.
func TestCoalesceUnsortedGroupRejected(t *testing.T) {
	in := []keyed{
		{"a", interval.New(5, 9)},
		{"a", interval.New(3, 4)},
	}
	err := Coalesce(stream.FromSlice(in), keyedKey, keyedSpan, keyedWrap,
		Options{}, func(keyed) {})
	if err == nil || !strings.Contains(err.Error(), "not sorted") {
		t.Fatalf("err = %v, want group-order violation", err)
	}
}
