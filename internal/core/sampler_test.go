package core

import (
	"testing"

	"tdb/internal/interval"
	"tdb/internal/obs"
)

// TestSamplerRecordsStateCurve runs a join with a StateSampler hooked in and
// checks that the recorded state(t) trajectory matches the probe's own
// accounting: the curve peak equals the state high-water mark, the logical
// clock covers the whole input, and the final sample shows the drained state.
func TestSamplerRecordsStateCurve(t *testing.T) {
	var xs, ys []item
	for i := 0; i < 50; i++ {
		xs = append(xs, item{id: i, iv: interval.New(interval.Time(i), interval.Time(i+20))})
		ys = append(ys, item{id: 100 + i, iv: interval.New(interval.Time(i+1), interval.Time(i+3))})
	}
	probe := newProbe()
	sam := obs.NewStateSampler(obs.DefaultSamples)
	opt := Options{Probe: probe, Sampler: sam, VerifyOrder: true}
	err := ContainJoinTSTS(streamOf(xs), streamOf(ys), itemSpan, opt, func(x, y item) {})
	if err != nil {
		t.Fatal(err)
	}
	if sam.Seen() == 0 {
		t.Fatal("sampler saw no observations")
	}
	if got, want := sam.MaxState(), probe.StateHighWater; got != want {
		t.Errorf("curve peak = %d, probe high-water = %d", got, want)
	}
	samples := sam.Samples()
	last := samples[len(samples)-1]
	if last.Tick != probe.TuplesRead() {
		t.Errorf("final tick = %d, tuples read = %d", last.Tick, probe.TuplesRead())
	}
	if last.State != 0 {
		t.Errorf("final state = %d, want drained (0)", last.State)
	}
}

// TestSamplerNilIsFree checks the nil-sampler path: running with and without
// a sampler must produce identical probe accounting.
func TestSamplerNilIsFree(t *testing.T) {
	xs := []item{{1, interval.New(0, 10)}, {2, interval.New(2, 8)}}
	ys := []item{{3, interval.New(1, 5)}, {4, interval.New(3, 7)}}

	run := func(opt Options) string {
		if err := OverlapJoin(streamOf(xs), streamOf(ys), itemSpan, opt, func(x, y item) {}); err != nil {
			t.Fatal(err)
		}
		return opt.Probe.String()
	}
	without := run(Options{Probe: newProbe()})
	with := run(Options{Probe: newProbe(), Sampler: obs.NewStateSampler(8)})
	if without != with {
		t.Errorf("sampler changed accounting:\nwithout: %s\nwith:    %s", without, with)
	}
}
