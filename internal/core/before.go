package core

import (
	"sort"

	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/stream"
)

// BeforeJoinSorted evaluates Before-join(X,Y) — X.TE < Y.TS — with X
// streamed in ValidTo ascending order and Y materialized, sorted on
// ValidFrom ascending. The paper observes that no sort ordering bounds the
// state of a single-pass stream implementation of Before-join (its result
// is inherently near-Cartesian), but that "with proper sort orders,
// nested-loop join can avoid scanning the inner relation in its entirety":
// for each x only the suffix of Y starting at the first y with
// y.TS > x.TE qualifies, and because X arrives in ValidTo order that
// suffix start moves monotonically, located here by binary search.
func BeforeJoinSorted[T any](xs stream.Stream[T], ys []T, span Span[T], opt Options, emit func(x, y T)) error {
	const name = "before-join[TE↑;Y sorted TS↑]"
	in := ordered(xs, span, relation.Order{relation.TEAsc}, opt.VerifyOrder)
	probe := opt.Probe
	probe.SetBuffers(1)
	// The materialized inner relation is workspace.
	probe.StateAdd(int64(len(ys)))
	opt.observe()

	if err := relation.CheckSortedSpans(ys, func(t T) interval.Interval { return span(t) }, relation.Order{relation.TSAsc}); err != nil {
		probe.StateRemove(int64(len(ys)))
		return orderError(name, err)
	}

	lo := 0 // first possibly-qualifying suffix start; monotone in x.TE
	for {
		x, ok := in.Next()
		if !ok {
			break
		}
		probe.IncReadLeft()
		xe := span(x).End
		// First y with y.TS > x.TE, searched within the remaining suffix.
		d := sort.Search(len(ys)-lo, func(i int) bool {
			return span(ys[lo+i]).Start > xe
		})
		lo += d
		// Every y from that point on qualifies for this x; x.TE is
		// non-decreasing, so the suffix can only shrink for later x.
		for i := lo; i < len(ys); i++ {
			probe.IncComparisons(1)
			probe.IncEmitted(1)
			emit(x, ys[i])
		}
		opt.observe()
	}
	probe.StateRemove(int64(len(ys)))
	opt.observe()
	return orderError(name, in.Err())
}

// BeforeSemijoin evaluates Before-semijoin(X,Y) — select each x for which
// some y begins strictly after x ends. As Section 4.2.4 notes, a simple
// algorithm scans both operands once and is independent of any sort
// ordering: one pass over Y finds the maximal ValidFrom, one pass over X
// emits every x with x.TE < max. Workspace: the two input buffers plus the
// single summary chronon.
func BeforeSemijoin[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(T)) error {
	const name = "before-semijoin"
	probe := opt.Probe
	probe.SetBuffers(2)

	maxTS := interval.MinTime
	sawY := false
	for {
		y, ok := ys.Next()
		if !ok {
			break
		}
		probe.IncReadRight()
		if ts := span(y).Start; !sawY || ts > maxTS {
			maxTS, sawY = ts, true
		}
		opt.observe()
	}
	if err := ys.Err(); err != nil {
		return orderError(name, err)
	}
	probe.IncPasses()

	for {
		x, ok := xs.Next()
		if !ok {
			break
		}
		probe.IncReadLeft()
		probe.IncComparisons(1)
		if sawY && span(x).End < maxTS {
			probe.IncEmitted(1)
			emit(x)
		}
		opt.observe()
	}
	probe.IncPasses()
	return orderError(name, xs.Err())
}
