package core

import (
	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/stream"
)

// held is a state tuple: the element plus its cached lifespan.
type held[T any] struct {
	elem T
	span interval.Interval
}

// joinSpec describes one sort-order variant of a symmetric two-input stream
// join to the generic engine. The sweep keys give the monotone sort key of
// each input; the dead predicates are the garbage-collection criteria of
// the paper: xDead(x, k) must hold only when x can match no y whose sweep
// key is ≥ k (and symmetrically for yDead), which is exactly the condition
// "the tuples being discarded do not satisfy the join condition with any
// subsequent tuple" of Section 4.2.1.
type joinSpec struct {
	name           string
	match          func(x, y interval.Interval) bool
	keyX, keyY     func(interval.Interval) interval.Time
	xDead          func(x interval.Interval, yFrontier interval.Time) bool
	yDead          func(y interval.Interval, xFrontier interval.Time) bool
	orderX, orderY relation.Order
	// sweepY, when set, overrides keyY for the ReadSweep side choice: the
	// TS↑/TE↑ contain-join sweeps X against the *ValidFrom* of the
	// buffered y (reading only the x that could still start before it)
	// while garbage collection works on the ValidTo frontier.
	sweepY func(interval.Interval) interval.Time
}

// symJoin is the generic symmetric stream join engine. It reads each input
// exactly once under the configured read policy, maintains one state list
// per input, emits each qualifying pair exactly once (when its later-read
// element arrives and finds the earlier one in the opposite state), and
// garbage-collects with the spec's criteria.
func symJoin[T any](spec joinSpec, xs, ys stream.Stream[T], span Span[T], opt Options, emit func(x, y T)) error {
	px := newPeek(ordered(xs, span, spec.orderX, opt.VerifyOrder))
	py := newPeek(ordered(ys, span, spec.orderY, opt.VerifyOrder))
	probe := opt.Probe
	probe.SetBuffers(2)

	// Pre-size the sweep states: the common case holds a handful of
	// concurrently-live tuples, and reserving a small backing array keeps
	// the per-turn append in the hot loop from growing the slice.
	stateX := make([]held[T], 0, 16)
	stateY := make([]held[T], 0, 16)

	// gc filters a state list in place, keeping elements for which dead
	// is false, and accounts the discards.
	gc := func(state []held[T], dead func(interval.Interval, interval.Time) bool, frontier interval.Time) []held[T] {
		kept := state[:0]
		for _, h := range state {
			if dead(h.span, frontier) {
				continue
			}
			kept = append(kept, h)
		}
		probe.StateRemove(int64(len(state) - len(kept)))
		return kept
	}

	// The symmetric sweep: one read, one state scan, one retain per turn.
	//tdb:hotpath
	for {
		xh, xok := px.Head()
		if !xok && px.Err() != nil {
			return orderError(spec.name, px.Err())
		}
		yh, yok := py.Head()
		if !yok && py.Err() != nil {
			return orderError(spec.name, py.Err())
		}

		// Termination (Section 4.2.1 step 5): both streams consumed, or a
		// stream is exhausted with no corresponding state tuple — every
		// remaining pair would need an element that can no longer appear.
		if !xok && !yok {
			break
		}
		if (!xok && len(stateX) == 0) || (!yok && len(stateY) == 0) {
			break
		}

		readX := chooseSide(spec, opt, xh, yh, xok, yok, span, stateX, stateY)

		if readX {
			x, _ := px.Take()
			probe.IncReadLeft()
			sx := span(x)
			fx := spec.keyX(sx) // future X sweep keys are >= fx
			stateY = gc(stateY, spec.yDead, fx)
			for _, h := range stateY {
				probe.IncComparisons(1)
				if spec.match(sx, h.span) {
					probe.IncEmitted(1)
					emit(x, h.elem)
				}
			}
			// Retain x unless it is already dead against every future y.
			yFrontier := interval.MaxTime
			if yok {
				yFrontier = spec.keyY(span(yh))
			}
			if !spec.xDead(sx, yFrontier) {
				if len(stateX) == cap(stateX) {
					probe.IncStateGrow()
				}
				stateX = append(stateX, held[T]{elem: x, span: sx})
				probe.StateAdd(1)
				probe.ObserveActive(int64(len(stateX)))
				if err := opt.checkLimit(); err != nil {
					return orderError(spec.name, err)
				}
			}
			opt.observe()
		} else {
			y, _ := py.Take()
			probe.IncReadRight()
			sy := span(y)
			fy := spec.keyY(sy)
			stateX = gc(stateX, spec.xDead, fy)
			for _, h := range stateX {
				probe.IncComparisons(1)
				if spec.match(h.span, sy) {
					probe.IncEmitted(1)
					emit(h.elem, y)
				}
			}
			xFrontier := interval.MaxTime
			if xok {
				xFrontier = spec.keyX(span(xh))
			}
			if !spec.yDead(sy, xFrontier) {
				if len(stateY) == cap(stateY) {
					probe.IncStateGrow()
				}
				stateY = append(stateY, held[T]{elem: y, span: sy})
				probe.StateAdd(1)
				probe.ObserveActive(int64(len(stateY)))
				if err := opt.checkLimit(); err != nil {
					return orderError(spec.name, err)
				}
			}
			opt.observe()
		}
	}
	// Release whatever state remains.
	probe.StateRemove(int64(len(stateX) + len(stateY)))
	opt.observe()
	return nil
}

// chooseSide decides which input to advance. With ReadSweep it picks the
// smaller buffered sweep key (ties to X); with ReadLambda it implements the
// paper's policy: read the stream expected to let the most state tuples be
// discarded, estimating the frontier advance with 1/λ.
func chooseSide[T any](spec joinSpec, opt Options, xh, yh T, xok, yok bool, span Span[T], stateX, stateY []held[T]) bool {
	switch {
	case !xok:
		return false
	case !yok:
		return true
	}
	kx := spec.keyX(span(xh))
	ky := spec.keyY(span(yh))
	if opt.Policy == ReadSweep {
		sy := ky
		if spec.sweepY != nil {
			sy = spec.sweepY(span(yh))
		}
		return kx <= sy
	}
	// ReadLambda: estimate disposable counts.
	disposableY := 0
	for _, h := range stateY {
		if spec.yDead(h.span, kx+opt.gapX()) {
			disposableY++
		}
	}
	disposableX := 0
	for _, h := range stateX {
		if spec.xDead(h.span, ky+opt.gapY()) {
			disposableX++
		}
	}
	if disposableY != disposableX {
		return disposableY > disposableX // reading X frees Y-state tuples
	}
	return kx <= ky
}

// containMatch is the Contain-join condition: the lifespan of x contains
// that of y, X.TS < Y.TS ∧ Y.TE < X.TE (paper Section 4.2.1).
func containMatch(x, y interval.Interval) bool {
	return x.ContainsInterval(y)
}

// ContainJoinTSTS evaluates Contain-join(X,Y) with both inputs sorted on
// ValidFrom ascending (paper Figure 5, Table 1 case (a)). The retained
// state is {x whose lifespan spans the Y frontier} plus, under ReadLambda,
// the paper's lookahead component {y whose ValidFrom lies in the lifespan
// of the buffered x}; under ReadSweep the Y component is empty.
func ContainJoinTSTS[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(x, y T)) error {
	spec := joinSpec{
		name:   "contain-join[TS↑,TS↑]",
		match:  containMatch,
		keyX:   func(s interval.Interval) interval.Time { return s.Start },
		keyY:   func(s interval.Interval) interval.Time { return s.Start },
		xDead:  func(x interval.Interval, yk interval.Time) bool { return x.End <= yk },
		yDead:  func(y interval.Interval, xk interval.Time) bool { return y.Start <= xk },
		orderX: relation.Order{relation.TSAsc},
		orderY: relation.Order{relation.TSAsc},
	}
	return symJoin(spec, xs, ys, span, opt, emit)
}

// ContainJoinTSTE evaluates Contain-join(X,Y) with X sorted on ValidFrom
// ascending and Y on ValidTo ascending (Table 1 case (b)): the retained
// state is {x whose lifespan spans the Y ValidTo frontier} ∪ {y contained
// in the lifespan of the buffered x}.
//
// Note: the paper's garbage-collection phase for this ordering reads
// "dispose of X tuples if X.ValidTo > yb.ValidTo"; the comparison is
// inverted there (it would discard exactly the tuples that can still
// join). We implement the condition consistent with the paper's own state
// characterization (b): discard x once X.ValidTo ≤ the Y ValidTo frontier.
func ContainJoinTSTE[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(x, y T)) error {
	spec := joinSpec{
		name:   "contain-join[TS↑,TE↑]",
		match:  containMatch,
		keyX:   func(s interval.Interval) interval.Time { return s.Start },
		keyY:   func(s interval.Interval) interval.Time { return s.End },
		xDead:  func(x interval.Interval, yk interval.Time) bool { return x.End <= yk },
		yDead:  func(y interval.Interval, xk interval.Time) bool { return y.Start <= xk },
		orderX: relation.Order{relation.TSAsc},
		orderY: relation.Order{relation.TEAsc},
		sweepY: func(s interval.Interval) interval.Time { return s.Start },
	}
	return symJoin(spec, xs, ys, span, opt, emit)
}

// OverlapJoin evaluates Overlap-join(X,Y) — general TQuel overlap,
// X.TS < Y.TE ∧ Y.TS < X.TE — with both inputs sorted on ValidFrom
// ascending, the only appropriate ascending ordering (Table 2). The state
// is the set of tuples of each input whose lifespan spans the other
// input's frontier.
func OverlapJoin[T any](xs, ys stream.Stream[T], span Span[T], opt Options, emit func(x, y T)) error {
	spec := joinSpec{
		name:   "overlap-join[TS↑,TS↑]",
		match:  func(x, y interval.Interval) bool { return x.Intersects(y) },
		keyX:   func(s interval.Interval) interval.Time { return s.Start },
		keyY:   func(s interval.Interval) interval.Time { return s.Start },
		xDead:  func(x interval.Interval, yk interval.Time) bool { return x.End <= yk },
		yDead:  func(y interval.Interval, xk interval.Time) bool { return y.End <= xk },
		orderX: relation.Order{relation.TSAsc},
		orderY: relation.Order{relation.TSAsc},
	}
	return symJoin(spec, xs, ys, span, opt, emit)
}

// BufferedLoopJoin is the honest stream fallback for the sort orderings
// Table 1 marks "–" (no garbage-collection criteria exist): it buffers the
// whole left input as state and streams the right input against it. Its
// workspace is |X| + the input buffers, which is what the experiments
// measure to substantiate the "–" entries. It accepts any θ predicate over
// the two lifespans.
func BufferedLoopJoin[T any](xs, ys stream.Stream[T], span Span[T], match func(x, y interval.Interval) bool, opt Options, emit func(x, y T)) error {
	probe := opt.Probe
	probe.SetBuffers(2)
	var stateX []held[T]
	for {
		x, ok := xs.Next()
		if !ok {
			break
		}
		probe.IncReadLeft()
		if len(stateX) == cap(stateX) {
			probe.IncStateGrow()
		}
		stateX = append(stateX, held[T]{elem: x, span: span(x)})
		probe.StateAdd(1)
		probe.ObserveActive(int64(len(stateX)))
		if err := opt.checkLimit(); err != nil {
			return orderError("buffered-loop-join", err)
		}
		opt.observe()
	}
	if err := xs.Err(); err != nil {
		return orderError("buffered-loop-join", err)
	}
	for {
		y, ok := ys.Next()
		if !ok {
			break
		}
		probe.IncReadRight()
		sy := span(y)
		for _, h := range stateX {
			probe.IncComparisons(1)
			if match(h.span, sy) {
				probe.IncEmitted(1)
				emit(h.elem, y)
			}
		}
	}
	if err := ys.Err(); err != nil {
		return orderError("buffered-loop-join", err)
	}
	probe.StateRemove(int64(len(stateX)))
	opt.observe()
	return nil
}
