package live

import (
	"bytes"
	"errors"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/engine"
	"tdb/internal/fault"
	"tdb/internal/interval"
	"tdb/internal/obs"
)

// governedManager registers X/Y while empty — the catalog keeps the
// registration-time (zero) statistics until a trip refreshes them, which is
// exactly the staleness the breaker is built to catch.
func governedManager(t *testing.T, opts RegisterOptions) (*Manager, *StandingQuery, *obs.Registry) {
	t.Helper()
	db := newXYDB(t)
	reg := obs.NewRegistry()
	mgr := NewManager(db, reg, engine.Options{})
	t.Cleanup(mgr.Close)
	for _, n := range []string{"X", "Y"} {
		if _, err := mgr.Live(n, 0); err != nil {
			t.Fatal(err)
		}
	}
	q, err := mgr.Register("gov", xyTree(algebra.KindOverlap, false), opts)
	if err != nil {
		t.Fatal(err)
	}
	return mgr, q, reg
}

// appendOverlapping ingests n rows per relation, ValidFrom strictly
// increasing from *next, all ending at 1000 — every lifespan overlaps every
// other, so the true concurrency is the full row count while the catalog
// (refreshed only on trips; row counts stay under the auto-publish
// threshold) lags behind.
func appendOverlapping(t *testing.T, mgr *Manager, next *int, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ts := interval.Time(*next)
		if err := mgr.Append("X", xrow(*next, ts, 1000)); err != nil {
			t.Fatal(err)
		}
		if err := mgr.Append("Y", xrow(10000+*next, ts, 1000)); err != nil {
			t.Fatal(err)
		}
		*next++
	}
}

// First trip: stale-zero statistics make the bound 2, the measured
// workspace breaches it, and the breaker re-admits the query under
// refreshed statistics by full-log replay — the delta contract (and
// Verify) must hold across the restart.
func TestBreakerTripsAndReadmits(t *testing.T) {
	mgr, q, reg := governedManager(t, RegisterOptions{Govern: true})
	next := 0
	appendOverlapping(t, mgr, &next, 6)
	if _, err := q.Poll(); err != nil {
		t.Fatalf("poll: %v", err)
	}
	if q.Trips() != 1 {
		t.Fatalf("trips %d, want 1 (bound 2 vs overlapping workspace)", q.Trips())
	}
	if q.Mode() != ModeIncremental {
		t.Fatalf("mode %v, want incremental after re-admission", q.Mode())
	}
	if got := reg.Counter("tdb_governor_fallbacks_total", "").Value(); got != 1 {
		t.Fatalf("tdb_governor_fallbacks_total = %d, want 1", got)
	}
	// More input after the restart; the replayed prefix plus new deltas
	// must still be the byte-identical prefix of a batch run.
	appendOverlapping(t, mgr, &next, 2)
	if _, err := q.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	want := batchRows(t, mgr.DB(), xyTree(algebra.KindOverlap, false))
	got := q.Deltas()
	if len(got) != len(want) {
		t.Fatalf("deltas %d, batch %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key() != want[i].Key() {
			t.Fatalf("delta %d diverges after re-admission", i)
		}
	}
	if q.Bound() <= 2 {
		t.Fatalf("bound %f still stale after trip refreshed statistics", q.Bound())
	}
}

// escalate drives repeated drift rounds until the breaker exhausts its
// re-admissions (trips > breakerMaxTrips) and takes the terminal rung.
func escalate(t *testing.T, mgr *Manager, q *StandingQuery) {
	t.Helper()
	next := 0
	for _, n := range []int{6, 12, 30} {
		appendOverlapping(t, mgr, &next, n)
		if _, err := q.Poll(); err != nil {
			if q.Broken() == nil {
				t.Fatalf("poll: %v", err)
			}
			return // terminal decline surfaced mid-escalation
		}
	}
}

// Re-admissions exhausted with degradation allowed: the query drops to
// batch mode seeded with the emitted multiset, and keeps answering polls
// with the correct (multiset) deltas.
func TestBreakerDegradesToBatch(t *testing.T) {
	mgr, q, reg := governedManager(t, RegisterOptions{Govern: true, AllowDegrade: true})
	escalate(t, mgr, q)
	if q.Mode() != ModeBatch {
		t.Fatalf("mode %v after %d trips, want batch", q.Mode(), q.Trips())
	}
	if q.Trips() != breakerMaxTrips+1 {
		t.Fatalf("trips %d, want %d", q.Trips(), breakerMaxTrips+1)
	}
	if got := reg.Counter("tdb_governor_fallbacks_total", "").Value(); got != int64(q.Trips()) {
		t.Fatalf("counter %d, want %d", got, q.Trips())
	}
	// Batch mode must still satisfy its (multiset) delta contract.
	if _, _, err := q.Verify(); err != nil {
		t.Fatalf("degraded verify: %v", err)
	}
	if q.Suspended() != "batch" {
		t.Fatalf("suspended %q, want batch", q.Suspended())
	}
}

// Re-admissions exhausted with degradation disallowed: the breaker opens.
// Polls return the typed ErrBreakerOpen, ingestion keeps flowing, and the
// query reports itself broken.
func TestBreakerDeclines(t *testing.T) {
	mgr, q, _ := governedManager(t, RegisterOptions{Govern: true})
	escalate(t, mgr, q)
	if q.Broken() == nil {
		t.Fatalf("breaker never opened (trips %d, mode %v)", q.Trips(), q.Mode())
	}
	if _, err := q.Poll(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("poll error %v, want ErrBreakerOpen", err)
	}
	if _, err := q.Finish(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("finish error %v, want ErrBreakerOpen", err)
	}
	if q.Suspended() != "broken" {
		t.Fatalf("suspended %q, want broken", q.Suspended())
	}
	// A declined query must not fail ingestion.
	if err := mgr.Append("X", xrow(9999, 999, 1001)); err != nil {
		t.Fatalf("append after decline: %v", err)
	}
}

// An ungoverned query never trips, whatever the drift.
func TestUngovernedNeverTrips(t *testing.T) {
	mgr, q, reg := governedManager(t, RegisterOptions{})
	next := 0
	appendOverlapping(t, mgr, &next, 20)
	if _, err := q.Poll(); err != nil {
		t.Fatal(err)
	}
	if q.Trips() != 0 {
		t.Fatalf("ungoverned query tripped %d times", q.Trips())
	}
	if got := reg.Counter("tdb_governor_fallbacks_total", "").Value(); got != 0 {
		t.Fatalf("counter %d, want 0", got)
	}
}

// A torn checkpoint write — the failpoint persists only a strict prefix,
// as a crash mid-write would — is detected at read time as the typed
// ErrCorruptCheckpoint, never replayed as a silently shorter cut.
func TestCheckpointTornWriteDetected(t *testing.T) {
	defer fault.Reset()
	cp := &Checkpoint{Query: "q", LeftRows: 7, RightRows: 9, Emitted: 3, DeltaHash: 0xdead}

	var good bytes.Buffer
	if _, err := cp.WriteTo(&good); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(bytes.NewReader(good.Bytes()))
	if err != nil {
		t.Fatalf("intact roundtrip: %v", err)
	}
	if *back != *cp {
		t.Fatalf("roundtrip %+v != %+v", back, cp)
	}

	if err := fault.Arm("live/checkpoint-write=torn"); err != nil {
		t.Fatal(err)
	}
	var torn bytes.Buffer
	if _, err := cp.WriteTo(&torn); err != nil {
		t.Fatalf("torn write reports no error (the crash is silent): %v", err)
	}
	fault.Reset()
	if torn.Len() >= good.Len() {
		t.Fatalf("torn image %d bytes, want strict prefix of %d", torn.Len(), good.Len())
	}
	if _, err := ReadCheckpoint(bytes.NewReader(torn.Bytes())); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("torn image error %v, want ErrCorruptCheckpoint", err)
	}

	// Every truncation point must be rejected too — no prefix length may
	// decode as a valid checkpoint.
	enc := good.Bytes()
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeCheckpoint(enc[:n]); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("truncation at %d: error %v, want ErrCorruptCheckpoint", n, err)
		}
	}
	// Flipping any byte must be rejected as well.
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x40
		if _, err := DecodeCheckpoint(mut); err == nil {
			t.Fatalf("bit flip at %d decoded successfully", i)
		}
	}
}

// A read-side fault surfaces through ReadCheckpoint as the typed injected
// error.
func TestCheckpointReadFault(t *testing.T) {
	defer fault.Reset()
	cp := &Checkpoint{Query: "q"}
	var buf bytes.Buffer
	if _, err := cp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm("live/checkpoint-read=error"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(bytes.NewReader(buf.Bytes())); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error %v, want fault.ErrInjected", err)
	}
}
