package live

import (
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/engine"
	"tdb/internal/interval"
	"tdb/internal/obs"
)

// TestBackpressureEventJournaled: a standing query stalling on its
// pending cap journals exactly one backpressure event per episode, not
// one per blocked delta.
func TestBackpressureEventJournaled(t *testing.T) {
	db := newXYDB(t)
	events := obs.NewEventLog(16)
	m := NewManager(db, nil, engine.Options{Events: events})
	defer m.Close()
	q, err := m.Register("q", xyTree(algebra.KindOverlap, false), RegisterOptions{MaxPending: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := m.Append("X", xrow(i, interval.Time(i), 100)); err != nil {
			t.Fatal(err)
		}
		if err := m.Append("Y", xrow(50+i, interval.Time(i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	q.Quiesce()
	if got := q.Suspended(); got != "backpressure" {
		t.Fatalf("suspended = %q, want backpressure", got)
	}
	var bp []obs.Event
	for _, e := range events.Events() {
		if e.Kind == obs.EventBackpressure {
			bp = append(bp, e)
		}
	}
	if len(bp) != 1 {
		t.Fatalf("backpressure events = %d, want 1 per episode; journal %+v", len(bp), events.Events())
	}
	if bp[0].Query != "q" || bp[0].Detail["backlog"] == "" || bp[0].Detail["max_pending"] == "" {
		t.Errorf("backpressure event incomplete: %+v", bp[0])
	}

	// Draining ends the episode; a second stall journals a second event.
	if _, err := q.Poll(); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 8; i++ {
		if err := m.Append("X", xrow(i, interval.Time(i), 100)); err != nil {
			t.Fatal(err)
		}
		if err := m.Append("Y", xrow(50+i, interval.Time(i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	q.Quiesce()
	bp = bp[:0]
	for _, e := range events.Events() {
		if e.Kind == obs.EventBackpressure {
			bp = append(bp, e)
		}
	}
	if len(bp) != 2 {
		t.Errorf("after second stall, backpressure events = %d, want 2", len(bp))
	}
}

// TestBreakerTripEventJournaled: a governed trip journals a breaker-trip
// event whose outcome matches what the ladder actually did.
func TestBreakerTripEventJournaled(t *testing.T) {
	db := newXYDB(t)
	reg := obs.NewRegistry()
	events := obs.NewEventLog(16)
	mgr := NewManager(db, reg, engine.Options{Events: events})
	t.Cleanup(mgr.Close)
	for _, n := range []string{"X", "Y"} {
		if _, err := mgr.Live(n, 0); err != nil {
			t.Fatal(err)
		}
	}
	q, err := mgr.Register("gov", xyTree(algebra.KindOverlap, false), RegisterOptions{Govern: true})
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	appendOverlapping(t, mgr, &next, 6)
	if _, err := q.Poll(); err != nil {
		t.Fatalf("poll: %v", err)
	}
	if q.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", q.Trips())
	}
	var trips []obs.Event
	for _, e := range events.Events() {
		if e.Kind == obs.EventBreakerTrip {
			trips = append(trips, e)
		}
	}
	if len(trips) != 1 {
		t.Fatalf("breaker-trip events = %d, want 1; journal %+v", len(trips), events.Events())
	}
	ev := trips[0]
	if ev.Query != "gov" || ev.Detail["outcome"] != "re-admit" {
		t.Errorf("trip event = %+v, want query gov outcome re-admit", ev)
	}
	if ev.Detail["trip"] == "" || ev.Detail["breach"] == "" {
		t.Errorf("trip event missing arithmetic: %+v", ev.Detail)
	}
}
