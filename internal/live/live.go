// Package live turns the batch reproduction into a continuously ingesting
// system: tuples arrive in ValidFrom order at rate λ, are watermarked and
// released into storage, and standing temporal queries — registered once —
// are evaluated *incrementally* by feeding the unchanged internal/core
// single-pass operators from the live streams, emitting result deltas as
// input advances.
//
// Admission reuses the paper's state characterizations (Tables 1–3, via
// optimizer.EstimateStanding): a query is accepted for incremental
// evaluation only when its (sort-order, operator) pair has a bounded
// workspace under the catalog's λ/duration statistics; otherwise it is
// degraded to periodic batch re-execution, or declined with an explain
// note when degradation is disallowed.
//
// The delta contract: because the core operators are deterministic
// functions of their input sequences and suspension only time-dilates the
// same run, an incremental query's accumulated deltas are at every
// watermark a byte-identical prefix of the one batch execution of the same
// operator over the final input sequences — and equal to it once the
// streams close.
package live

import (
	"fmt"
	"sort"

	"tdb/internal/algebra"
	"tdb/internal/catalog"
	"tdb/internal/engine"
	"tdb/internal/fault"
	"tdb/internal/interval"
	"tdb/internal/obs"
	"tdb/internal/optimizer"
	"tdb/internal/relation"
)

func init() {
	fault.Declare("live/append", "table ingestion entry (Table.Append)")
	fault.Declare("live/deliver", "released-row delivery to a standing query")
	fault.Declare("live/checkpoint-write", "checkpoint serialization; torn mode writes a prefix")
	fault.Declare("live/checkpoint-read", "checkpoint deserialization")
}

// Manager owns the live tables and standing queries of one database.
// Methods are not safe for concurrent use; the ingestion driver serializes
// them (the operator goroutines beneath StandingRun synchronize
// themselves).
type Manager struct {
	db      *engine.DB
	reg     *obs.Registry
	opt     engine.Options
	tables  map[string]*Table
	queries map[string]*StandingQuery
}

// NewManager returns a manager over the database. reg may be nil;
// otherwise per-table and per-query gauges are published. opt configures
// batch re-executions of degraded queries.
func NewManager(db *engine.DB, reg *obs.Registry, opt engine.Options) *Manager {
	return &Manager{
		db:      db,
		reg:     reg,
		opt:     opt,
		tables:  map[string]*Table{},
		queries: map[string]*StandingQuery{},
	}
}

// DB returns the underlying database.
func (m *Manager) DB() *engine.DB { return m.db }

// Live makes a registered relation ingestible with the given reorder
// slack, returning its table (idempotent; the slack of an existing table
// is unchanged).
func (m *Manager) Live(name string, slack interval.Time) (*Table, error) {
	if t, ok := m.tables[name]; ok {
		return t, nil
	}
	rel, err := m.db.Relation(name)
	if err != nil {
		return nil, err
	}
	if !rel.Schema.Temporal() {
		return nil, fmt.Errorf("live: relation %s is not temporal", name)
	}
	t := &Table{m: m, name: name, schema: rel.Schema, slack: slack,
		watermark: interval.MinTime, maxTS: interval.MinTime}
	m.tables[name] = t
	return t, nil
}

// Table returns the live table of a relation, or nil.
func (m *Manager) Table(name string) *Table { return m.tables[name] }

// Tables returns the live tables, sorted by relation name.
func (m *Manager) Tables() []*Table {
	out := make([]*Table, 0, len(m.tables))
	for _, n := range m.tableNames() {
		out = append(out, m.tables[n])
	}
	return out
}

// batchReference runs a standing plan's operator once over the current
// (released) relation contents — the reference sequence an incremental
// query's accumulated deltas must be a byte-identical prefix of.
func (m *Manager) batchReference(plan *engine.StandingPlan) ([]relation.Row, error) {
	run := plan.Start(nil, 0)
	feedAll := func(name string, feed func([]relation.Row)) ([]relation.Row, error) {
		rel, err := m.db.Relation(name)
		if err != nil {
			return nil, err
		}
		rows := append([]relation.Row(nil), rel.Rows...)
		schema := rel.Schema
		sort.SliceStable(rows, func(i, j int) bool {
			return interval.CmpStart(rows[i].Span(schema), rows[j].Span(schema)) < 0
		})
		feed(rows)
		return rows, nil
	}
	left, err := feedAll(plan.LeftRel, run.FeedLeft)
	if err != nil {
		run.Stop()
		return nil, err
	}
	if plan.RightRel == plan.LeftRel {
		run.FeedRight(left)
	} else if _, err := feedAll(plan.RightRel, run.FeedRight); err != nil {
		run.Stop()
		return nil, err
	}
	return run.Close()
}

// Append ingests one row into a relation, making it live with zero slack
// on first use.
func (m *Manager) Append(name string, row relation.Row) error {
	t, ok := m.tables[name]
	if !ok {
		var err error
		if t, err = m.Live(name, 0); err != nil {
			return err
		}
	}
	return t.Append(row)
}

// Flush force-releases every table's reorder buffer and republishes
// catalog statistics — the end-of-batch barrier. Every table is flushed
// even if one fails; the first error is returned.
func (m *Manager) Flush() error {
	var first error
	for _, name := range m.tableNames() {
		if err := m.tables[name].Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (m *Manager) tableNames() []string {
	out := make([]string, 0, len(m.tables))
	for n := range m.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Register admits a standing query. The optimized tree is compiled to a
// standing plan and characterized under the paper's Tables 1–3; bounded
// characterizations run incrementally, unbounded ones degrade to periodic
// batch re-execution (opts.AllowDegrade) or are declined with the
// characterization as explain note.
func (m *Manager) Register(name string, tree algebra.Expr, opts RegisterOptions) (*StandingQuery, error) {
	if _, ok := m.queries[name]; ok {
		return nil, fmt.Errorf("live: standing query %q already registered", name)
	}
	q, err := m.admit(name, tree, opts)
	if err != nil {
		return nil, err
	}
	m.queries[name] = q
	return q, nil
}

func (m *Manager) admit(name string, tree algebra.Expr, opts RegisterOptions) (*StandingQuery, error) {
	plan, err := engine.BuildStanding(m.db, tree)
	if err != nil {
		if ue, ok := err.(*engine.ErrUnsupportedStanding); ok {
			return m.degradeOrDecline(name, tree, opts, ue.Reason)
		}
		return nil, err
	}
	sx, sy := m.statsOf(plan.LeftRel), m.statsOf(plan.RightRel)
	est := optimizer.EstimateStanding(plan.Kind, plan.Semijoin, sx, sy)
	if !est.Bounded {
		return m.degradeOrDecline(name, tree, opts, est.String())
	}
	q := newIncremental(m, name, tree, plan, est, opts)
	return q, nil
}

func (m *Manager) degradeOrDecline(name string, tree algebra.Expr, opts RegisterOptions, reason string) (*StandingQuery, error) {
	if !opts.AllowDegrade {
		return nil, &DeclinedError{Query: name, Reason: reason}
	}
	return newBatch(m, name, tree, reason), nil
}

// statsOf returns the catalog statistics of a relation, or empty stats for
// a relation never analyzed (an empty live table).
func (m *Manager) statsOf(name string) *catalog.Stats {
	if s := m.db.Stats(name); s != nil {
		return s
	}
	return &catalog.Stats{}
}

// Query returns a registered standing query, or nil.
func (m *Manager) Query(name string) *StandingQuery { return m.queries[name] }

// Queries returns the registered standing queries, sorted by name.
func (m *Manager) Queries() []*StandingQuery {
	names := make([]string, 0, len(m.queries))
	for n := range m.queries {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*StandingQuery, len(names))
	for i, n := range names {
		out[i] = m.queries[n]
	}
	return out
}

// Deregister stops and removes a standing query.
func (m *Manager) Deregister(name string) error {
	q, ok := m.queries[name]
	if !ok {
		return fmt.Errorf("live: unknown standing query %q", name)
	}
	q.stop()
	delete(m.queries, name)
	return nil
}

// Close stops every standing query (tables need no teardown).
func (m *Manager) Close() {
	for _, q := range m.Queries() {
		q.stop()
	}
	m.queries = map[string]*StandingQuery{}
}

// feedReleased distributes rows released by a table to every incremental
// query reading that relation (on whichever sides scan it). Queries are
// visited in name order so injected delivery faults land deterministically;
// a failing delivery does not starve the remaining queries, and the first
// error is returned (wrapped, so errors.Is sees the cause through the
// table boundary).
func (m *Manager) feedReleased(rel string, rows []relation.Row) error {
	var first error
	for _, q := range m.Queries() {
		if err := q.observeRelease(rel, rows); err != nil && first == nil {
			first = fmt.Errorf("live: deliver to %s: %w", q.name, err)
		}
	}
	return first
}

func (m *Manager) gauge(name, help string) *obs.Gauge {
	if m.reg == nil {
		return nil
	}
	return m.reg.Gauge(name, help)
}

func (m *Manager) counter(name, help string) *obs.Counter {
	if m.reg == nil {
		return nil
	}
	return m.reg.Counter(name, help)
}
