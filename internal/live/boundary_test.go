package live

import (
	"errors"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/engine"
	"tdb/internal/fault"
	"tdb/internal/obs"
)

// boundaryManager is a manager with one incremental standing query, the
// fixture the typed-error propagation tests drive faults through.
func boundaryManager(t *testing.T) *Manager {
	t.Helper()
	db := newXYDB(t)
	mgr := NewManager(db, obs.NewRegistry(), engine.Options{})
	t.Cleanup(mgr.Close)
	for _, n := range []string{"X", "Y"} {
		if _, err := mgr.Live(n, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mgr.Register("bq", xyTree(algebra.KindOverlap, false), RegisterOptions{}); err != nil {
		t.Fatal(err)
	}
	return mgr
}

// A late tuple is rejected with the typed ErrLateTuple through the manager
// boundary — the wrapping with table name and timestamps must keep the
// errors.Is chain intact.
func TestLateTupleTypedThroughManager(t *testing.T) {
	mgr := boundaryManager(t)
	if err := mgr.Append("X", xrow(1, 50, 60)); err != nil {
		t.Fatal(err)
	}
	err := mgr.Append("X", xrow(2, 10, 20))
	if !errors.Is(err, ErrLateTuple) {
		t.Fatalf("late append error %v, want ErrLateTuple", err)
	}
}

// An injected ingestion fault surfaces from Manager.Append as the typed
// fault.ErrInjected.
func TestAppendFaultTyped(t *testing.T) {
	defer fault.Reset()
	mgr := boundaryManager(t)
	if err := fault.Arm("live/append=error"); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Append("X", xrow(1, 0, 10)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append error %v, want fault.ErrInjected", err)
	}
}

// A delivery fault — the released row reaches the standing query but its
// delta push fails — crosses table release and manager fan-out as the
// typed injected error, and the remaining ingestion path stays usable.
func TestDeliverFaultTyped(t *testing.T) {
	defer fault.Reset()
	mgr := boundaryManager(t)
	if err := fault.Arm("live/deliver=error:n=1"); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Append("X", xrow(1, 0, 10)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("delivery error %v, want fault.ErrInjected through Append", err)
	}
	fault.Reset()
	if err := mgr.Append("X", xrow(2, 1, 10)); err != nil {
		t.Fatalf("ingestion after a delivery fault: %v", err)
	}
}
