package live

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/engine"
	"tdb/internal/fault"
	"tdb/internal/interval"
	"tdb/internal/obs"
	"tdb/internal/relation"
)

// chaosShapes are the six standing-query shapes of the Tables 1–3
// characterization — contain/contained/overlap, each as join and semijoin.
// Names are chosen so sorted (delivery) order matches slice order.
var chaosShapes = []struct {
	name string
	kind algebra.TemporalKind
	semi bool
}{
	{"q0-contain-join", algebra.KindContain, false},
	{"q1-contained-join", algebra.KindContained, false},
	{"q2-overlap-join", algebra.KindOverlap, false},
	{"q3-contain-semi", algebra.KindContain, true},
	{"q4-contained-semi", algebra.KindContained, true},
	{"q5-overlap-semi", algebra.KindOverlap, true},
}

// chaosSchedule is the failpoint arsenal a chaos run draws from: ingestion
// faults, delivery faults and mid-operator aborts, each firing once per
// arming so every step's blast radius is deterministic under the seed.
var chaosSchedule = []string{
	"live/append=error:n=1",
	"live/deliver=error:n=1",
	"engine/standing-run=error:n=1",
}

// chaosTyped is the error acceptance predicate: a chaos run may fail, but
// only with a *typed* error the caller can dispatch on — an injected fault
// or a watermark rejection. Anything else is a robustness bug.
func chaosTyped(t *testing.T, step int, op string, err error) {
	t.Helper()
	if errors.Is(err, fault.ErrInjected) || errors.Is(err, ErrLateTuple) {
		return
	}
	t.Fatalf("step %d: %s failed with an untyped error: %v", step, op, err)
}

// replayDeltas re-runs a query's operator over exactly the released rows
// it was fed — the byte-identity reference. Faults may have dropped whole
// deliveries (the typed error told the caller so), but whatever input a
// query did receive must have produced exactly the deltas it emitted:
// complete rows in the canonical order, never a partial or reordered one.
func replayDeltas(t *testing.T, q *StandingQuery) []relation.Row {
	t.Helper()
	run := q.plan.Start(nil, 0)
	run.FeedLeft(q.logL)
	run.FeedRight(q.logR)
	rows, err := run.Close()
	if err != nil {
		t.Fatalf("%s: fault-free replay of the delivered input failed: %v", q.name, err)
	}
	return rows
}

// TestChaosStandingShapes drives all six standing-query shapes through
// randomized (but seeded) fault schedules: every step may arm a failpoint,
// append in-order or deliberately late rows, and poll. The invariant is
// the issue's acceptance bar: every outcome is byte-identical output or a
// clean typed error — never a partial delta, and (via the fixture's leak
// check) never a leaked goroutine.
func TestChaosStandingShapes(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			defer fault.Reset()
			db := newXYDB(t)
			mgr := NewManager(db, obs.NewRegistry(), engine.Options{})
			t.Cleanup(mgr.Close)
			for _, n := range []string{"X", "Y"} {
				if _, err := mgr.Live(n, 0); err != nil {
					t.Fatal(err)
				}
			}
			qs := make([]*StandingQuery, len(chaosShapes))
			for i, s := range chaosShapes {
				q, err := mgr.Register(s.name, xyTree(s.kind, s.semi), RegisterOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if q.Mode() != ModeIncremental {
					t.Fatalf("%s admitted as %v, want incremental", s.name, q.Mode())
				}
				qs[i] = q
			}

			rng := rand.New(rand.NewSource(seed))
			lastTS := map[string]int{"X": -1, "Y": -1}
			ts, id := 0, 0
			for step := 0; step < 60; step++ {
				if rng.Intn(4) == 0 {
					fault.Reset()
					if err := fault.Arm(chaosSchedule[rng.Intn(len(chaosSchedule))]); err != nil {
						t.Fatal(err)
					}
				}
				rel := []string{"X", "Y"}[rng.Intn(2)]
				var row relation.Row
				if lastTS[rel] >= 1 && rng.Intn(8) == 0 {
					// Deliberately behind the table's watermark.
					row = xrow(id, interval.Time(lastTS[rel]-1), interval.Time(lastTS[rel]+10))
				} else {
					ts += rng.Intn(3)
					row = xrow(id, interval.Time(ts), interval.Time(ts+1+rng.Intn(25)))
				}
				id++
				if err := mgr.Append(rel, row); err != nil {
					chaosTyped(t, step, "append to "+rel, err)
				} else if int(row.Span(xySchema()).Start) > lastTS[rel] {
					lastTS[rel] = int(row.Span(xySchema()).Start)
				}
				if rng.Intn(5) == 0 {
					for _, q := range qs {
						if _, err := q.Poll(); err != nil {
							chaosTyped(t, step, "poll "+q.Name(), err)
						}
					}
				}
			}
			fault.Reset()

			// Settle every query and hold the delta contract: a run the
			// faults killed reports its typed error and keeps the deltas it
			// had completed; a surviving run finishes clean. Either way the
			// accumulated deltas are a byte-identical prefix of the
			// fault-free replay of the delivered input.
			for _, q := range qs {
				ref := replayDeltas(t, q)
				_, err := q.Finish()
				if err != nil {
					if !errors.Is(err, fault.ErrInjected) {
						t.Fatalf("%s: finish failed with an untyped error: %v", q.Name(), err)
					}
				}
				got := q.Deltas()
				if len(got) > len(ref) {
					t.Fatalf("%s: %d deltas exceed the %d the delivered input produces", q.Name(), len(got), len(ref))
				}
				for i := range got {
					if got[i].Key() != ref[i].Key() {
						t.Fatalf("%s: delta %d diverges from the replay:\n got %v\nwant %v",
							q.Name(), i, got[i], ref[i])
					}
				}
				if err == nil && len(got) != len(ref) {
					t.Fatalf("%s: clean finish but only %d of %d deltas", q.Name(), len(got), len(ref))
				}
			}
		})
	}
}
