package live

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/engine"
	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/obs"
	"tdb/internal/relation"
	"tdb/internal/testutil"
	"tdb/internal/value"
)

func xySchema() *relation.Schema {
	return relation.MustSchema([]relation.Column{
		{Name: "Id", Kind: value.KindInt},
		{Name: "ValidFrom", Kind: value.KindTime},
		{Name: "ValidTo", Kind: value.KindTime},
	}, 1, 2)
}

func newXYDB(t *testing.T) *engine.DB {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	db := engine.NewDB()
	db.MustRegister(relation.New("X", xySchema()))
	db.MustRegister(relation.New("Y", xySchema()))
	return db
}

func xrow(id int, from, to interval.Time) relation.Row {
	return relation.Row{value.Int(int64(id)), value.TimeVal(from), value.TimeVal(to)}
}

func spanOf(v string) algebra.SpanRef {
	return algebra.SpanRef{
		TS: algebra.ColRef{Var: v, Col: "ValidFrom"},
		TE: algebra.ColRef{Var: v, Col: "ValidTo"},
	}
}

func xyTree(kind algebra.TemporalKind, semijoin bool) algebra.Expr {
	l := &algebra.Scan{Relation: "X"}
	r := &algebra.Scan{Relation: "Y"}
	if semijoin {
		return &algebra.Semijoin{L: l, R: r, Kind: kind, LSpan: spanOf("X"), RSpan: spanOf("Y")}
	}
	return &algebra.Join{L: l, R: r, Kind: kind, LSpan: spanOf("X"), RSpan: spanOf("Y")}
}

// batchRows runs the SAME standing plan in one shot over the database's
// final contents — the reference for byte-identical delta sequences.
func batchRows(t *testing.T, db *engine.DB, tree algebra.Expr) []relation.Row {
	t.Helper()
	plan, err := engine.BuildStanding(db, tree)
	if err != nil {
		t.Fatalf("BuildStanding: %v", err)
	}
	run := plan.Start(&metrics.Probe{}, 0)
	feedAll := func(name string, feed func([]relation.Row)) []relation.Row {
		rel, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		rows := append([]relation.Row(nil), rel.Rows...)
		sort.SliceStable(rows, func(i, j int) bool {
			return rows[i].Span(rel.Schema).Start < rows[j].Span(rel.Schema).Start
		})
		feed(rows)
		return rows
	}
	left := feedAll(plan.LeftRel, run.FeedLeft)
	if plan.RightRel == plan.LeftRel {
		run.FeedRight(left)
	} else {
		feedAll(plan.RightRel, run.FeedRight)
	}
	rows, err := run.Close()
	if err != nil {
		t.Fatalf("batch close: %v", err)
	}
	return rows
}

func keysOf(rows []relation.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.Key()
	}
	return out
}

func sameSequence(t *testing.T, what string, got, want []relation.Row) {
	t.Helper()
	g, w := keysOf(got), keysOf(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d rows, want %d", what, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row %d = %s, want %s", what, i, g[i], w[i])
		}
	}
}

func sameMultiset(t *testing.T, what string, got, want []relation.Row) {
	t.Helper()
	g, w := keysOf(got), keysOf(want)
	sort.Strings(g)
	sort.Strings(w)
	if len(g) != len(w) {
		t.Fatalf("%s: %d rows, want %d", what, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: sorted row %d = %s, want %s", what, i, g[i], w[i])
		}
	}
}

// TestIncrementalSemijoinLifecycle drives a contained-semijoin through
// slack-disordered ingestion, polls at arbitrary watermarks, and checks the
// accumulated deltas are byte-identical to a one-shot batch execution of
// the same operator over the final contents — plus the measured workspace
// high-water mark staying within the analytic admission bound.
func TestIncrementalSemijoinLifecycle(t *testing.T) {
	db := newXYDB(t)
	reg := obs.NewRegistry()
	m := NewManager(db, reg, engine.Options{})
	defer m.Close()
	if _, err := m.Live("X", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Live("Y", 0); err != nil {
		t.Fatal(err)
	}

	tree := xyTree(algebra.KindContained, true)
	q, err := m.Register("contained", tree, RegisterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if q.Mode() != ModeIncremental {
		t.Fatalf("mode = %v, want incremental", q.Mode())
	}
	if got := q.Explain(); got == "" || q.Mode() != ModeIncremental {
		t.Fatalf("explain = %q", got)
	}

	rng := rand.New(rand.NewSource(11))
	var polls int
	for i := 0; i < 200; i++ {
		base := interval.Time(4 * i)
		jitter := interval.Time(rng.Intn(5)) - 2 // |disorder| ≤ slack
		from := base + jitter
		if from < 0 {
			from = 0
		}
		if err := m.Append("X", xrow(i, from, from+interval.Time(1+rng.Intn(10)))); err != nil {
			t.Fatalf("append X[%d]: %v", i, err)
		}
		if i%2 == 0 {
			yf := interval.Time(8 * (i / 2))
			if err := m.Append("Y", xrow(1000+i, yf, yf+interval.Time(2+rng.Intn(20)))); err != nil {
				t.Fatalf("append Y[%d]: %v", i, err)
			}
		}
		if rng.Intn(17) == 0 {
			if _, err := q.Poll(); err != nil {
				t.Fatal(err)
			}
			polls++
		}
	}
	if polls == 0 {
		if _, err := q.Poll(); err != nil {
			t.Fatal(err)
		}
	}

	// A tuple behind the watermark is rejected, not silently reordered.
	tab := m.Table("X")
	if tab.Watermark() <= 0 {
		t.Fatalf("watermark did not advance: %d", tab.Watermark())
	}
	if err := m.Append("X", xrow(9999, 0, 1)); err == nil || !errors.Is(err, ErrLateTuple) {
		t.Fatalf("late append err = %v, want ErrLateTuple", err)
	}
	if tab.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", tab.Rejected())
	}

	m.Flush()
	final, err := q.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(final) == 0 && len(q.Deltas()) == 0 {
		t.Fatal("no deltas at all; fixture too weak")
	}
	sameSequence(t, "deltas vs batch", q.Deltas(), batchRows(t, db, tree))

	if q.Workspace() <= 0 {
		t.Fatalf("workspace = %d, want > 0", q.Workspace())
	}
	if b := q.Bound(); float64(q.Workspace()) > b {
		t.Fatalf("workspace HWM %d exceeds analytic bound %.1f", q.Workspace(), b)
	}
	if q.Suspended() != "done" {
		t.Fatalf("suspended = %q after finish, want done", q.Suspended())
	}
}

// TestIncrementalKindsMatchBatch exercises every (kind, operator) pair the
// admission table accepts under (TS↑,TS↑) and checks delta sequences are
// byte-identical to the same-operator batch run — including the Contained
// join's operand swap keeping left columns first.
func TestIncrementalKindsMatchBatch(t *testing.T) {
	kinds := []algebra.TemporalKind{algebra.KindContain, algebra.KindContained, algebra.KindOverlap}
	for _, kind := range kinds {
		for _, semi := range []bool{false, true} {
			name := fmt.Sprintf("%v/semijoin=%v", kind, semi)
			t.Run(name, func(t *testing.T) {
				db := newXYDB(t)
				m := NewManager(db, nil, engine.Options{})
				defer m.Close()
				tree := xyTree(kind, semi)
				q, err := m.Register("q", tree, RegisterOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if q.Mode() != ModeIncremental {
					t.Fatalf("mode = %v", q.Mode())
				}
				rng := rand.New(rand.NewSource(7))
				for i := 0; i < 120; i++ {
					from := interval.Time(3 * i)
					if err := m.Append("X", xrow(i, from, from+interval.Time(1+rng.Intn(12)))); err != nil {
						t.Fatal(err)
					}
					if err := m.Append("Y", xrow(500+i, from+interval.Time(rng.Intn(3)), from+interval.Time(2+rng.Intn(9)))); err != nil {
						t.Fatal(err)
					}
					if i%31 == 0 {
						if _, err := q.Poll(); err != nil {
							t.Fatal(err)
						}
					}
				}
				m.Flush()
				if _, err := q.Finish(); err != nil {
					t.Fatal(err)
				}
				want := batchRows(t, db, tree)
				if len(want) == 0 {
					t.Fatal("empty batch result; fixture too weak")
				}
				sameSequence(t, name, q.Deltas(), want)
				if !semi {
					// Join deltas carry left columns then right columns.
					if arity := len(q.Deltas()[0]); arity != 6 {
						t.Fatalf("join delta arity = %d, want 6", arity)
					}
				}
			})
		}
	}
}

// TestAdmissionDegradeAndDecline: an unbounded characterization (before-join
// retains every left tuple forever) is declined outright, or degraded to
// batch re-execution whose accumulated deltas equal the engine's result.
func TestAdmissionDegradeAndDecline(t *testing.T) {
	db := newXYDB(t)
	m := NewManager(db, obs.NewRegistry(), engine.Options{})
	defer m.Close()
	tree := xyTree(algebra.KindBefore, false)

	if _, err := m.Register("strict", tree, RegisterOptions{AllowDegrade: false}); err == nil {
		t.Fatal("unbounded query admitted with AllowDegrade=false")
	} else {
		var de *DeclinedError
		if !errors.As(err, &de) {
			t.Fatalf("err = %T %v, want *DeclinedError", err, err)
		}
		if de.Reason == "" {
			t.Fatal("declined without a reason")
		}
	}

	q, err := m.Register("degraded", tree, RegisterOptions{AllowDegrade: true})
	if err != nil {
		t.Fatal(err)
	}
	if q.Mode() != ModeBatch {
		t.Fatalf("mode = %v, want batch", q.Mode())
	}
	if q.Suspended() != "batch" {
		t.Fatalf("suspended = %q, want batch", q.Suspended())
	}
	if _, err := q.Checkpoint(); err == nil {
		t.Fatal("batch query checkpointed")
	}

	for i := 0; i < 40; i++ {
		from := interval.Time(5 * i)
		if err := m.Append("X", xrow(i, from, from+3)); err != nil {
			t.Fatal(err)
		}
		if err := m.Append("Y", xrow(100+i, from+1, from+4)); err != nil {
			t.Fatal(err)
		}
		if i%13 == 0 {
			if _, err := q.Poll(); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.Flush()
	if _, err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	res, _, err := engine.Run(db, tree, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("empty engine result; fixture too weak")
	}
	sameMultiset(t, "batch deltas vs engine.Run", q.Deltas(), res.Rows)
}

// TestCheckpointRestore verifies the deterministic-replay checkpoint: the
// restored run reproduces the identical emission prefix (count and hash),
// continues with post-checkpoint input, and a tampered hash is refused.
func TestCheckpointRestore(t *testing.T) {
	db := newXYDB(t)
	m := NewManager(db, nil, engine.Options{})
	defer m.Close()
	tree := xyTree(algebra.KindOverlap, true)
	q, err := m.Register("q", tree, RegisterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ingest := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			from := interval.Time(2 * i)
			if err := m.Append("X", xrow(i, from, from+3)); err != nil {
				t.Fatal(err)
			}
			if err := m.Append("Y", xrow(700+i, from+1, from+4)); err != nil {
				t.Fatal(err)
			}
		}
	}
	ingest(0, 50)
	cp, err := q.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Emitted == 0 || cp.LeftRows == 0 {
		t.Fatalf("degenerate checkpoint %+v", cp)
	}
	ingest(50, 90)
	if _, err := q.Poll(); err != nil {
		t.Fatal(err)
	}
	before := append([]relation.Row(nil), q.Deltas()...)
	hashBefore := q.DeltaHash()

	if err := q.Restore(cp); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if _, err := q.Poll(); err != nil {
		t.Fatal(err)
	}
	sameSequence(t, "deltas after restore", q.Deltas(), before)
	if q.DeltaHash() != hashBefore {
		t.Fatalf("delta hash diverged after restore: %x != %x", q.DeltaHash(), hashBefore)
	}

	bad := *cp
	bad.DeltaHash ^= 1
	if err := q.Restore(&bad); err == nil {
		t.Fatal("restore accepted a tampered checkpoint hash")
	}
	wrong := *cp
	wrong.Query = "other"
	if err := q.Restore(&wrong); err == nil {
		t.Fatal("restore accepted a foreign checkpoint")
	}
}

// TestBackpressureSuspendsStandingQuery: with a tiny pending cap the
// operator suspends in "backpressure" until a subscriber polls, and no
// deltas are lost across the stall.
func TestBackpressureSuspendsStandingQuery(t *testing.T) {
	db := newXYDB(t)
	m := NewManager(db, nil, engine.Options{})
	defer m.Close()
	tree := xyTree(algebra.KindOverlap, false)
	q, err := m.Register("q", tree, RegisterOptions{MaxPending: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 4 X × 4 Y mutually overlapping spans ⇒ 16 deltas ≫ the cap of 2.
	for i := 0; i < 4; i++ {
		if err := m.Append("X", xrow(i, interval.Time(i), 100)); err != nil {
			t.Fatal(err)
		}
		if err := m.Append("Y", xrow(50+i, interval.Time(i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	q.Quiesce()
	if got := q.Suspended(); got != "backpressure" {
		t.Fatalf("suspended = %q, want backpressure", got)
	}
	rows, err := q.Poll()
	if err != nil {
		t.Fatal(err)
	}
	// The poll must keep drain-looping past the cap of 2; the operator may
	// hold back pairs it cannot decide before end-of-stream.
	if len(rows) <= 2 {
		t.Fatalf("polled %d deltas, want more than the pending cap", len(rows))
	}
	q.Quiesce()
	if got := q.Suspended(); got != "input" {
		t.Fatalf("suspended = %q after drain, want input", got)
	}
	m.Flush()
	if _, err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	sameSequence(t, "backpressured deltas", q.Deltas(), batchRows(t, db, tree))
}

// TestTableReorderAndFlush: the slack window reorders bounded disorder into
// released ValidFrom order; Flush drains the buffer and publishes stats.
func TestTableReorderAndFlush(t *testing.T) {
	db := newXYDB(t)
	m := NewManager(db, obs.NewRegistry(), engine.Options{})
	defer m.Close()
	tab, err := m.Live("X", 10)
	if err != nil {
		t.Fatal(err)
	}
	order := []interval.Time{5, 2, 9, 7, 14, 11, 20, 16}
	for i, from := range order {
		if err := tab.Append(xrow(i, from, from+4)); err != nil {
			t.Fatalf("append ts=%d: %v", from, err)
		}
	}
	if tab.Buffered() == 0 {
		t.Fatal("expected rows held in the reorder buffer")
	}
	tab.Flush()
	if tab.Buffered() != 0 {
		t.Fatalf("buffered = %d after flush", tab.Buffered())
	}
	if tab.Released() != int64(len(order)) {
		t.Fatalf("released = %d, want %d", tab.Released(), len(order))
	}
	rel, err := db.Relation("X")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rel.Rows); i++ {
		if rel.Span(i-1).Start > rel.Span(i).Start {
			t.Fatalf("released rows out of ValidFrom order at %d", i)
		}
	}
	if s := db.Stats("X"); s == nil || s.Cardinality != len(order) {
		t.Fatalf("stats after flush = %+v", s)
	}
	// Idempotent Live keeps the existing table.
	again, err := m.Live("X", 99)
	if err != nil || again != tab {
		t.Fatalf("Live not idempotent: %v %v", again, err)
	}
	// Non-temporal relations cannot go live.
	db.MustRegister(relation.New("Flat", relation.MustSchema(
		[]relation.Column{{Name: "A", Kind: value.KindInt}}, -1, -1)))
	if _, err := m.Live("Flat", 0); err == nil {
		t.Fatal("non-temporal relation went live")
	}
}

// TestRegisterBackfillAndDeregister: rows present before registration are
// backfilled so deltas still converge to the batch result; duplicate names
// are rejected; deregistered queries stop cleanly.
func TestRegisterBackfillAndDeregister(t *testing.T) {
	db := newXYDB(t)
	m := NewManager(db, nil, engine.Options{})
	defer m.Close()
	// Pre-registration contents, deliberately appended out of TS order
	// directly into the relation (backfill must sort them).
	relX, err := db.Relation("X")
	if err != nil {
		t.Fatal(err)
	}
	relX.Rows = append(relX.Rows, xrow(1, 10, 20), xrow(0, 0, 30))
	relY, err := db.Relation("Y")
	if err != nil {
		t.Fatal(err)
	}
	relY.Rows = append(relY.Rows, xrow(9, 5, 15))

	tree := xyTree(algebra.KindContain, true) // X contains Y spans
	q, err := m.Register("q", tree, RegisterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register("q", tree, RegisterOptions{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := m.Append("X", xrow(2, 12, 40)); err != nil {
		t.Fatal(err)
	}
	if err := m.Append("Y", xrow(10, 14, 25)); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	if _, err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	want := batchRows(t, db, tree)
	if len(want) == 0 {
		t.Fatal("empty batch result; fixture too weak")
	}
	sameSequence(t, "backfilled deltas", q.Deltas(), want)

	if err := m.Deregister("q"); err != nil {
		t.Fatal(err)
	}
	if m.Query("q") != nil {
		t.Fatal("query still registered after Deregister")
	}
	if err := m.Deregister("q"); err == nil {
		t.Fatal("double deregister accepted")
	}
}
