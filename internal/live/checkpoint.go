package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"

	"tdb/internal/fault"
)

// ErrCorruptCheckpoint is the typed rejection for a checkpoint that
// cannot be trusted: a truncated or torn image (bad magic, short buffer,
// trailer hash mismatch) or a replay that fails to reproduce the
// checkpointed emission sequence. Restore never replays a silent prefix
// of a damaged log — it refuses with this error.
var ErrCorruptCheckpoint = errors.New("live: corrupt checkpoint")

// ckptMagic heads every serialized checkpoint image.
const ckptMagic = "TDBCKPT1"

// Encode serializes the checkpoint: magic, length-prefixed query name,
// the four offset/hash fields, and an FNV-1a trailer over everything
// before it. The trailer is what turns a torn write into a detected
// ErrCorruptCheckpoint instead of a silently shorter replay.
func (cp *Checkpoint) Encode() []byte {
	name := []byte(cp.Query)
	out := make([]byte, 0, len(ckptMagic)+2+len(name)+4*8+8)
	out = append(out, ckptMagic...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(name)))
	out = append(out, name...)
	out = binary.LittleEndian.AppendUint64(out, uint64(cp.LeftRows))
	out = binary.LittleEndian.AppendUint64(out, uint64(cp.RightRows))
	out = binary.LittleEndian.AppendUint64(out, uint64(cp.Emitted))
	out = binary.LittleEndian.AppendUint64(out, cp.DeltaHash)
	f := fnv.New64a()
	_, _ = f.Write(out)
	return binary.LittleEndian.AppendUint64(out, f.Sum64())
}

// DecodeCheckpoint parses a serialized checkpoint image, rejecting any
// truncation or corruption with ErrCorruptCheckpoint.
func DecodeCheckpoint(buf []byte) (*Checkpoint, error) {
	if len(buf) < len(ckptMagic)+2 {
		return nil, fmt.Errorf("%w: image of %d bytes", ErrCorruptCheckpoint, len(buf))
	}
	if string(buf[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptCheckpoint)
	}
	n := int(binary.LittleEndian.Uint16(buf[len(ckptMagic):]))
	body := len(ckptMagic) + 2 + n + 4*8
	if len(buf) < body+8 {
		return nil, fmt.Errorf("%w: truncated image (%d of %d bytes)", ErrCorruptCheckpoint, len(buf), body+8)
	}
	f := fnv.New64a()
	_, _ = f.Write(buf[:body])
	if binary.LittleEndian.Uint64(buf[body:]) != f.Sum64() {
		return nil, fmt.Errorf("%w: trailer hash mismatch (torn write?)", ErrCorruptCheckpoint)
	}
	off := len(ckptMagic) + 2
	cp := &Checkpoint{Query: string(buf[off : off+n])}
	off += n
	cp.LeftRows = int64(binary.LittleEndian.Uint64(buf[off:]))
	cp.RightRows = int64(binary.LittleEndian.Uint64(buf[off+8:]))
	cp.Emitted = int64(binary.LittleEndian.Uint64(buf[off+16:]))
	cp.DeltaHash = binary.LittleEndian.Uint64(buf[off+24:])
	return cp, nil
}

// WriteTo serializes the checkpoint to w. The live/checkpoint-write
// failpoint can fail the write or tear it (persist only a prefix, as a
// crash mid-write would); a torn image is detected by DecodeCheckpoint.
func (cp *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	enc := cp.Encode()
	n, ferr := fault.Torn("live/checkpoint-write", len(enc))
	if ferr != nil {
		return 0, fmt.Errorf("live: write checkpoint %s: %w", cp.Query, ferr)
	}
	wn, err := w.Write(enc[:n])
	if err != nil {
		return int64(wn), fmt.Errorf("live: write checkpoint %s: %w", cp.Query, err)
	}
	return int64(wn), nil
}

// ReadCheckpoint deserializes a checkpoint from r, rejecting torn or
// truncated images with ErrCorruptCheckpoint.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	if err := fault.Check("live/checkpoint-read"); err != nil {
		return nil, fmt.Errorf("live: read checkpoint: %w", err)
	}
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("live: read checkpoint: %w", err)
	}
	return DecodeCheckpoint(buf)
}
