package live

import (
	"fmt"
	"math/rand"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/engine"
	"tdb/internal/interval"
)

// TestPropertyInterleavingsMatchBatch is the delta-equality property: for
// ANY interleaving of slack-bounded appends across the two inputs, any poll
// schedule, and a checkpoint/restore in the middle, the accumulated deltas
// of an accepted standing query equal the one-shot batch execution of the
// same operator over the final relation contents — byte-identical, in
// order.
func TestPropertyInterleavingsMatchBatch(t *testing.T) {
	kinds := []algebra.TemporalKind{algebra.KindContain, algebra.KindContained, algebra.KindOverlap}
	for trial := 0; trial < 24; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			kind := kinds[trial%len(kinds)]
			semi := trial%2 == 0
			slackX := interval.Time(rng.Intn(8))
			slackY := interval.Time(rng.Intn(8))

			db := newXYDB(t)
			m := NewManager(db, nil, engine.Options{})
			defer m.Close()
			if _, err := m.Live("X", slackX); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Live("Y", slackY); err != nil {
				t.Fatal(err)
			}
			tree := xyTree(kind, semi)
			q, err := m.Register("q", tree, RegisterOptions{})
			if err != nil {
				t.Fatal(err)
			}

			// Per-relation TS frontiers advance independently; jitter stays
			// within the slack so nothing is rejected.
			n := 60 + rng.Intn(120)
			var tsX, tsY interval.Time
			checkpointAt := rng.Intn(n)
			var cp *Checkpoint
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					tsX += interval.Time(rng.Intn(4))
					from := tsX
					if slackX > 0 {
						from += interval.Time(rng.Intn(int(slackX)))
					}
					if err := m.Append("X", xrow(i, from, from+interval.Time(1+rng.Intn(15)))); err != nil {
						t.Fatalf("append X: %v", err)
					}
				} else {
					tsY += interval.Time(rng.Intn(4))
					from := tsY
					if slackY > 0 {
						from += interval.Time(rng.Intn(int(slackY)))
					}
					if err := m.Append("Y", xrow(3000+i, from, from+interval.Time(1+rng.Intn(15)))); err != nil {
						t.Fatalf("append Y: %v", err)
					}
				}
				if rng.Intn(11) == 0 {
					if _, err := q.Poll(); err != nil {
						t.Fatal(err)
					}
				}
				if i == checkpointAt {
					if cp, err = q.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if cp != nil && rng.Intn(2) == 0 {
				if err := q.Restore(cp); err != nil {
					t.Fatalf("restore: %v", err)
				}
			}
			m.Flush()
			if _, err := q.Finish(); err != nil {
				t.Fatal(err)
			}
			sameSequence(t, fmt.Sprintf("%v semi=%v", kind, semi), q.Deltas(), batchRows(t, db, tree))
			if ws := q.Workspace(); ws > 0 {
				if b := q.Bound(); float64(ws) > b {
					t.Fatalf("workspace HWM %d exceeds bound %.1f", ws, b)
				}
			}
		})
	}
}
