package live

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"tdb/internal/algebra"
	"tdb/internal/engine"
	"tdb/internal/fault"
	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/obs"
	"tdb/internal/optimizer"
	"tdb/internal/relation"
)

// ErrBreakerOpen is returned by Poll once the workspace governor has
// declined a standing query: the measured workspace breached the
// predicted bound, re-estimation from refreshed catalog statistics could
// not re-admit it, and degradation was disallowed (or exhausted).
var ErrBreakerOpen = errors.New("live: standing query breaker open")

// breakerMaxTrips is how many governor trips a standing query survives
// as re-admissions before it is forced down the degradation ladder.
const breakerMaxTrips = 2

// Mode is how a standing query is evaluated.
type Mode int

const (
	// ModeIncremental feeds the unchanged core stream operator from live
	// input; the workspace is bounded by the Tables 1–3 characterization.
	ModeIncremental Mode = iota
	// ModeBatch re-executes the whole query per poll and emits the
	// multiset difference — the degraded path for unbounded
	// characterizations (correct because join/semijoin results are
	// monotone under append-only input).
	ModeBatch
)

func (m Mode) String() string {
	if m == ModeBatch {
		return "batch"
	}
	return "incremental"
}

// RegisterOptions configures admission of one standing query.
type RegisterOptions struct {
	// AllowDegrade permits falling back to periodic batch re-execution
	// when the workspace characterization is unbounded; otherwise such
	// queries are declined with a DeclinedError.
	AllowDegrade bool
	// MaxPending bounds the undrained delta backlog of an incremental
	// query before backpressure suspends its operator (0 = default).
	MaxPending int
	// Govern arms the workspace circuit breaker: at every poll the
	// measured operator workspace is compared against the Tables 1–3
	// bound under *current* catalog statistics, and a breach trips the
	// breaker (suspend → re-estimate → re-admit by replay, degrade to
	// batch, or decline with ErrBreakerOpen).
	Govern bool
}

// DeclinedError reports a registration refused by the admission policy.
type DeclinedError struct {
	Query  string
	Reason string
}

func (e *DeclinedError) Error() string {
	return fmt.Sprintf("live: standing query %q declined: %s", e.Query, e.Reason)
}

// StandingQuery is one registered query: either an incremental run of a
// core stream operator, or a periodically re-executed batch query.
type StandingQuery struct {
	name string
	mode Mode
	note string // admission explain note
	tree algebra.Expr
	m    *Manager

	// Incremental state.
	plan  *engine.StandingPlan
	run   *engine.StandingRun
	probe *metrics.Probe
	logL  []relation.Row // raw released rows fed per side, for replay
	logR  []relation.Row

	// Batch state: the multiset of the previous execution's result.
	prev map[string]int

	deltas    []relation.Row // every delta ever emitted, in emission order
	deltaHash uint64         // FNV-1a over the delta sequence
	batches   int            // non-empty delta batches emitted (the stream seq authority)

	// Workspace-governor state.
	govern       bool
	allowDegrade bool
	maxPending   int
	trips        int
	skip         int   // replayed emissions to drop (and verify) after a re-admission
	broken       error // non-nil once the breaker declined the query

	gBacklog   *obs.Gauge
	gWorkspace *obs.Gauge
	cDeltas    *obs.Counter
	cTrips     *obs.Counter

	// bpActive marks an in-progress backpressure suspension so the event
	// journal records each episode once, not every feed while stalled.
	bpActive bool
}

// event emits to the manager's journal (a nil journal is a no-op).
func (q *StandingQuery) event(kind string, detail map[string]string) {
	q.m.opt.Events.Emit(kind, q.name, detail)
}

func newIncremental(m *Manager, name string, tree algebra.Expr, plan *engine.StandingPlan,
	est optimizer.StandingEstimate, opts RegisterOptions) *StandingQuery {
	q := &StandingQuery{
		name: name, mode: ModeIncremental, note: est.String(),
		tree: tree, m: m, plan: plan, probe: &metrics.Probe{},
		deltaHash: fnv1aInit,
		govern:    opts.Govern, allowDegrade: opts.AllowDegrade, maxPending: opts.MaxPending,
	}
	q.metrics()
	q.run = plan.Start(q.probe, opts.MaxPending)
	// Rows released (or loaded) before registration are part of the final
	// relation: feed them first, ValidFrom-sorted, so accumulated deltas
	// converge to the batch result over the full contents.
	q.backfill(plan.LeftRel, q.run.FeedLeft, &q.logL)
	if plan.RightRel == plan.LeftRel {
		q.run.FeedRight(q.logL)
		q.logR = append(q.logR, q.logL...)
	} else {
		q.backfill(plan.RightRel, q.run.FeedRight, &q.logR)
	}
	return q
}

func (q *StandingQuery) backfill(rel string, feed func([]relation.Row), log *[]relation.Row) {
	r, err := q.m.db.Relation(rel)
	if err != nil || len(r.Rows) == 0 {
		return
	}
	rows := append([]relation.Row(nil), r.Rows...)
	schema := r.Schema
	sort.SliceStable(rows, func(i, j int) bool {
		return interval.CmpStart(rows[i].Span(schema), rows[j].Span(schema)) < 0
	})
	*log = append(*log, rows...)
	feed(rows)
}

func newBatch(m *Manager, name string, tree algebra.Expr, reason string) *StandingQuery {
	q := &StandingQuery{
		name: name, mode: ModeBatch,
		note: "degraded to periodic batch re-execution: " + reason,
		tree: tree, m: m, prev: map[string]int{},
		deltaHash: fnv1aInit,
	}
	q.metrics()
	return q
}

func (q *StandingQuery) metrics() {
	q.gBacklog = q.m.gauge("tdb_live_backlog_"+q.name, "unconsumed input + undrained deltas of "+q.name)
	q.gWorkspace = q.m.gauge("tdb_live_workspace_hwm_"+q.name, "operator workspace high-water mark of "+q.name)
	q.cDeltas = q.m.counter("tdb_live_deltas_total_"+q.name, "delta rows emitted by "+q.name)
	q.cTrips = q.m.counter("tdb_governor_fallbacks_total", "workspace-governor breaches that degraded a query")
}

// Name returns the query name.
func (q *StandingQuery) Name() string { return q.name }

// Mode returns the evaluation mode.
func (q *StandingQuery) Mode() Mode { return q.mode }

// Explain returns the admission note — the Tables 1–3 characterization
// behind the accept/degrade decision.
func (q *StandingQuery) Explain() string {
	if q.mode == ModeIncremental {
		return fmt.Sprintf("%s · %s · %s", q.mode, q.plan.Algorithm(), q.note)
	}
	return fmt.Sprintf("%s · %s", q.mode, q.note)
}

// observeRelease feeds newly released rows of rel into whichever operator
// sides scan it (batch queries re-read storage at poll time instead). A
// declined query accepts no further input but does not fail ingestion.
func (q *StandingQuery) observeRelease(rel string, rows []relation.Row) error {
	if q.mode != ModeIncremental || q.broken != nil {
		return nil
	}
	if q.plan.LeftRel != rel && q.plan.RightRel != rel {
		return nil
	}
	if err := fault.Check("live/deliver"); err != nil {
		return err
	}
	if q.plan.LeftRel == rel {
		q.logL = append(q.logL, rows...)
		q.run.FeedLeft(rows)
	}
	if q.plan.RightRel == rel {
		q.logR = append(q.logR, rows...)
		q.run.FeedRight(rows)
	}
	q.gBacklog.Set(int64(q.run.Backlog()))
	q.noteSuspension()
	return nil
}

// noteSuspension journals the start of a backpressure stall (undrained
// deltas hit MaxPending and the operator parked) and arms the next one
// once the stall clears.
func (q *StandingQuery) noteSuspension() {
	switch q.run.Suspended() {
	case "backpressure":
		if !q.bpActive {
			q.bpActive = true
			q.event(obs.EventBackpressure, map[string]string{
				"backlog":     fmt.Sprintf("%d", q.run.Backlog()),
				"max_pending": fmt.Sprintf("%d", q.maxPending),
			})
		}
	default:
		q.bpActive = false
	}
}

// Poll returns the delta rows produced since the previous poll. For an
// incremental query it quiesces the operator and drains its emissions; for
// a batch query it re-executes the tree and returns the multiset
// difference against the previous execution.
//
// When the query is governed, every incremental poll also compares the
// operator's measured workspace against the Tables 1–3 bound under the
// *current* catalog statistics; a breach trips the circuit breaker (see
// trip). A query whose breaker has opened returns ErrBreakerOpen.
func (q *StandingQuery) Poll() ([]relation.Row, error) {
	if q.broken != nil {
		return nil, q.broken
	}
	var fresh []relation.Row
	if q.mode == ModeIncremental {
		rows, err := q.run.Poll()
		if err != nil {
			return nil, fmt.Errorf("live: standing query %s: %w", q.name, err)
		}
		if fresh, err = q.consumeReplay(rows); err != nil {
			return nil, err
		}
		q.record(fresh)
		q.gWorkspace.Set(q.run.Workspace())
		q.gBacklog.Set(int64(q.run.Backlog()))
		q.noteSuspension()
		if q.govern {
			if bound := q.Bound(); bound > 0 && float64(q.run.Workspace()) > bound {
				if err := q.trip(bound); err != nil {
					return fresh, err
				}
			}
		}
		return fresh, nil
	}
	res, _, err := engine.Run(q.m.db, q.tree, q.m.opt)
	if err != nil {
		return nil, err
	}
	next := map[string]int{}
	for _, row := range res.Rows {
		k := row.Key()
		next[k]++
		if next[k] > q.prev[k] {
			fresh = append(fresh, row)
		}
	}
	q.prev = next
	q.record(fresh)
	return fresh, nil
}

// consumeReplay drops (and byte-verifies) the prefix of a drained batch
// that re-produces deltas already recorded before a governor re-admission
// replayed the input logs. Divergence means the replay is not the
// deterministic re-run the delta contract promises — a hard error, never
// a silently different delta sequence.
func (q *StandingQuery) consumeReplay(rows []relation.Row) ([]relation.Row, error) {
	for q.skip > 0 && len(rows) > 0 {
		expect := q.deltas[len(q.deltas)-q.skip]
		if rows[0].Key() != expect.Key() {
			return nil, fmt.Errorf("live: %s: re-admission replay diverged at delta %d: %s != %s",
				q.name, len(q.deltas)-q.skip, rows[0].Key(), expect.Key())
		}
		rows = rows[1:]
		q.skip--
	}
	return rows, nil
}

// trip is the circuit breaker: the measured workspace breached the
// predicted bound, so the catalog statistics behind the admission are
// stale. The run is suspended (stopped), statistics are re-published
// from the incremental accumulators, and the query is re-estimated:
//
//  1. re-admit — still bounded and trips remain: restart the operator
//     and replay the released-row logs (the delta contract makes the
//     replayed prefix byte-identical, which consumeReplay verifies);
//  2. degrade — trips exhausted and degradation allowed: switch to
//     periodic batch re-execution seeded with the emitted multiset;
//  3. decline — otherwise ErrBreakerOpen on this and every later poll.
func (q *StandingQuery) trip(bound float64) error {
	q.trips++
	q.cTrips.Inc()
	breach := fmt.Sprintf("workspace %d breached bound %.1f", q.run.Workspace(), bound)
	q.run.Stop()
	q.m.db.RefreshStats(q.plan.LeftRel)
	q.m.db.RefreshStats(q.plan.RightRel)
	est := optimizer.EstimateStanding(q.plan.Kind, q.plan.Semijoin,
		q.m.statsOf(q.plan.LeftRel), q.m.statsOf(q.plan.RightRel))
	tripDetail := func(outcome string) map[string]string {
		return map[string]string{
			"trip":    fmt.Sprintf("%d", q.trips),
			"breach":  breach,
			"outcome": outcome,
		}
	}
	switch {
	case est.Bounded && q.trips <= breakerMaxTrips:
		q.note = fmt.Sprintf("governor: trip %d (%s); re-admitted under refreshed stats: %s",
			q.trips, breach, est)
		q.probe = &metrics.Probe{}
		q.run = q.plan.Start(q.probe, q.maxPending)
		q.skip = len(q.deltas)
		q.run.FeedLeft(q.logL)
		q.run.FeedRight(q.logR)
		q.event(obs.EventBreakerTrip, tripDetail("re-admit"))
		return nil
	case q.allowDegrade:
		q.mode = ModeBatch
		q.note = fmt.Sprintf("governor: trip %d (%s); degraded to periodic batch re-execution", q.trips, breach)
		q.run = nil
		q.prev = map[string]int{}
		for _, row := range q.deltas {
			q.prev[row.Key()]++
		}
		q.event(obs.EventBreakerTrip, tripDetail("degrade"))
		return nil
	default:
		q.broken = fmt.Errorf("%w: %s declined after trip %d (%s): %s",
			ErrBreakerOpen, q.name, q.trips, breach, est)
		q.run = nil
		q.note = "governor: " + q.broken.Error()
		q.event(obs.EventBreakerTrip, tripDetail("decline"))
		return q.broken
	}
}

func (q *StandingQuery) record(rows []relation.Row) {
	for _, row := range rows {
		q.deltaHash = fnv1aRow(q.deltaHash, row)
	}
	if len(rows) > 0 {
		q.batches++
	}
	q.deltas = append(q.deltas, rows...)
	q.cDeltas.Add(int64(len(rows)))
}

// Deltas returns every delta row ever emitted, in emission order.
func (q *StandingQuery) Deltas() []relation.Row { return q.deltas }

// Batches counts the non-empty delta batches ever emitted — the
// sequence authority a wire subscription's replay ring aligns with: the
// ring's newest seq must equal this count, severed or not.
func (q *StandingQuery) Batches() int { return q.batches }

// DeltaHash returns the FNV-1a hash of the emission sequence — the figure
// checkpoints record and restores verify.
func (q *StandingQuery) DeltaHash() uint64 { return q.deltaHash }

// Schema returns the delta row schema (nil for batch queries before their
// first poll; use the engine result schema instead).
func (q *StandingQuery) Schema() *relation.Schema {
	if q.plan != nil {
		return q.plan.Schema()
	}
	return nil
}

// Workspace returns the live operator workspace (state high-water mark
// plus buffers); 0 for batch and breaker-declined queries.
func (q *StandingQuery) Workspace() int64 {
	if q.mode != ModeIncremental || q.run == nil {
		return 0
	}
	return q.run.Workspace()
}

// Trips returns how many times the workspace governor has tripped.
func (q *StandingQuery) Trips() int { return q.trips }

// Broken returns the breaker-open error, or nil while the query runs.
func (q *StandingQuery) Broken() error { return q.broken }

// Bound recomputes the analytic workspace ceiling under the *current*
// catalog statistics — the figure the acceptance check compares the
// measured high-water mark against. Returns 0 for batch queries.
func (q *StandingQuery) Bound() float64 {
	if q.mode != ModeIncremental {
		return 0
	}
	est := optimizer.EstimateStanding(q.plan.Kind, q.plan.Semijoin,
		q.m.statsOf(q.plan.LeftRel), q.m.statsOf(q.plan.RightRel))
	return est.Bound
}

// Suspended reports the incremental runner's wait state ("input",
// "backpressure", "done", "running"); batch queries report "batch" and a
// breaker-declined query "broken".
func (q *StandingQuery) Suspended() string {
	if q.mode != ModeIncremental {
		return "batch"
	}
	if q.run == nil {
		return "broken"
	}
	return q.run.Suspended()
}

// Quiesce blocks until an incremental query's operator has consumed
// everything it can of the input fed so far (no-op for batch queries).
// A stall it settles into is journaled here: ingestion-time checks run
// before the operator parks, so quiescence is where backpressure first
// becomes observable.
func (q *StandingQuery) Quiesce() {
	if q.mode == ModeIncremental && q.run != nil {
		q.run.Quiesce()
		q.noteSuspension()
	}
}

// Finish gracefully ends the query: an incremental operator sees
// end-of-stream on every input and runs its termination logic; the final
// delta rows are recorded and returned. A batch query performs one last
// re-execution. The query accepts no further input afterwards.
func (q *StandingQuery) Finish() ([]relation.Row, error) {
	if q.broken != nil {
		return nil, q.broken
	}
	if q.mode != ModeIncremental {
		return q.Poll()
	}
	rows, err := q.run.Close()
	rows, cerr := q.consumeReplay(rows)
	if cerr != nil {
		return nil, cerr
	}
	q.record(rows)
	q.gWorkspace.Set(q.run.Workspace())
	q.gBacklog.Set(0)
	return rows, err
}

func (q *StandingQuery) stop() {
	if q.run != nil {
		q.run.Stop()
	}
}

// Verify checks the delta contract against the current relation contents
// after a fresh poll: an incremental query's accumulated deltas must be a
// byte-identical prefix of the one-shot batch run of the same operator; a
// degraded batch query's accumulated deltas must be multiset-equal to the
// engine's re-execution. Returns (accumulated deltas, reference rows).
func (q *StandingQuery) Verify() (deltas, reference int, err error) {
	if _, err := q.Poll(); err != nil {
		return 0, 0, err
	}
	if q.mode == ModeIncremental {
		batch, err := q.m.batchReference(q.plan)
		if err != nil {
			return 0, 0, err
		}
		if len(q.deltas) > len(batch) {
			return len(q.deltas), len(batch), fmt.Errorf(
				"live: %s emitted %d deltas, batch produces only %d", q.name, len(q.deltas), len(batch))
		}
		for i, row := range q.deltas {
			if row.Key() != batch[i].Key() {
				return len(q.deltas), len(batch), fmt.Errorf(
					"live: %s delta %d diverges from batch: %s != %s", q.name, i, row.Key(), batch[i].Key())
			}
		}
		return len(q.deltas), len(batch), nil
	}
	res, _, err := engine.Run(q.m.db, q.tree, q.m.opt)
	if err != nil {
		return 0, 0, err
	}
	counts := map[string]int{}
	for _, row := range res.Rows {
		counts[row.Key()]++
	}
	for _, row := range q.deltas {
		k := row.Key()
		counts[k]--
		if counts[k] < 0 {
			return len(q.deltas), len(res.Rows), fmt.Errorf(
				"live: %s delta %s not in the batch result", q.name, k)
		}
	}
	for k, n := range counts {
		if n != 0 {
			return len(q.deltas), len(res.Rows), fmt.Errorf(
				"live: %s missing %d deltas for %s", q.name, n, k)
		}
	}
	return len(q.deltas), len(res.Rows), nil
}

// Checkpoint is a consistent cut of an incremental standing query: the
// per-side replay offsets into the released-row logs, the emission count
// and the delta-sequence hash. Restoring re-feeds the logs and verifies
// the replayed prefix reproduces the identical emission sequence.
type Checkpoint struct {
	Query     string
	LeftRows  int64
	RightRows int64
	Emitted   int64
	DeltaHash uint64
}

// Checkpoint quiesces the query and records a consistent cut. Batch
// queries have no operator state and are not checkpointable.
func (q *StandingQuery) Checkpoint() (*Checkpoint, error) {
	if q.mode != ModeIncremental {
		return nil, fmt.Errorf("live: %s runs in batch mode; nothing to checkpoint", q.name)
	}
	if _, err := q.Poll(); err != nil {
		return nil, err
	}
	return &Checkpoint{
		Query:     q.name,
		LeftRows:  int64(len(q.logL)),
		RightRows: int64(len(q.logR)),
		Emitted:   int64(len(q.deltas)),
		DeltaHash: q.deltaHash,
	}, nil
}

// Restore rebuilds the operator workspace by deterministic replay: a fresh
// run of the same plan is fed the logged released rows up to the
// checkpoint offsets, and the replayed emissions must reproduce the
// checkpointed count and hash — verifying the restored workspace is the
// one the checkpoint cut. Rows logged after the checkpoint are re-fed so
// the query continues from the cut.
func (q *StandingQuery) Restore(cp *Checkpoint) error {
	if q.mode != ModeIncremental {
		return fmt.Errorf("live: %s runs in batch mode; nothing to restore", q.name)
	}
	if cp.Query != q.name {
		return fmt.Errorf("live: checkpoint of %q cannot restore %q", cp.Query, q.name)
	}
	if int64(len(q.logL)) < cp.LeftRows || int64(len(q.logR)) < cp.RightRows {
		return fmt.Errorf("live: released-row log shorter than checkpoint (%d/%d < %d/%d)",
			len(q.logL), len(q.logR), cp.LeftRows, cp.RightRows)
	}
	if q.run != nil {
		q.run.Stop()
	}
	q.skip = 0
	q.probe = &metrics.Probe{}
	q.run = q.plan.Start(q.probe, 0)
	q.run.FeedLeft(q.logL[:cp.LeftRows])
	q.run.FeedRight(q.logR[:cp.RightRows])
	replayed, err := q.run.Poll()
	if err != nil {
		return fmt.Errorf("live: replay of %s: %w", q.name, err)
	}
	if int64(len(replayed)) != cp.Emitted {
		return fmt.Errorf("%w: replay of %s produced %d deltas, checkpoint has %d",
			ErrCorruptCheckpoint, q.name, len(replayed), cp.Emitted)
	}
	h := uint64(fnv1aInit)
	for _, row := range replayed {
		h = fnv1aRow(h, row)
	}
	if h != cp.DeltaHash {
		return fmt.Errorf("%w: replay of %s diverged (hash %x != %x)",
			ErrCorruptCheckpoint, q.name, h, cp.DeltaHash)
	}
	// Reset the delta log to the verified replayed prefix and continue
	// with the post-checkpoint rows.
	q.deltas = replayed
	q.deltaHash = h
	q.run.FeedLeft(q.logL[cp.LeftRows:])
	q.run.FeedRight(q.logR[cp.RightRows:])
	return nil
}

const fnv1aInit = 14695981039346656037

func fnv1aRow(h uint64, row relation.Row) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(row.Key()))
	_, _ = f.Write([]byte{0x1e})
	// Fold the running hash with the row hash order-sensitively.
	return h*1099511628211 ^ f.Sum64()
}
