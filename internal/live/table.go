package live

import (
	"errors"
	"fmt"
	"sort"

	"tdb/internal/fault"
	"tdb/internal/interval"
	"tdb/internal/obs"
	"tdb/internal/relation"
)

// ErrLateTuple is the rejection for a tuple arriving behind the watermark:
// accepting it would violate the TS-ordered arrival the stream operators'
// state characterizations assume.
var ErrLateTuple = errors.New("live: tuple behind watermark")

// Table is the append-only ingestion front of one relation. Tuples arrive
// in (approximately) ValidFrom order; a reorder buffer of `slack` chronons
// absorbs bounded disorder, and the watermark — the highest released
// ValidFrom frontier — advances as maxTS−slack. Rows at or above the
// watermark are buffered; rows strictly behind it are rejected. Released
// rows are appended to storage (with incremental catalog statistics) and
// fed to every standing query scanning the relation.
type Table struct {
	m      *Manager
	name   string
	schema *relation.Schema
	slack  interval.Time

	watermark interval.Time  // release frontier: all released rows have TS ≤ watermark
	maxTS     interval.Time  // highest ValidFrom ever accepted
	buf       []relation.Row // reorder buffer, ValidFrom-sorted, arrival-stable on ties
	released  int64
	rejected  int64

	gWatermark *obs.Gauge
	gBuffered  *obs.Gauge
	gActive    *obs.Gauge
	cIngested  *obs.Counter
	cRejected  *obs.Counter
}

func (t *Table) metrics() {
	if t.gWatermark != nil || t.m.reg == nil {
		return
	}
	t.gWatermark = t.m.gauge("tdb_live_watermark_"+t.name, "release frontier (ValidFrom) of "+t.name)
	t.gBuffered = t.m.gauge("tdb_live_buffered_"+t.name, "rows in the reorder buffer of "+t.name)
	t.gActive = t.m.gauge("tdb_live_active_spans_"+t.name, "lifespans open at the append frontier of "+t.name)
	t.cIngested = t.m.counter("tdb_live_ingested_total_"+t.name, "rows accepted into "+t.name)
	t.cRejected = t.m.counter("tdb_live_rejected_total_"+t.name, "late tuples rejected by "+t.name)
}

// Name returns the relation name.
func (t *Table) Name() string { return t.name }

// Watermark returns the release frontier.
func (t *Table) Watermark() interval.Time { return t.watermark }

// Released returns the number of rows released into storage.
func (t *Table) Released() int64 { return t.released }

// Rejected returns the number of late tuples rejected.
func (t *Table) Rejected() int64 { return t.rejected }

// Buffered returns the reorder-buffer occupancy.
func (t *Table) Buffered() int { return len(t.buf) }

// Append ingests one row. Rows with ValidFrom below the watermark are
// rejected with ErrLateTuple; rows within the slack window are buffered
// and released in ValidFrom order once the watermark passes them.
func (t *Table) Append(row relation.Row) error {
	t.metrics()
	if err := fault.Check("live/append"); err != nil {
		return fmt.Errorf("live: append to %s: %w", t.name, err)
	}
	if len(row) != t.schema.Arity() {
		return fmt.Errorf("live: append to %s: row arity %d, schema %s", t.name, len(row), t.schema)
	}
	ts := row.Span(t.schema).Start
	if ts < t.watermark {
		t.rejected++
		t.cRejected.Inc()
		return fmt.Errorf("%w: %s ts=%d < watermark %d", ErrLateTuple, t.name, ts, t.watermark)
	}
	// Insert after any buffered row with the same ValidFrom, keeping the
	// buffer ValidFrom-sorted and arrival-stable on ties.
	i := sort.Search(len(t.buf), func(i int) bool {
		return t.buf[i].Span(t.schema).Start > ts
	})
	t.buf = append(t.buf, nil)
	copy(t.buf[i+1:], t.buf[i:])
	t.buf[i] = row
	t.cIngested.Inc()
	if ts > t.maxTS {
		t.maxTS = ts
	}
	if wm := t.maxTS - t.slack; wm > t.watermark {
		t.watermark = wm
	}
	return t.release(t.watermark)
}

// release appends every buffered row with ValidFrom ≤ frontier to storage
// and feeds it to the standing queries, in ValidFrom order.
func (t *Table) release(frontier interval.Time) error {
	n := sort.Search(len(t.buf), func(i int) bool {
		return t.buf[i].Span(t.schema).Start > frontier
	})
	if n == 0 {
		t.observe()
		return nil
	}
	out := t.buf[:n]
	for i, row := range out {
		if err := t.m.db.Append(t.name, row); err != nil {
			// Rows [0,i) are durably appended: trim them from the buffer
			// so a retry cannot double-append, and wrap the cause so
			// errors.Is works through the ingestion boundary.
			t.released += int64(i)
			t.buf = append([]relation.Row(nil), t.buf[i:]...)
			t.observe()
			return fmt.Errorf("live: release %s: %w", t.name, err)
		}
	}
	t.released += int64(n)
	t.buf = append([]relation.Row(nil), t.buf[n:]...)
	// Delivery runs after the buffer trim: the released rows are durable
	// regardless of a standing query's delivery failing.
	ferr := t.m.feedReleased(t.name, out)
	t.observe()
	return ferr
}

// Flush force-releases the reorder buffer (advancing the watermark to the
// highest buffered ValidFrom) and republishes the catalog statistics —
// used at batch boundaries and before draining standing queries. The
// buffered rows were already arity-checked, but storage writes and
// standing-query delivery can still fail; the error is propagated.
func (t *Table) Flush() error {
	t.metrics()
	if t.maxTS > t.watermark {
		t.watermark = t.maxTS
	}
	err := t.release(t.maxTS)
	t.m.db.RefreshStats(t.name)
	t.observe()
	return err
}

func (t *Table) observe() {
	t.gWatermark.Set(int64(t.watermark))
	t.gBuffered.Set(int64(len(t.buf)))
	t.gActive.Set(int64(t.m.db.ActiveSpans(t.name)))
}
