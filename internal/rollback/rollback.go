// Package rollback implements the transaction-time dimension the paper's
// Section 6 leaves as future work: "in the TQuel data model, two other
// temporal attributes (TransactionStart and TransactionStop) can be
// augmented to relational tables to capture the 'rollback' capability."
//
// A Store wraps a valid-time relation with version management: every
// mutation is stamped with a monotonically increasing transaction time,
// logical deletion closes a version's transaction lifespan instead of
// removing it, and AsOf reconstructs the relation exactly as a past
// transaction saw it — so the stream algorithms can run over any
// historical database state.
package rollback

import (
	"fmt"

	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/value"
)

// version is one stored row with its transaction-time lifespan.
type version struct {
	row relation.Row
	tx  interval.Interval // [TxStart, TxStop); TxStop=Forever while current
}

// Store is an append-only bitemporal store over one valid-time schema.
type Store struct {
	name     string
	schema   *relation.Schema
	versions []version
	clock    interval.Time // latest transaction time seen
}

// NewStore returns an empty store for the given valid-time schema.
func NewStore(name string, schema *relation.Schema) *Store {
	return &Store{name: name, schema: schema, clock: interval.MinTime}
}

// Schema returns the valid-time schema of the stored rows.
func (s *Store) Schema() *relation.Schema { return s.schema }

// Clock returns the latest transaction time applied.
func (s *Store) Clock() interval.Time { return s.clock }

func (s *Store) advance(tx interval.Time) error {
	if tx <= interval.MinTime || tx >= interval.Forever {
		return fmt.Errorf("rollback: transaction time %d out of range", tx)
	}
	if tx < s.clock {
		return fmt.Errorf("rollback: transaction time %d precedes clock %d", tx, s.clock)
	}
	s.clock = tx
	return nil
}

// Insert stores a new current version at transaction time tx. The row is
// validated against the schema (arity, kinds, intra-tuple constraint).
func (s *Store) Insert(tx interval.Time, row relation.Row) error {
	if err := s.advance(tx); err != nil {
		return err
	}
	probe := relation.New(s.name, s.schema)
	if err := probe.Insert(row); err != nil {
		return err
	}
	s.versions = append(s.versions, version{
		row: row.Clone(),
		tx:  interval.Interval{Start: tx, End: interval.Forever},
	})
	return nil
}

// Delete logically deletes every current version matching the predicate at
// transaction time tx, returning the number of versions closed. The
// versions remain reconstructible by AsOf for earlier transaction times.
func (s *Store) Delete(tx interval.Time, pred func(relation.Row) bool) (int, error) {
	if err := s.advance(tx); err != nil {
		return 0, err
	}
	n := 0
	for i := range s.versions {
		v := &s.versions[i]
		if v.tx.End == interval.Forever && v.tx.Start <= tx && pred(v.row) {
			if v.tx.Start == tx {
				// Inserted and deleted in the same transaction instant:
				// the version was never visible; drop its lifespan to
				// the empty convention [tx, tx) handled below.
				v.tx.End = tx
				n++
				continue
			}
			v.tx.End = tx
			n++
		}
	}
	return n, nil
}

// Update is delete-then-insert in one transaction: versions matching pred
// are closed and the replacement rows inserted, all stamped tx.
func (s *Store) Update(tx interval.Time, pred func(relation.Row) bool, replacements []relation.Row) (int, error) {
	n, err := s.Delete(tx, pred)
	if err != nil {
		return 0, err
	}
	for _, r := range replacements {
		if err := s.Insert(tx, r); err != nil {
			return n, err
		}
	}
	return n, nil
}

// AsOf reconstructs the valid-time relation as it stood for a transaction
// at time tx: every version whose transaction lifespan covers tx.
func (s *Store) AsOf(tx interval.Time) *relation.Relation {
	rel := relation.New(fmt.Sprintf("%s@%d", s.name, tx), s.schema)
	for _, v := range s.versions {
		if v.tx.Start <= tx && tx < v.tx.End {
			rel.Rows = append(rel.Rows, v.row)
		}
	}
	return rel
}

// Current returns the present state (versions not logically deleted).
func (s *Store) Current() *relation.Relation {
	rel := relation.New(s.name, s.schema)
	for _, v := range s.versions {
		if v.tx.End == interval.Forever {
			rel.Rows = append(rel.Rows, v.row)
		}
	}
	return rel
}

// historySchema appends the transaction-time columns to the valid-time
// schema; the result is a snapshot relation (its designated lifespan stays
// the valid-time one only in the source; history rows carry both).
func (s *Store) historySchema() *relation.Schema {
	cols := append(append([]relation.Column{}, s.schema.Cols...),
		relation.Column{Name: "TxStart", Kind: value.KindTime},
		relation.Column{Name: "TxStop", Kind: value.KindTime},
	)
	sch, err := relation.NewSchema(cols, s.schema.TS, s.schema.TE)
	if err != nil {
		// lint:allow panic — unreachable: the base schema was validated; appending cannot clash
		panic(err)
	}
	return sch
}

// History returns every version ever stored, with TxStart/TxStop columns
// appended — the full bitemporal relation of the TQuel taxonomy.
func (s *Store) History() *relation.Relation {
	sch := s.historySchema()
	rel := relation.New(s.name+"_history", sch)
	for _, v := range s.versions {
		if v.tx.Start >= v.tx.End {
			continue // never-visible version
		}
		row := append(v.row.Clone(),
			value.TimeVal(v.tx.Start), value.TimeVal(v.tx.End))
		rel.Rows = append(rel.Rows, row)
	}
	return rel
}

// Versions returns the number of stored versions (including closed ones).
func (s *Store) Versions() int { return len(s.versions) }
