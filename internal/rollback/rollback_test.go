package rollback

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/value"
)

func facRow(name, rank string, from, to interval.Time) relation.Row {
	return relation.Row{value.String_(name), value.String_(rank), value.TimeVal(from), value.TimeVal(to)}
}

var schema = relation.MustSchema([]relation.Column{
	{Name: "Name", Kind: value.KindString},
	{Name: "Rank", Kind: value.KindString},
	{Name: "ValidFrom", Kind: value.KindTime},
	{Name: "ValidTo", Kind: value.KindTime},
}, 2, 3)

func byName(n string) func(relation.Row) bool {
	return func(r relation.Row) bool { return r[0].AsString() == n }
}

func TestRollbackScenario(t *testing.T) {
	s := NewStore("Faculty", schema)

	// tx=10: Smith hired as assistant.
	if err := s.Insert(10, facRow("Smith", "Assistant", 100, interval.Forever)); err != nil {
		t.Fatal(err)
	}
	// tx=20: correction — the hire was recorded with the wrong period.
	if _, err := s.Update(20, byName("Smith"), []relation.Row{
		facRow("Smith", "Assistant", 95, 200),
	}); err != nil {
		t.Fatal(err)
	}
	// tx=30: Jones hired.
	if err := s.Insert(30, facRow("Jones", "Full", 150, interval.Forever)); err != nil {
		t.Fatal(err)
	}
	// tx=40: Smith's record deleted.
	if n, err := s.Delete(40, byName("Smith")); err != nil || n != 1 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}

	cases := []struct {
		tx    interval.Time
		rows  int
		smith string // expected ValidTo rendering of Smith's row, "" = absent
	}{
		{5, 0, ""},
		{10, 1, "∞"},
		{15, 1, "∞"},
		{20, 1, "200"},
		{35, 2, "200"},
		{40, 1, ""},
		{1000, 1, ""},
	}
	for _, c := range cases {
		rel := s.AsOf(c.tx)
		if rel.Cardinality() != c.rows {
			t.Errorf("AsOf(%d): %d rows, want %d", c.tx, rel.Cardinality(), c.rows)
			continue
		}
		found := ""
		for _, r := range rel.Rows {
			if r[0].AsString() == "Smith" {
				found = r[3].String()
			}
		}
		if found != c.smith {
			t.Errorf("AsOf(%d): Smith ValidTo %q, want %q", c.tx, found, c.smith)
		}
	}

	if cur := s.Current(); cur.Cardinality() != 1 || cur.Rows[0][0].AsString() != "Jones" {
		t.Errorf("Current: %v", s.Current())
	}
	if s.Versions() != 3 {
		t.Errorf("versions = %d, want 3", s.Versions())
	}

	hist := s.History()
	if hist.Cardinality() != 3 {
		t.Fatalf("history rows = %d", hist.Cardinality())
	}
	if hist.Schema.ColumnIndex("TxStart") != 4 || hist.Schema.ColumnIndex("TxStop") != 5 {
		t.Error("history schema missing transaction columns")
	}
	// The corrected Smith row lives over transaction span [20, 40).
	found := false
	for _, r := range hist.Rows {
		if r[0].AsString() == "Smith" && r[3].String() == "200" {
			if r[4].AsTime() != 20 || r[5].AsTime() != 40 {
				t.Errorf("corrected row tx span [%v,%v)", r[4], r[5])
			}
			found = true
		}
	}
	if !found {
		t.Error("corrected Smith version missing from history")
	}
}

func TestRollbackValidation(t *testing.T) {
	s := NewStore("F", schema)
	if err := s.Insert(10, facRow("a", "Assistant", 0, 5)); err != nil {
		t.Fatal(err)
	}
	// Transaction times must not regress.
	if err := s.Insert(5, facRow("b", "Assistant", 0, 5)); err == nil {
		t.Error("regressive transaction time accepted")
	}
	if _, err := s.Delete(5, byName("a")); err == nil {
		t.Error("regressive delete accepted")
	}
	// Rows are validated.
	if err := s.Insert(20, facRow("c", "Assistant", 9, 5)); err == nil {
		t.Error("invalid valid-time span accepted")
	}
	if err := s.Insert(20, relation.Row{value.String_("x")}); err == nil {
		t.Error("bad arity accepted")
	}
	// Out-of-range transaction times.
	if err := s.Insert(interval.Forever, facRow("d", "Assistant", 0, 5)); err == nil {
		t.Error("forever transaction time accepted")
	}
}

// Insert-then-delete at the same transaction instant never becomes visible.
func TestSameInstantInsertDelete(t *testing.T) {
	s := NewStore("F", schema)
	if err := s.Insert(10, facRow("ghost", "Assistant", 0, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete(10, byName("ghost")); err != nil {
		t.Fatal(err)
	}
	for _, tx := range []interval.Time{9, 10, 11} {
		if n := s.AsOf(tx).Cardinality(); n != 0 {
			t.Errorf("AsOf(%d) = %d rows, want 0", tx, n)
		}
	}
	if s.History().Cardinality() != 0 {
		t.Error("never-visible version leaked into history")
	}
}

// Property: AsOf agrees with replaying the operation log up to that time.
func TestAsOfMatchesReplay(t *testing.T) {
	type op struct {
		tx     interval.Time
		insert bool
		name   string
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore("F", schema)
		var ops []op
		tx := interval.Time(1)
		names := []string{"a", "b", "c"}
		for i := 0; i < 25; i++ {
			tx += interval.Time(1 + rng.Intn(3))
			o := op{tx: tx, insert: rng.Intn(2) == 0, name: names[rng.Intn(len(names))]}
			ops = append(ops, o)
			if o.insert {
				if err := s.Insert(o.tx, facRow(o.name, "Assistant", 0, 5)); err != nil {
					return false
				}
			} else {
				if _, err := s.Delete(o.tx, byName(o.name)); err != nil {
					return false
				}
			}
		}
		// Replay naively for a few probe times.
		for probe := interval.Time(0); probe <= tx+2; probe += 3 {
			counts := map[string]int{}
			for _, o := range ops {
				if o.tx > probe {
					break
				}
				if o.insert {
					counts[o.name]++
				} else {
					counts[o.name] = 0
				}
			}
			want := 0
			for _, c := range counts {
				want += c
			}
			if got := s.AsOf(probe).Cardinality(); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
