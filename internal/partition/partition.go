// Package partition implements the time-range partitioner behind parallel
// stream execution. The paper's algorithms are single passes over
// sort-ordered inputs (Section 4.1), which makes them partitionable by
// time range: every shard of a sorted relation is itself a sorted stream,
// so the same bounded-workspace algorithms run per shard unchanged. The
// one correctness wrinkle is the boundary-spanning tuple, which is
// replicated into every shard its lifespan intersects; exactness is
// restored downstream by the owner rule — each result is kept only by the
// shard that owns its canonical sweep point — or by position tags that let
// an order-preserving merge drop the replicas.
package partition

import (
	"fmt"

	"tdb/internal/catalog"
	"tdb/internal/interval"
)

// Range is one half-open time shard [Lo, Hi). The first shard of a
// partitioning starts at interval.MinTime and the last ends at
// interval.MaxTime, so the shard list covers every valid lifespan.
type Range struct {
	Lo, Hi interval.Time
}

// OwnsPoint reports whether the shard owns chronon t. Shards are disjoint
// and covering, so exactly one shard of a partitioning owns any chronon —
// the property the per-pair dedup rule relies on.
func (r Range) OwnsPoint(t interval.Time) bool { return r.Lo <= t && t < r.Hi }

// Intersects reports whether a lifespan shares at least one chronon with
// the shard, the replication criterion of Split.
func (r Range) Intersects(s interval.Interval) bool { return s.Start < r.Hi && s.End > r.Lo }

// String renders the shard with infinite endpoints elided.
func (r Range) String() string {
	lo, hi := "-∞", "+∞"
	if r.Lo != interval.MinTime {
		lo = fmt.Sprintf("%d", r.Lo)
	}
	if r.Hi != interval.MaxTime {
		hi = fmt.Sprintf("%d", r.Hi)
	}
	return "[" + lo + "," + hi + ")"
}

// Ranges turns ascending cut points (catalog.Stats.EquiDepthTSCuts) into
// the covering shard list: k cuts produce k+1 shards from MinTime to
// MaxTime. Cuts that are out of order or duplicated are skipped rather
// than producing empty or inverted shards.
func Ranges(cuts []interval.Time) []Range {
	rs := make([]Range, 0, len(cuts)+1)
	lo := interval.MinTime
	for _, c := range cuts {
		if c <= lo {
			continue
		}
		rs = append(rs, Range{Lo: lo, Hi: c})
		lo = c
	}
	return append(rs, Range{Lo: lo, Hi: interval.MaxTime})
}

// Split replicates the elements of a sorted slice into every shard their
// lifespan intersects. Relative order is preserved within each shard, so
// every shard of an input sorted by any of the Table 1/2 orderings is
// itself sorted by that ordering — the property that lets the single-pass
// algorithms run per shard unchanged.
func Split[T any](xs []T, span func(T) interval.Interval, rs []Range) [][]T {
	out := make([][]T, len(rs))
	if len(rs) == 0 {
		return out
	}
	// Pre-size every shard to the even-split estimate; boundary
	// replication may still grow a shard past it.
	est := len(xs)/len(rs) + 1
	for i := range out {
		out[i] = make([]T, 0, est)
	}
	//tdb:hotpath
	for _, x := range xs {
		s := span(x)
		for i, r := range rs {
			if r.Intersects(s) {
				out[i] = append(out[i], x) // lint:allow hotpath-alloc — replication factor is data-dependent; shards are pre-sized to the even-split estimate
			} else if s.End <= r.Lo {
				break // shards ascend; later ones lie even further right
			}
		}
	}
	return out
}

// Tagged pairs an element with its position in the source slice. Replicas
// of one boundary-spanning element share the position — the dedup tag an
// order-preserving merge uses to drop them.
type Tagged[T any] struct {
	Elem T
	Pos  int
}

// SplitTagged is Split with every replica carrying its source position.
func SplitTagged[T any](xs []T, span func(T) interval.Interval, rs []Range) [][]Tagged[T] {
	out := make([][]Tagged[T], len(rs))
	if len(rs) == 0 {
		return out
	}
	est := len(xs)/len(rs) + 1
	for i := range out {
		out[i] = make([]Tagged[T], 0, est)
	}
	//tdb:hotpath
	for pos, x := range xs {
		s := span(x)
		for i, r := range rs {
			if r.Intersects(s) {
				out[i] = append(out[i], Tagged[T]{Elem: x, Pos: pos}) // lint:allow hotpath-alloc — replication factor is data-dependent; shards are pre-sized to the even-split estimate
			} else if s.End <= r.Lo {
				break
			}
		}
	}
	return out
}

// Replication reports the measured boundary-replication rate of a split:
// extra copies per source tuple.
func Replication[T any](shards [][]T, n int) float64 {
	if n == 0 {
		return 0
	}
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	return float64(total-n) / float64(n)
}

// PredictReplication predicts the boundary-replication rate from catalog
// statistics: by Little's law λ·E[D] lifespans are in progress at a random
// instant, so each of the k−1 interior cut points is expected to be
// spanned by that many tuples, each costing one extra copy.
func PredictReplication(s *catalog.Stats, k int) float64 {
	if s == nil || k < 2 || s.Cardinality == 0 {
		return 0
	}
	return float64(k-1) * s.PredictedWorkspace() / float64(s.Cardinality)
}
