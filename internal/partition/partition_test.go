package partition

import (
	"testing"

	"tdb/internal/catalog"
	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/workload"
)

func iv(s, e interval.Time) interval.Interval { return interval.New(s, e) }

func ident(s interval.Interval) interval.Interval { return s }

func TestRangesCoverAndOrder(t *testing.T) {
	rs := Ranges([]interval.Time{10, 20, 30})
	if len(rs) != 4 {
		t.Fatalf("want 4 shards, got %v", rs)
	}
	if rs[0].Lo != interval.MinTime || rs[len(rs)-1].Hi != interval.MaxTime {
		t.Fatalf("shards do not cover the time line: %v", rs)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Lo != rs[i-1].Hi {
			t.Fatalf("shards not contiguous at %d: %v", i, rs)
		}
	}
	// Every chronon is owned by exactly one shard.
	for _, p := range []interval.Time{-5, 9, 10, 19, 20, 29, 30, 1000} {
		owners := 0
		for _, r := range rs {
			if r.OwnsPoint(p) {
				owners++
			}
		}
		if owners != 1 {
			t.Errorf("chronon %d owned by %d shards", p, owners)
		}
	}
}

func TestRangesSkipBadCuts(t *testing.T) {
	rs := Ranges([]interval.Time{10, 10, 5, 20})
	if len(rs) != 3 {
		t.Fatalf("duplicate/out-of-order cuts not skipped: %v", rs)
	}
	if rs[0].Hi != 10 || rs[1].Hi != 20 {
		t.Fatalf("wrong surviving cuts: %v", rs)
	}
	if got := Ranges(nil); len(got) != 1 {
		t.Fatalf("no cuts must give the single covering shard, got %v", got)
	}
}

func TestSplitReplicatesBoundarySpanners(t *testing.T) {
	rs := Ranges([]interval.Time{10, 20})
	spans := []interval.Interval{ // TS-sorted, as Split's inputs always are
		iv(1, 5),   // shard 0 only
		iv(5, 25),  // spans both cuts: all three shards
		iv(8, 12),  // spans the first cut: shards 0 and 1
		iv(11, 19), // shard 1 only
		iv(21, 30), // shard 2 only
	}
	shards := Split(spans, ident, rs)
	wantLens := []int{3, 3, 2}
	for i, w := range wantLens {
		if len(shards[i]) != w {
			t.Errorf("shard %d: want %d elements, got %v", i, w, shards[i])
		}
	}
	// Order within each shard follows source order.
	for i, sh := range shards {
		for j := 1; j < len(sh); j++ {
			if sh[j].Start < sh[j-1].Start {
				t.Errorf("shard %d out of source order: %v", i, sh)
			}
		}
	}
	if got := Replication(shards, len(spans)); got != 3.0/5.0 {
		t.Errorf("measured replication = %v, want 0.6", got)
	}
}

func TestSplitTaggedSharesPositions(t *testing.T) {
	rs := Ranges([]interval.Time{10})
	spans := []interval.Interval{iv(1, 4), iv(8, 14), iv(12, 15)}
	shards := SplitTagged(spans, ident, rs)
	if len(shards[0]) != 2 || len(shards[1]) != 2 {
		t.Fatalf("unexpected shard sizes: %v", shards)
	}
	if shards[0][1].Pos != 1 || shards[1][0].Pos != 1 {
		t.Fatalf("replicas of element 1 must share position 1: %v", shards)
	}
	if shards[0][0].Pos != 0 || shards[1][1].Pos != 2 {
		t.Fatalf("singleton positions wrong: %v", shards)
	}
}

// Every tuple must land in at least the shard owning its ValidFrom and the
// shard owning its last chronon — the witness-shard property the parallel
// join dedup rule relies on.
func TestSplitCoversOwnShards(t *testing.T) {
	tuples := workload.Tuples(workload.Config{N: 500, Lambda: 1, MeanDur: 15, LongFrac: 0.1, Seed: 7}, "x")
	spans := make([]interval.Interval, len(tuples))
	for i, tu := range tuples {
		spans[i] = tu.Span
	}
	st := catalog.FromSpans(spans)
	rs := Ranges(st.EquiDepthTSCuts(4))
	shards := Split(spans, ident, rs)
	find := func(p interval.Time) int {
		for i, r := range rs {
			if r.OwnsPoint(p) {
				return i
			}
		}
		return -1
	}
	contains := func(sh []interval.Interval, s interval.Interval) bool {
		for _, x := range sh {
			if x == s {
				return true
			}
		}
		return false
	}
	for _, s := range spans {
		for _, p := range []interval.Time{s.Start, s.End - 1} {
			i := find(p)
			if i < 0 || !contains(shards[i], s) {
				t.Fatalf("span %v missing from shard owning chronon %d", s, p)
			}
		}
	}
}

func TestPredictReplicationTracksMeasured(t *testing.T) {
	tuples := workload.Tuples(workload.Config{N: 4000, Lambda: 1, MeanDur: 12, Seed: 3}, "x")
	spans := make([]interval.Interval, len(tuples))
	for i, tu := range tuples {
		spans[i] = tu.Span
	}
	st := catalog.FromSpans(spans)
	for _, k := range []int{2, 4, 8} {
		rs := Ranges(st.EquiDepthTSCuts(k))
		measured := Replication(Split(spans, ident, rs), len(spans))
		predicted := PredictReplication(st, len(rs))
		if predicted <= 0 {
			t.Fatalf("k=%d: no predicted replication", k)
		}
		if ratio := measured / predicted; ratio < 0.4 || ratio > 2.5 {
			t.Errorf("k=%d: measured %.4f vs predicted %.4f (ratio %.2f)", k, measured, predicted, ratio)
		}
	}
	if got := PredictReplication(nil, 4); got != 0 {
		t.Errorf("nil stats must predict 0, got %v", got)
	}
	if got := PredictReplication(st, 1); got != 0 {
		t.Errorf("k=1 must predict 0, got %v", got)
	}
}

// Shards of an input sorted by any required ordering stay sorted by it.
func TestShardsPreserveSortOrders(t *testing.T) {
	tuples := workload.Tuples(workload.Config{N: 800, Lambda: 1, MeanDur: 20, LongFrac: 0.2, Seed: 9}, "x")
	spans := make([]interval.Interval, len(tuples))
	for i, tu := range tuples {
		spans[i] = tu.Span
	}
	st := catalog.FromSpans(spans)
	rs := Ranges(st.EquiDepthTSCuts(4))
	for _, o := range []relation.Order{{relation.TSAsc}, {relation.TEAsc}, {relation.TSAsc, relation.TEAsc}} {
		sorted := append([]interval.Interval{}, spans...)
		relation.SortSpans(sorted, ident, o)
		for i, sh := range Split(sorted, ident, rs) {
			if !relation.SortedSpans(sh, ident, o) {
				t.Errorf("order %v: shard %d lost the sort order", o, i)
			}
		}
	}
}
