package partition

import (
	"math/rand"
	"testing"

	"tdb/internal/interval"
)

// SplitIndex must agree with Split exactly: same shards, same order, with
// indexes standing in for the elements.
func TestSplitIndexAgreesWithSplit(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300)
		spans := make([]interval.Interval, n)
		ts := make([]interval.Time, n)
		te := make([]interval.Time, n)
		start := interval.Time(0)
		for i := range spans {
			start += interval.Time(rng.Intn(5))
			end := start + interval.Time(1+rng.Intn(30))
			spans[i] = interval.Interval{Start: start, End: end}
			ts[i], te[i] = start, end
		}
		cuts := []interval.Time{40, 40, 100, 90, 200} // dup and out-of-order cuts exercised
		rs := Ranges(cuts)

		id := func(s interval.Interval) interval.Interval { return s }
		want := Split(spans, id, rs)
		got := SplitIndex(ts, te, rs)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d shards, Split made %d", seed, len(got), len(want))
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("seed %d shard %d: %d indexes, Split kept %d elements", seed, i, len(got[i]), len(want[i]))
			}
			for j, idx := range got[i] {
				if spans[idx] != want[i][j] {
					t.Fatalf("seed %d shard %d pos %d: index %d = %v, Split kept %v",
						seed, i, j, idx, spans[idx], want[i][j])
				}
			}
		}
	}
}

func TestSplitIndexEmpty(t *testing.T) {
	if got := SplitIndex(nil, nil, nil); len(got) != 0 {
		t.Fatalf("no ranges: %d shards", len(got))
	}
	rs := Ranges([]interval.Time{10})
	got := SplitIndex(nil, nil, rs)
	if len(got) != 2 || len(got[0]) != 0 || len(got[1]) != 0 {
		t.Fatalf("empty input: %v", got)
	}
}
