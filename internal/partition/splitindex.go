package partition

import "tdb/internal/interval"

// SplitIndex is Split over columnar endpoints: instead of replicating
// elements, each shard receives the *row indexes* (into the source
// columns) whose lifespan [ts[j], te[j]) intersects it, in source order.
// Shard workers on the columnar path gather their compact local columns
// from these lists and report results as global indexes — no row data
// moves until the coordinator materializes the merged output once.
func SplitIndex(ts, te []interval.Time, rs []Range) [][]int32 {
	out := make([][]int32, len(rs))
	if len(rs) == 0 {
		return out
	}
	// Pre-size every shard to the even-split estimate; boundary
	// replication may still grow a shard past it.
	est := len(ts)/len(rs) + 1
	for i := range out {
		out[i] = make([]int32, 0, est)
	}
	//tdb:hotpath
	for j := range ts {
		s, e := ts[j], te[j]
		for i, r := range rs {
			if s < r.Hi && e > r.Lo {
				out[i] = append(out[i], int32(j)) // lint:allow hotpath-alloc — replication factor is data-dependent; shards are pre-sized to the even-split estimate
			} else if e <= r.Lo {
				break // shards ascend; later ones lie even further right
			}
		}
	}
	return out
}
