// Package constraints implements the semantic layer of the paper's
// Section 5: temporal integrity constraints — the intra-tuple constraint
// ValidFrom < ValidTo, the chronological ordering of attribute values
// ('Assistant' before 'Associate' before 'Full'), and the continuous-
// employment strengthening — together with an inference engine over
// conjunctions of order comparisons. The engine decides which query
// inequalities are redundant (implied by the remaining conjuncts plus the
// integrity constraints) and whether a conjunction is contradictory, which
// is exactly what lets the optimizer reduce the Superstar less-than join to
// a Contained-semijoin.
package constraints

import (
	"fmt"
	"sort"

	"tdb/internal/algebra"
	"tdb/internal/interval"
)

// Term is a node of the inequality graph: a qualified temporal column
// (f1.ValidFrom) or a time constant.
type Term struct {
	IsConst bool
	Const   interval.Time
	Var     string
	Col     string
}

// Col returns a column term.
func Col(v, col string) Term { return Term{Var: v, Col: col} }

// ConstT returns a constant chronon term.
func ConstT(t interval.Time) Term { return Term{IsConst: true, Const: t} }

// String renders the term.
func (t Term) String() string {
	if t.IsConst {
		return fmt.Sprintf("%d", t.Const)
	}
	return t.Var + "." + t.Col
}

func (t Term) key() string {
	if t.IsConst {
		return fmt.Sprintf("#%d", t.Const)
	}
	return t.Var + "." + t.Col
}

// System is a set of difference constraints over terms: edges l→r with
// weight w ∈ {0,1} assert r ≥ l + w, i.e. l ≤ r (w=0) or l < r (w=1) on the
// discrete time line. Closure is computed on demand; a positive-weight
// cycle is a contradiction (the conjunction admits no assignment).
type System struct {
	ids    map[string]int
	terms  []Term
	edges  map[[2]int]int // max weight per ordered pair
	dist   [][]int        // longest-path closure; nil when stale
	broken bool
}

const negInf = int(-1) << 40

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{ids: map[string]int{}, edges: map[[2]int]int{}}
}

func (s *System) id(t Term) int {
	k := t.key()
	if i, ok := s.ids[k]; ok {
		return i
	}
	i := len(s.terms)
	s.ids[k] = i
	s.terms = append(s.terms, t)
	s.dist = nil
	return i
}

func (s *System) addEdge(l, r int, w int) {
	key := [2]int{l, r}
	if old, ok := s.edges[key]; !ok || w > old {
		s.edges[key] = w
		s.dist = nil
	}
}

// AddLE asserts l ≤ r.
func (s *System) AddLE(l, r Term) { s.addEdge(s.id(l), s.id(r), 0) }

// AddLT asserts l < r.
func (s *System) AddLT(l, r Term) { s.addEdge(s.id(l), s.id(r), 1) }

// AddEQ asserts l = r.
func (s *System) AddEQ(l, r Term) {
	li, ri := s.id(l), s.id(r)
	s.addEdge(li, ri, 0)
	s.addEdge(ri, li, 0)
}

// AddCmp asserts a comparison by operator. NE carries no order information
// on its own and is ignored.
func (s *System) AddCmp(l Term, op algebra.CmpOp, r Term) {
	switch op {
	case algebra.EQ:
		s.AddEQ(l, r)
	case algebra.LT:
		s.AddLT(l, r)
	case algebra.LE:
		s.AddLE(l, r)
	case algebra.GT:
		s.AddLT(r, l)
	case algebra.GE:
		s.AddLE(r, l)
	}
}

// close computes the longest-path closure (Floyd–Warshall over max-plus),
// first grounding the order among the constant terms.
func (s *System) close() {
	if s.dist != nil {
		return
	}
	// Ground constants: for each pair, the true order is an edge.
	var consts []int
	for i, t := range s.terms {
		if t.IsConst {
			consts = append(consts, i)
		}
	}
	sort.Slice(consts, func(a, b int) bool { return s.terms[consts[a]].Const < s.terms[consts[b]].Const })
	for i := 1; i < len(consts); i++ {
		a, b := consts[i-1], consts[i]
		if s.terms[a].Const < s.terms[b].Const {
			s.addEdge(a, b, 1)
		} else {
			s.addEdge(a, b, 0)
			s.addEdge(b, a, 0)
		}
	}

	n := len(s.terms)
	d := make([][]int, n)
	for i := range d {
		d[i] = make([]int, n)
		for j := range d[i] {
			d[i][j] = negInf
		}
		d[i][i] = 0
	}
	for e, w := range s.edges {
		if w > d[e[0]][e[1]] {
			d[e[0]][e[1]] = w
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if d[i][k] == negInf {
				continue
			}
			for j := 0; j < n; j++ {
				if d[k][j] == negInf {
					continue
				}
				if v := d[i][k] + d[k][j]; v > d[i][j] {
					if v > 2 {
						v = 2 // weights saturate; only 0 vs ≥1 matters
					}
					d[i][j] = v
				}
			}
		}
	}
	s.dist = d
	s.broken = false
	for i := 0; i < n; i++ {
		if d[i][i] > 0 {
			s.broken = true
		}
	}
}

// Contradictory reports whether the constraints admit no assignment.
func (s *System) Contradictory() bool {
	s.close()
	return s.broken
}

func (s *System) gap(l, r Term) (int, bool) {
	// Constants are grounded against every other constant by the closure,
	// so an unseen constant can simply be registered.
	if l.IsConst {
		s.id(l)
	}
	if r.IsConst {
		s.id(r)
	}
	li, ok1 := s.ids[l.key()]
	ri, ok2 := s.ids[r.key()]
	if !ok1 || !ok2 {
		return 0, false
	}
	s.close()
	if s.dist[li][ri] == negInf {
		return 0, false
	}
	return s.dist[li][ri], true
}

// Implies reports whether the system entails l op r. A contradictory
// system entails everything.
func (s *System) Implies(l Term, op algebra.CmpOp, r Term) bool {
	if s.Contradictory() {
		return true
	}
	switch op {
	case algebra.LT:
		g, ok := s.gap(l, r)
		return ok && g >= 1
	case algebra.LE:
		g, ok := s.gap(l, r)
		return ok && g >= 0
	case algebra.GT:
		g, ok := s.gap(r, l)
		return ok && g >= 1
	case algebra.GE:
		g, ok := s.gap(r, l)
		return ok && g >= 0
	case algebra.EQ:
		// l ≤ r and r ≤ l; a consistent system cannot hold either gap
		// above 0 in both directions.
		g1, ok1 := s.gap(l, r)
		g2, ok2 := s.gap(r, l)
		return ok1 && ok2 && g1 >= 0 && g2 >= 0
	}
	return false
}

// Clone returns an independent copy of the system.
func (s *System) Clone() *System {
	c := NewSystem()
	c.terms = append([]Term{}, s.terms...)
	for k, v := range s.ids {
		c.ids[k] = v
	}
	for k, v := range s.edges {
		c.edges[k] = v
	}
	return c
}

// Terms returns the registered terms (for diagnostics).
func (s *System) Terms() []Term { return append([]Term{}, s.terms...) }
