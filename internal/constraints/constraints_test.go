package constraints

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tdb/internal/algebra"
	"tdb/internal/interval"
	"tdb/internal/value"
)

func TestBasicImplication(t *testing.T) {
	s := NewSystem()
	a, b, c := Col("x", "TS"), Col("x", "TE"), Col("y", "TS")
	s.AddLT(a, b)
	s.AddLE(b, c)
	if !s.Implies(a, algebra.LT, c) {
		t.Error("a<b ∧ b≤c must imply a<c")
	}
	if !s.Implies(a, algebra.LE, c) {
		t.Error("a<c implies a≤c")
	}
	if s.Implies(c, algebra.LT, a) {
		t.Error("reverse implied incorrectly")
	}
	if s.Implies(a, algebra.EQ, c) {
		t.Error("equality implied incorrectly")
	}
	if s.Contradictory() {
		t.Error("consistent system reported contradictory")
	}
}

func TestEqualityChains(t *testing.T) {
	s := NewSystem()
	a, b, c := Col("a", "T"), Col("b", "T"), Col("c", "T")
	s.AddEQ(a, b)
	s.AddEQ(b, c)
	if !s.Implies(a, algebra.EQ, c) {
		t.Error("equality not transitive")
	}
	if !s.Implies(a, algebra.LE, c) || !s.Implies(c, algebra.LE, a) {
		t.Error("equality must imply both ≤ directions")
	}
	s.AddLT(a, Col("d", "T"))
	if !s.Implies(c, algebra.LT, Col("d", "T")) {
		t.Error("equality must propagate strict bounds")
	}
}

func TestContradiction(t *testing.T) {
	s := NewSystem()
	a, b := Col("a", "T"), Col("b", "T")
	s.AddLT(a, b)
	s.AddLE(b, a)
	if !s.Contradictory() {
		t.Error("a<b ∧ b≤a not detected as contradictory")
	}
	// Everything is implied by a contradiction.
	if !s.Implies(b, algebra.LT, a) {
		t.Error("ex falso")
	}
}

func TestConstantGrounding(t *testing.T) {
	s := NewSystem()
	a := Col("a", "T")
	s.AddLE(ConstT(10), a) // 10 ≤ a
	s.AddLT(a, ConstT(20)) // a < 20
	if !s.Implies(ConstT(5), algebra.LT, a) {
		t.Error("5<10≤a not derived")
	}
	if !s.Implies(a, algebra.LT, ConstT(30)) {
		t.Error("a<20<30 not derived")
	}
	if s.Implies(a, algebra.LT, ConstT(15)) {
		t.Error("a<15 over-derived")
	}
	// Constants compare directly even when unregistered.
	if !s.Implies(ConstT(1), algebra.LT, ConstT(2)) {
		t.Error("constant order not decided")
	}
	// A constraint violating constant order is contradictory.
	s2 := NewSystem()
	s2.AddLT(ConstT(20), ConstT(10))
	if !s2.Contradictory() {
		t.Error("20<10 accepted")
	}
}

func TestCmpOperators(t *testing.T) {
	s := NewSystem()
	a, b := Col("a", "T"), Col("b", "T")
	s.AddCmp(a, algebra.GT, b) // b < a
	if !s.Implies(b, algebra.LT, a) {
		t.Error("GT not normalized")
	}
	s.AddCmp(a, algebra.GE, Col("c", "T")) // c ≤ a
	if !s.Implies(Col("c", "T"), algebra.LE, a) {
		t.Error("GE not normalized")
	}
	// NE is ignored (no order content).
	s.AddCmp(a, algebra.NE, b)
	if s.Contradictory() {
		t.Error("NE introduced constraints")
	}
}

func TestClone(t *testing.T) {
	s := NewSystem()
	a, b := Col("a", "T"), Col("b", "T")
	s.AddLT(a, b)
	c := s.Clone()
	c.AddLE(b, a)
	if !c.Contradictory() {
		t.Error("clone missing base edges")
	}
	if s.Contradictory() {
		t.Error("mutating clone affected original")
	}
	if len(s.Terms()) != 2 {
		t.Errorf("Terms = %v", s.Terms())
	}
}

// Property: implications verified against brute-force assignment search on
// small random systems.
func TestImpliesSoundAgainstEnumeration(t *testing.T) {
	const nTerms = 4
	const domain = 4
	terms := make([]Term, nTerms)
	for i := range terms {
		terms[i] = Col(string(rune('a'+i)), "T")
	}
	ops := []algebra.CmpOp{algebra.LT, algebra.LE, algebra.EQ}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSystem()
		type con struct {
			l, r int
			op   algebra.CmpOp
		}
		var cons []con
		for k := 0; k < 3; k++ {
			c := con{l: rng.Intn(nTerms), r: rng.Intn(nTerms), op: ops[rng.Intn(len(ops))]}
			cons = append(cons, c)
			s.AddCmp(terms[c.l], c.op, terms[c.r])
		}
		// Enumerate all assignments over the small domain.
		holds := func(v []int, c con) bool {
			cmp := 0
			switch {
			case v[c.l] < v[c.r]:
				cmp = -1
			case v[c.l] > v[c.r]:
				cmp = 1
			}
			return c.op.Eval(cmp)
		}
		var sat [][]int
		var assign func(v []int, i int)
		assign = func(v []int, i int) {
			if i == nTerms {
				for _, c := range cons {
					if !holds(v, c) {
						return
					}
				}
				sat = append(sat, append([]int{}, v...))
				return
			}
			for d := 0; d < domain; d++ {
				v[i] = d
				assign(v, i+1)
			}
		}
		assign(make([]int, nTerms), 0)

		if s.Contradictory() != (len(sat) == 0) {
			return false
		}
		if len(sat) == 0 {
			return true
		}
		// Soundness: every Implies must hold in every satisfying assignment.
		// (Completeness over the bounded domain is not claimed: the domain
		// truncates orders a longer time line would satisfy.)
		for l := 0; l < nTerms; l++ {
			for r := 0; r < nTerms; r++ {
				for _, op := range ops {
					if !s.Implies(terms[l], op, terms[r]) {
						continue
					}
					for _, v := range sat {
						if !holds(v, con{l: l, r: r, op: op}) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func superstarCtx() QueryContext {
	return QueryContext{
		Bindings: map[string]string{"f1": "Faculty", "f2": "Faculty", "f3": "Faculty"},
		Temporal: map[string][2]string{"Faculty": {"ValidFrom", "ValidTo"}},
	}
}

func rankOrder(continuous bool) []ChronOrder {
	return []ChronOrder{{
		Relation: "Faculty", KeyCol: "Name", ValCol: "Rank",
		Order:      []string{"Assistant", "Associate", "Full"},
		Continuous: continuous,
	}}
}

func superstarAtoms() []algebra.Atom {
	col := algebra.Column
	cons := func(s string) algebra.Operand { return algebra.Const(value.String_(s)) }
	return []algebra.Atom{
		{L: col("f1", "Name"), Op: algebra.EQ, R: col("f2", "Name")},
		{L: col("f1", "Rank"), Op: algebra.EQ, R: cons("Assistant")},
		{L: col("f2", "Rank"), Op: algebra.EQ, R: cons("Full")},
		{L: col("f3", "Rank"), Op: algebra.EQ, R: cons("Associate")},
		{L: col("f1", "ValidFrom"), Op: algebra.LT, R: col("f3", "ValidTo")},
		{L: col("f3", "ValidFrom"), Op: algebra.LT, R: col("f1", "ValidTo")},
		{L: col("f2", "ValidFrom"), Op: algebra.LT, R: col("f3", "ValidTo")},
		{L: col("f3", "ValidFrom"), Op: algebra.LT, R: col("f2", "ValidTo")},
	}
}

// The Section 5 derivation: with the chronological Rank ordering and
// f1.Name=f2.Name, the conjuncts f1.ValidFrom<f3.ValidTo and
// f3.ValidFrom<f2.ValidTo are redundant — implied by the remaining atoms
// plus the integrity constraints.
func TestSuperstarRedundancy(t *testing.T) {
	atoms := superstarAtoms()
	ctx := superstarCtx()

	isRedundant := func(idx int) bool {
		rest := append(append([]algebra.Atom{}, atoms[:idx]...), atoms[idx+1:]...)
		sys := NewSystem()
		Instantiate(sys, rest, ctx, rankOrder(false))
		AddAtoms(sys, rest, ctx)
		a := atoms[idx]
		return sys.Implies(Col(a.L.Col.Var, a.L.Col.Col), a.Op, Col(a.R.Col.Var, a.R.Col.Col))
	}

	if !isRedundant(4) {
		t.Error("f1.ValidFrom<f3.ValidTo not derived as redundant")
	}
	if !isRedundant(7) {
		t.Error("f3.ValidFrom<f2.ValidTo not derived as redundant")
	}
	if isRedundant(5) {
		t.Error("f3.ValidFrom<f1.ValidTo wrongly declared redundant")
	}
	if isRedundant(6) {
		t.Error("f2.ValidFrom<f3.ValidTo wrongly declared redundant")
	}

	// Without the chronological ordering nothing is redundant.
	sysNoIC := NewSystem()
	rest := append(append([]algebra.Atom{}, atoms[:4]...), atoms[5:]...)
	Instantiate(sysNoIC, rest, ctx, nil)
	AddAtoms(sysNoIC, rest, ctx)
	if sysNoIC.Implies(Col("f1", "ValidFrom"), algebra.LT, Col("f3", "ValidTo")) {
		t.Error("redundancy derived without the integrity constraint")
	}
}

// Under continuous employment, f1.ValidTo = f2.ValidFrom is derived for the
// promoted pair (f1 assistant, f2 full? no — consecutive ranks only), so
// Instantiate must produce equality for adjacent ranks and ≤ otherwise.
func TestContinuousEmployment(t *testing.T) {
	ctx := QueryContext{
		Bindings: map[string]string{"a": "Faculty", "b": "Faculty", "c": "Faculty"},
		Temporal: map[string][2]string{"Faculty": {"ValidFrom", "ValidTo"}},
	}
	col := algebra.Column
	cons := func(s string) algebra.Operand { return algebra.Const(value.String_(s)) }
	atoms := []algebra.Atom{
		{L: col("a", "Name"), Op: algebra.EQ, R: col("b", "Name")},
		{L: col("b", "Name"), Op: algebra.EQ, R: col("c", "Name")},
		{L: col("a", "Rank"), Op: algebra.EQ, R: cons("Assistant")},
		{L: col("b", "Rank"), Op: algebra.EQ, R: cons("Associate")},
		{L: col("c", "Rank"), Op: algebra.EQ, R: cons("Full")},
	}
	sys := NewSystem()
	Instantiate(sys, atoms, ctx, rankOrder(true))
	AddAtoms(sys, atoms, ctx)

	if !sys.Implies(Col("a", "ValidTo"), algebra.EQ, Col("b", "ValidFrom")) {
		t.Error("adjacent ranks must abut under continuous employment")
	}
	if !sys.Implies(Col("b", "ValidTo"), algebra.EQ, Col("c", "ValidFrom")) {
		t.Error("associate/full must abut")
	}
	if sys.Implies(Col("a", "ValidTo"), algebra.EQ, Col("c", "ValidFrom")) {
		t.Error("assistant/full must not abut (associate lies between)")
	}
	if !sys.Implies(Col("a", "ValidTo"), algebra.LT, Col("c", "ValidFrom")) {
		t.Error("assistant ends strictly before full begins (associate period between)")
	}
}

// Different names ⇒ no ordering edges.
func TestNoEdgesWithoutKeyEquality(t *testing.T) {
	ctx := superstarCtx()
	col := algebra.Column
	cons := func(s string) algebra.Operand { return algebra.Const(value.String_(s)) }
	atoms := []algebra.Atom{
		{L: col("f1", "Rank"), Op: algebra.EQ, R: cons("Assistant")},
		{L: col("f2", "Rank"), Op: algebra.EQ, R: cons("Full")},
	}
	sys := NewSystem()
	Instantiate(sys, atoms, ctx, rankOrder(false))
	AddAtoms(sys, atoms, ctx)
	if sys.Implies(Col("f1", "ValidTo"), algebra.LE, Col("f2", "ValidFrom")) {
		t.Error("ordering derived without key equality")
	}
	// But the intra-tuple constraints are always present.
	if !sys.Implies(Col("f1", "ValidFrom"), algebra.LT, Col("f1", "ValidTo")) {
		t.Error("intra-tuple constraint missing")
	}
}

// Key equality must be transitive across variables.
func TestKeyEqualityTransitive(t *testing.T) {
	ctx := superstarCtx()
	col := algebra.Column
	cons := func(s string) algebra.Operand { return algebra.Const(value.String_(s)) }
	atoms := []algebra.Atom{
		{L: col("f1", "Name"), Op: algebra.EQ, R: col("f3", "Name")},
		{L: col("f3", "Name"), Op: algebra.EQ, R: col("f2", "Name")},
		{L: col("f1", "Rank"), Op: algebra.EQ, R: cons("Assistant")},
		{L: col("f2", "Rank"), Op: algebra.EQ, R: cons("Full")},
	}
	sys := NewSystem()
	Instantiate(sys, atoms, ctx, rankOrder(false))
	if !sys.Implies(Col("f1", "ValidTo"), algebra.LE, Col("f2", "ValidFrom")) {
		t.Error("transitive key equality not honored")
	}
}

func TestAddAtomsSkipsNonTemporal(t *testing.T) {
	ctx := superstarCtx()
	col := algebra.Column
	atoms := []algebra.Atom{
		// Name is not a temporal column: must not enter the system.
		{L: col("f1", "Name"), Op: algebra.LT, R: col("f2", "Name")},
		// Unbound variable: skipped.
		{L: col("zz", "ValidFrom"), Op: algebra.LT, R: col("f1", "ValidTo")},
	}
	sys := NewSystem()
	AddAtoms(sys, atoms, ctx)
	if len(sys.Terms()) != 0 {
		t.Errorf("non-temporal atoms registered terms: %v", sys.Terms())
	}
	// Time constants do enter.
	atoms = []algebra.Atom{
		{L: col("f1", "ValidFrom"), Op: algebra.GE, R: algebra.Const(value.TimeVal(interval.Time(100)))},
	}
	AddAtoms(sys, atoms, ctx)
	if !sys.Implies(ConstT(100), algebra.LE, Col("f1", "ValidFrom")) {
		t.Error("time constant comparison not registered")
	}
}
