package constraints

import (
	"tdb/internal/algebra"
	"tdb/internal/value"
)

// ChronOrder declares the chronological ordering of the values an attribute
// can assume (Section 2's Rank example): for the same key, a tuple carrying
// an earlier value of Order must end no later than a tuple carrying a later
// value begins. Continuous additionally asserts the continuous-employment
// strengthening of Section 5: consecutive values abut exactly
// (ValidTo_i = ValidFrom_{i+1}) and every history starts at Order[0].
type ChronOrder struct {
	Relation   string
	KeyCol     string // the surrogate, e.g. Name
	ValCol     string // the ordered attribute, e.g. Rank
	Order      []string
	Continuous bool
}

func (c ChronOrder) rank(v string) int {
	for i, o := range c.Order {
		if o == v {
			return i
		}
	}
	return -1
}

// QueryContext describes a query to the instantiation step: which relation
// each range variable scans and the ValidFrom/ValidTo column names of each
// relation.
type QueryContext struct {
	Bindings map[string]string    // range variable → relation name
	Temporal map[string][2]string // relation name → {TS col, TE col}
}

// Instantiate adds to sys every edge the integrity constraints imply for
// the query: the intra-tuple constraint for every range variable over a
// temporal relation, and the chronological-ordering edges between range
// variables of the same relation whose key columns the query equates and
// whose ordered attribute the query binds to constants — exactly the
// derivation of Section 5 ("f1.ValidTo<f2.ValidFrom always holds in the
// presence of f1.Name=f2.Name").
func Instantiate(sys *System, atoms []algebra.Atom, ctx QueryContext, ics []ChronOrder) {
	// Intra-tuple: v.TS < v.TE.
	for v, rel := range ctx.Bindings {
		if tc, ok := ctx.Temporal[rel]; ok {
			sys.AddLT(Col(v, tc[0]), Col(v, tc[1]))
		}
	}

	for _, ic := range ics {
		tc, ok := ctx.Temporal[ic.Relation]
		if !ok {
			continue
		}
		// Range variables over the constrained relation.
		var vars []string
		for v, rel := range ctx.Bindings {
			if rel == ic.Relation {
				vars = append(vars, v)
			}
		}
		// Key-equality classes among those variables (union-find over
		// the query's key equalities, transitively).
		parent := map[string]string{}
		var find func(string) string
		find = func(v string) string {
			p, ok := parent[v]
			if !ok || p == v {
				return v
			}
			root := find(p)
			parent[v] = root
			return root
		}
		union := func(a, b string) { parent[find(a)] = find(b) }
		keyEq := func(a algebra.Atom) (string, string, bool) {
			if a.Op != algebra.EQ || a.L.IsConst || a.R.IsConst {
				return "", "", false
			}
			if a.L.Col.Col != ic.KeyCol || a.R.Col.Col != ic.KeyCol {
				return "", "", false
			}
			return a.L.Col.Var, a.R.Col.Var, true
		}
		inScope := map[string]bool{}
		for _, v := range vars {
			inScope[v] = true
		}
		for _, a := range atoms {
			if l, r, ok := keyEq(a); ok && inScope[l] && inScope[r] {
				union(l, r)
			}
		}
		// Constant bindings of the ordered attribute.
		ranks := map[string]int{}
		for _, a := range atoms {
			col, cv, ok := constBinding(a)
			if !ok || !inScope[col.Var] || col.Col != ic.ValCol {
				continue
			}
			if r := ic.rank(cv); r >= 0 {
				ranks[col.Var] = r
			}
		}
		// Edges between same-key variables with ordered values.
		for i, a := range vars {
			ra, haveA := ranks[a]
			if !haveA {
				continue
			}
			for _, b := range vars[i+1:] {
				rb, haveB := ranks[b]
				if !haveB || find(a) != find(b) {
					continue
				}
				lo, hi, rlo, rhi := a, b, ra, rb
				if ra > rb {
					lo, hi, rlo, rhi = b, a, rb, ra
				}
				if rlo == rhi {
					continue
				}
				if ic.Continuous && rhi == rlo+1 {
					sys.AddEQ(Col(lo, tc[1]), Col(hi, tc[0]))
				} else {
					sys.AddLE(Col(lo, tc[1]), Col(hi, tc[0]))
				}
			}
		}
	}
}

// constBinding recognizes atoms of the form var.Col = "const" (either
// operand order) over string constants.
func constBinding(a algebra.Atom) (algebra.ColRef, string, bool) {
	if a.Op != algebra.EQ {
		return algebra.ColRef{}, "", false
	}
	switch {
	case !a.L.IsConst && a.R.IsConst && a.R.Const.Kind() == value.KindString:
		return a.L.Col, a.R.Const.AsString(), true
	case a.L.IsConst && !a.R.IsConst && a.L.Const.Kind() == value.KindString:
		return a.R.Col, a.L.Const.AsString(), true
	}
	return algebra.ColRef{}, "", false
}

// AddAtoms registers the order information of the query's own temporal
// comparison atoms in the system. Only atoms whose column operands belong
// to the temporal columns of their variable's relation (or compare against
// integer/time constants) carry time-line order; others are skipped.
func AddAtoms(sys *System, atoms []algebra.Atom, ctx QueryContext) {
	temporalCol := func(o algebra.Operand) (Term, bool) {
		if o.IsConst {
			if o.Const.Kind() == value.KindString {
				return Term{}, false
			}
			return ConstT(o.Const.AsTime()), true
		}
		rel, ok := ctx.Bindings[o.Col.Var]
		if !ok {
			return Term{}, false
		}
		tc, ok := ctx.Temporal[rel]
		if !ok || (o.Col.Col != tc[0] && o.Col.Col != tc[1]) {
			return Term{}, false
		}
		return Col(o.Col.Var, o.Col.Col), true
	}
	for _, a := range atoms {
		l, lok := temporalCol(a.L)
		r, rok := temporalCol(a.R)
		if lok && rok {
			sys.AddCmp(l, a.Op, r)
		}
	}
}
