package engine

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"

	"tdb/internal/obs"
	"tdb/internal/optimizer"
)

// TestTracedQuerySpansMatchNodeCosts is the integration check of the
// tracing contract: a traced query produces one JSONL span per plan node
// (plus the query root), and every span's probe totals equal the NodeCost
// the executor printed for that operator.
func TestTracedQuerySpansMatchNodeCosts(t *testing.T) {
	db := newFacultyDB(t, 40, false)
	if err := db.DeclareChronOrder(rankIC(false)); err != nil {
		t.Fatal(err)
	}
	tree := optimize(t, db, superstarQuery(), optimizer.Options{ICs: db.ChronOrders()})

	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	res, stats, err := Run(db, tree, Options{VerifyOrder: true, Tracer: tr, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cardinality() == 0 {
		t.Fatal("empty result; workload too thin to exercise tracing")
	}

	spans := tr.Spans()
	// One span per plan node plus the query root.
	if got, want := len(spans), len(stats.Nodes)+1; got != want {
		t.Fatalf("spans = %d, want %d (one per NodeCost plus the root):\n%s",
			got, want, tr.Tree())
	}

	// Every non-root span carries the probe of exactly one NodeCost, and
	// node order matches post-order execution order.
	var nodeIdx int
	for _, s := range spans {
		if s.ParentID == 0 {
			if s.Node.OutRows != int64(res.Cardinality()) {
				t.Errorf("root span out_rows = %d, result = %d", s.Node.OutRows, res.Cardinality())
			}
			total := stats.Total()
			if s.Probe != total {
				t.Errorf("root probe %s != stats total %s", s.Probe.String(), total.String())
			}
			continue
		}
	}
	// Spans are recorded in begin (pre-order) time; NodeCosts in finish
	// (post-order) time. Match them by (label, probe) multiset instead.
	type key struct {
		label string
		probe string
		out   int64
	}
	want := map[key]int{}
	for _, n := range stats.Nodes {
		want[key{n.Label, n.Probe.String(), n.OutRows}]++
	}
	for _, s := range spans {
		if s.ParentID == 0 {
			continue
		}
		k := key{s.Label, s.Probe.String(), s.Node.OutRows}
		if want[k] == 0 {
			t.Errorf("span %q with probe %s matches no NodeCost", s.Label, s.Probe.String())
			continue
		}
		want[k]--
		nodeIdx++
	}
	if nodeIdx != len(stats.Nodes) {
		t.Errorf("matched %d spans to %d NodeCosts", nodeIdx, len(stats.Nodes))
	}

	// The JSONL export has one well-formed line per span with consistent
	// probe totals.
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	lines := 0
	for sc.Scan() {
		var m struct {
			Label string `json:"label"`
			Probe struct {
				Comparisons int64 `json:"comparisons"`
				Workspace   int64 `json:"workspace"`
			} `json:"probe"`
		}
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %d: %v", lines+1, err)
		}
		lines++
	}
	if lines != len(spans) {
		t.Errorf("JSONL lines = %d, spans = %d", lines, len(spans))
	}

	// The registry picked up the run.
	if got := reg.Counter("tdb_queries_total", "").Value(); got != 1 {
		t.Errorf("tdb_queries_total = %d", got)
	}
	if got := reg.Counter("tdb_rows_out_total", "").Value(); got != int64(res.Cardinality()) {
		t.Errorf("tdb_rows_out_total = %d, result = %d", got, res.Cardinality())
	}
	if got := reg.Histogram("tdb_operator_workspace_tuples", "", nil).Count(); got != uint64(len(stats.Nodes)) {
		t.Errorf("workspace histogram samples = %d, nodes = %d", got, len(stats.Nodes))
	}
	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, wantLine := range []string{
		"# TYPE tdb_queries_total counter",
		"# TYPE tdb_query_duration_seconds histogram",
		"tdb_query_duration_seconds_count 1",
	} {
		if !strings.Contains(prom.String(), wantLine) {
			t.Errorf("exposition missing %q", wantLine)
		}
	}
}

// TestTracedStreamJoinRecordsCurve checks that a traced stream operator's
// span carries a state(t) curve consistent with its probe.
func TestTracedStreamJoinRecordsCurve(t *testing.T) {
	db := newFacultyDB(t, 60, false)
	if err := db.DeclareChronOrder(rankIC(false)); err != nil {
		t.Fatal(err)
	}
	tree := optimize(t, db, superstarQuery(), optimizer.Options{ICs: db.ChronOrders()})

	tr := obs.NewTracer()
	_, stats, err := Run(db, tree, Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	var curved int
	for _, s := range tr.Spans() {
		if len(s.Curve) == 0 {
			continue
		}
		curved++
		var maxState int64
		for _, p := range s.Curve {
			if p.State > maxState {
				maxState = p.State
			}
		}
		if maxState > s.Probe.StateHighWater {
			t.Errorf("span %q curve peak %d exceeds probe high-water %d",
				s.Label, maxState, s.Probe.StateHighWater)
		}
	}
	if curved == 0 {
		t.Fatalf("no span recorded a state curve; stats:\n%s\ntree:\n%s", stats.String(), tr.Tree())
	}
}

// TestUntracedRunUnchanged pins the nil-hook discipline end to end: running
// with no tracer and no registry must produce identical results and stats.
func TestUntracedRunUnchanged(t *testing.T) {
	db := newFacultyDB(t, 40, false)
	tree := optimize(t, db, superstarQuery(), optimizer.Options{})

	resA, statsA, err := Run(db, tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resB, statsB, err := Run(db, tree, Options{Tracer: obs.NewTracer(), Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "traced vs untraced", resA, resB)
	ta, tb := statsA.Total(), statsB.Total()
	if ta != tb {
		t.Errorf("stats diverge: %s vs %s", ta.String(), tb.String())
	}
}
