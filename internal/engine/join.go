package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"tdb/internal/algebra"
	"tdb/internal/baseline"
	"tdb/internal/catalog"
	"tdb/internal/core"
	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/obs"
	"tdb/internal/optimizer"
	"tdb/internal/relation"
)

func (ex *executor) evalJoin(n *algebra.Join) (*result, error) {
	l, err := ex.eval(n.L)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(n.R)
	if err != nil {
		return nil, err
	}
	outSchema := relation.Concat(l.schema, r.schema, "", "")

	if !ex.opt.ForceNestedLoop && n.Kind != algebra.KindTheta {
		if !ex.opt.CostBased || ex.chooseStream(n, l, r) {
			res, cost, err := ex.streamJoin(n, l, r)
			if err != nil {
				return nil, err
			}
			cost.Label = n.Label()
			ex.stats.add(*cost)
			return &result{schema: outSchema, rows: res}, nil
		}
	}

	// Conventional path: the paper's Section 3 lists nested-loop, merge
	// and hash join as the strategies for the equi-join; hash is the
	// default, merge selectable, nested loop the fallback.
	lk, rk, residual := equiKeys(n.Pred, l.schema, r.schema)
	if len(lk) > 0 && !ex.opt.ForceNoHash {
		var rows []relation.Row
		var cost *NodeCost
		if ex.opt.PreferMergeJoin {
			rows, cost, err = ex.sortMergeJoin(l, r, lk, rk, residual)
		} else {
			rows, cost, err = ex.hashJoin(l, r, lk, rk, residual)
		}
		if err != nil {
			return nil, err
		}
		cost.Label = n.Label()
		ex.stats.add(*cost)
		return &result{schema: outSchema, rows: rows}, nil
	}
	pred, err := compilePairPred(n.Pred, l.schema, r.schema)
	if err != nil {
		return nil, err
	}
	rows, cost, err := ex.nestedLoopJoin(l, r, pred)
	if err != nil {
		return nil, err
	}
	cost.Label = n.Label()
	ex.stats.add(*cost)
	return &result{schema: outSchema, rows: rows}, nil
}

// chooseStream consults the Section 6 cost model over the materialized
// inputs: statistics are collected from the actual intermediate lifespans
// (cheap, one pass) and the stream plan is taken only when its estimated
// cost, including any sorting, beats the nested loop.
func (ex *executor) chooseStream(n *algebra.Join, l, r *result) bool {
	lspan, err := spanAccessor(n.LSpan, l.schema)
	if err != nil {
		return true // let the stream path surface the error
	}
	rspan, err := spanAccessor(n.RSpan, r.schema)
	if err != nil {
		return true
	}
	statsOf := func(rows []relation.Row, span core.Span[relation.Row]) *catalog.Stats {
		spans := make([]interval.Interval, len(rows))
		for i, row := range rows {
			spans[i] = span(row)
		}
		st := catalog.FromSpans(spans)
		id := func(iv interval.Interval) interval.Interval { return iv }
		st.SortedTS = relation.SortedSpans(spans, id, relation.Order{relation.TSAsc})
		st.SortedTE = relation.SortedSpans(spans, id, relation.Order{relation.TEAsc})
		return st
	}
	sx, sy := statsOf(l.rows, lspan), statsOf(r.rows, rspan)
	var est optimizer.JoinEstimate
	switch n.Kind {
	case algebra.KindOverlap:
		est = optimizer.EstimateOverlapJoin(sx, sy)
	case algebra.KindBefore:
		// The before-join's output is near-Cartesian either way; the
		// sorted variant always wins on inner-scan avoidance.
		return true
	default:
		est = optimizer.EstimateContainJoin(sx, sy)
	}
	return est.UseStream()
}

// streamJoin dispatches a recognized temporal join to the Section 4 stream
// algorithms, sorting each side by the required ordering of Table 1/2.
func (ex *executor) streamJoin(n *algebra.Join, l, r *result) ([]relation.Row, *NodeCost, error) {
	lspan, err := spanAccessor(n.LSpan, l.schema)
	if err != nil {
		return nil, nil, err
	}
	rspan, err := spanAccessor(n.RSpan, r.schema)
	if err != nil {
		return nil, nil, err
	}
	cost := &NodeCost{}
	opt := core.Options{Probe: &cost.Probe, Policy: ex.opt.Policy,
		VerifyOrder: ex.opt.VerifyOrder, Sampler: ex.cur.Sampler()}

	var lOrder, rOrder relation.Order
	switch n.Kind {
	case algebra.KindContain:
		cost.Algorithm = "stream contain-join [TS↑,TS↑]"
		lOrder, rOrder = relation.Order{relation.TSAsc}, relation.Order{relation.TSAsc}
	case algebra.KindContained:
		cost.Algorithm = "stream contain-join [TS↑,TS↑] (sides swapped)"
		lOrder, rOrder = relation.Order{relation.TSAsc}, relation.Order{relation.TSAsc}
	case algebra.KindOverlap:
		cost.Algorithm = "stream overlap-join [TS↑,TS↑]"
		lOrder, rOrder = relation.Order{relation.TSAsc}, relation.Order{relation.TSAsc}
	case algebra.KindBefore:
		cost.Algorithm = "before-join [TE↑; inner sorted TS↑]"
		lOrder, rOrder = relation.Order{relation.TEAsc}, relation.Order{relation.TSAsc}
	default:
		return nil, nil, fmt.Errorf("engine: unhandled join kind %v", n.Kind)
	}
	lw, err := ex.establishOrder(l.rows, lspan, lOrder, l.schema, cost)
	if err != nil {
		return nil, nil, err
	}
	rw, err := ex.establishOrder(r.rows, rspan, rOrder, r.schema, cost)
	if err != nil {
		return nil, nil, err
	}

	if plan := ex.planParallel(n.Kind, false, lw, rw, cost); plan != nil {
		var rows []relation.Row
		if ex.opt.RowExec {
			rows, err = ex.parallelJoin(n.Kind, lw, rw, plan, cost)
		} else {
			// planParallel only accepts sweep-policy joins, so the batch
			// kernels are always eligible here.
			cost.Notes = append(cost.Notes, "columnar batch kernels")
			rows, err = ex.parallelJoinColumnar(n.Kind, lw, rw, plan, cost)
		}
		if err != nil {
			return nil, nil, err
		}
		cost.Algorithm += fmt.Sprintf(" ×%d", len(plan.ranges))
		cost.OutRows = int64(len(rows))
		return rows, cost, nil
	}

	// The serial stream join is the governed operator: its retained state
	// (the Table 1–2 spanning sets) is what statistics drift can blow past
	// the admission ceiling. The parallel path above cancels on error
	// instead; the semijoin scans are buffers-only and cannot breach.
	if ex.opt.GovernWorkspace {
		if bound := ex.governBound(n.Kind, n.L, n.R, cost); bound > 0 {
			opt.Limit = int64(bound)
		}
	}

	// Columnar batch path (the default): shred the sorted inputs to flat
	// endpoint columns, sweep with the batch kernels, materialize output
	// rows once from the matched index pairs. The row path below remains
	// the reference implementation (Options.RowExec) and still serves the
	// λ read policy — whose global read interleaving observes per-row
	// stream state the batch kernels do not model — and the before-join.
	if !ex.opt.RowExec && ex.opt.Policy == core.ReadSweep && n.Kind != algebra.KindBefore {
		cost.Notes = append(cost.Notes, "columnar batch kernels")
		var rows []relation.Row
		pairs, err := columnarJoinPairs(n.Kind, colsOfSpanned(lw), colsOfSpanned(rw), opt)
		if err != nil {
			if opt.Limit <= 0 || !errors.Is(err, core.ErrWorkspaceBreach) {
				return nil, nil, err
			}
			// Governed degradation, identically to the row path: the batch
			// kernel honors the same admission ceiling and breaches at the
			// same state append.
			rows = ex.governedJoinFallback(n.Kind, lw, rw, opt.Limit, cost)
		} else {
			rows = materializeJoin(lw, rw, pairs)
		}
		cost.OutRows = int64(len(rows))
		return rows, cost, nil
	}

	var rows []relation.Row
	emitLR := func(a, b spanned) { rows = append(rows, relation.ConcatRows(a.row, b.row)) }
	emitRL := func(a, b spanned) { rows = append(rows, relation.ConcatRows(b.row, a.row)) }

	switch n.Kind {
	case algebra.KindContain:
		err = core.ContainJoinTSTS(wrappedStream(lw), wrappedStream(rw), spannedSpan, opt, emitLR)
	case algebra.KindContained:
		// Left during right ⇔ Contain-join(right, left).
		err = core.ContainJoinTSTS(wrappedStream(rw), wrappedStream(lw), spannedSpan, opt, emitRL)
	case algebra.KindOverlap:
		err = core.OverlapJoin(wrappedStream(lw), wrappedStream(rw), spannedSpan, opt, emitLR)
	case algebra.KindBefore:
		err = core.BeforeJoinSorted(wrappedStream(lw), rw, spannedSpan, opt, emitLR)
	}
	if err != nil {
		if opt.Limit <= 0 || !errors.Is(err, core.ErrWorkspaceBreach) {
			return nil, nil, err
		}
		// Governed degradation: the operator overran the predicted ceiling,
		// so its partial output is discarded and the node re-evaluated by
		// the baseline band scan, whose workspace cannot grow with the
		// (mispredicted) lifespan concurrency.
		rows = ex.governedJoinFallback(n.Kind, lw, rw, opt.Limit, cost)
	}
	cost.OutRows = int64(len(rows))
	return rows, cost, nil
}

// governBound derives the workspace admission ceiling of a serial stream
// join from the *catalog* statistics of its base-relation inputs — the
// optimizer's prediction, deliberately not remeasured from the materialized
// rows, so drift between catalog and data is what the governor detects.
// Returns 0 (ungoverned, with an explain note) for derived inputs, missing
// statistics, or operator kinds whose Tables 1–3 entry is unbounded.
func (ex *executor) governBound(kind algebra.TemporalKind, l, r algebra.Expr, cost *NodeCost) float64 {
	ln, rn := baseRelName(l), baseRelName(r)
	if ln == "" || rn == "" {
		cost.Notes = append(cost.Notes, "governor: derived input, no catalog bound; ungoverned")
		return 0
	}
	sx, sy := ex.db.Stats(ln), ex.db.Stats(rn)
	if sx == nil || sy == nil {
		cost.Notes = append(cost.Notes, "governor: missing catalog statistics; ungoverned")
		return 0
	}
	est := optimizer.EstimateStanding(kind, false, sx, sy)
	if !est.Bounded {
		cost.Notes = append(cost.Notes, "governor: "+est.Note+"; ungoverned")
		return 0
	}
	cost.Notes = append(cost.Notes, fmt.Sprintf("governor: workspace ceiling %.0f tuples (%s)", est.Bound, est.Note))
	return est.Bound
}

// baseRelName resolves the base relation beneath an optional Select, or ""
// when the input is derived and catalog statistics do not describe it.
func baseRelName(e algebra.Expr) string {
	switch n := e.(type) {
	case *algebra.Scan:
		return n.Relation
	case *algebra.Select:
		return baseRelName(n.Input)
	}
	return ""
}

// governedJoinFallback re-evaluates a breached join with the baseline
// sort-merge band scan over the already-materialized (and sorted) inputs,
// resetting the probe so the cost record reflects the algorithm that
// actually produced the output. The breach itself is preserved as a note
// and counted in tdb_governor_fallbacks_total.
func (ex *executor) governedJoinFallback(kind algebra.TemporalKind, lw, rw []spanned, limit int64, cost *NodeCost) []relation.Row {
	breached := cost.Probe.Workspace()
	cost.Probe = metrics.Probe{}
	var theta func(x, y interval.Interval) bool
	switch kind {
	case algebra.KindContain:
		theta = func(x, y interval.Interval) bool { return x.ContainsInterval(y) }
	case algebra.KindContained:
		theta = func(x, y interval.Interval) bool { return y.ContainsInterval(x) }
	default: // KindOverlap — before/θ are never governed (unbounded entry)
		theta = func(x, y interval.Interval) bool { return x.Intersects(y) }
	}
	var rows []relation.Row
	baseline.SortMergeJoin(lw, rw, spannedSpan, theta, &cost.Probe,
		func(a, b spanned) { rows = append(rows, relation.ConcatRows(a.row, b.row)) })
	cost.Algorithm += " → baseline sort-merge (governed)"
	cost.Notes = append(cost.Notes, fmt.Sprintf(
		"governor: workspace %d breached ceiling %d; degraded to baseline sort-merge", breached, limit))
	ex.opt.Registry.Counter("tdb_governor_fallbacks_total",
		"workspace-governor breaches that degraded a query").Inc()
	ex.opt.Events.Emit(obs.EventGovernor, cost.Label, map[string]string{
		"workspace": fmt.Sprintf("%d", breached),
		"ceiling":   fmt.Sprintf("%d", limit),
		"algorithm": cost.Algorithm,
	})
	return rows
}

// nestedLoopJoin polls the interrupt hook per pair block, not per outer
// row: a selective theta join can touch millions of pairs from a few
// hundred outer rows, and cancellation latency follows the pair count.
func (ex *executor) nestedLoopJoin(l, r *result, pred pairPred) ([]relation.Row, *NodeCost, error) {
	cost := &NodeCost{Algorithm: "nested-loop join"}
	var rows []relation.Row
	pairs := 0
	for _, lr := range l.rows {
		cost.Probe.IncReadLeft()
		for _, rr := range r.rows {
			if pairs%interruptEvery == 0 {
				if err := ex.checkInterrupt(); err != nil {
					return nil, nil, err
				}
			}
			pairs++
			cost.Probe.IncReadRight()
			cost.Probe.IncComparisons(1)
			if pred(lr, rr) {
				rows = append(rows, relation.ConcatRows(lr, rr))
			}
		}
		cost.Probe.IncPasses()
	}
	cost.Probe.IncEmitted(int64(len(rows)))
	cost.OutRows = int64(len(rows))
	return rows, cost, nil
}

func hashKey(row relation.Row, cols []int) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(row[c].String())
	}
	return b.String()
}

func (ex *executor) hashJoin(l, r *result, lk, rk []int, residual algebra.Predicate) ([]relation.Row, *NodeCost, error) {
	cost := &NodeCost{Algorithm: "hash equi-join"}
	res, err := compilePairPred(residual, l.schema, r.schema)
	if err != nil {
		return nil, nil, err
	}
	// Build on the smaller side; probe with the larger.
	buildLeft := len(l.rows) <= len(r.rows)
	build, probeSide := l, r
	bk, pk := lk, rk
	if !buildLeft {
		build, probeSide = r, l
		bk, pk = rk, lk
	}
	table := make(map[string][]relation.Row, len(build.rows))
	for _, row := range build.rows {
		cost.Probe.IncReadLeft()
		cost.Probe.StateAdd(1)
		k := hashKey(row, bk)
		table[k] = append(table[k], row)
	}
	var rows []relation.Row
	for i, row := range probeSide.rows {
		if i%interruptEvery == 0 {
			if err := ex.checkInterrupt(); err != nil {
				return nil, nil, err
			}
		}
		cost.Probe.IncReadRight()
		for _, m := range table[hashKey(row, pk)] {
			cost.Probe.IncComparisons(1)
			lr, rr := m, row
			if !buildLeft {
				lr, rr = row, m
			}
			if res(lr, rr) {
				rows = append(rows, relation.ConcatRows(lr, rr))
			}
		}
	}
	cost.Probe.StateRemove(int64(len(build.rows)))
	cost.Probe.IncEmitted(int64(len(rows)))
	cost.OutRows = int64(len(rows))
	return rows, cost, nil
}

// sortMergeJoin is the classic merge join of Section 4.1's example: both
// sides are sorted on the key columns and merged, buffering one right key
// group at a time.
func (ex *executor) sortMergeJoin(l, r *result, lk, rk []int, residual algebra.Predicate) ([]relation.Row, *NodeCost, error) {
	cost := &NodeCost{Algorithm: "sort-merge equi-join"}
	res, err := compilePairPred(residual, l.schema, r.schema)
	if err != nil {
		return nil, nil, err
	}
	cmpKeys := func(a relation.Row, ak []int, b relation.Row, bk []int) int {
		for i := range ak {
			if c := a[ak[i]].Compare(b[bk[i]]); c != 0 {
				return c
			}
		}
		return 0
	}
	ls := append([]relation.Row{}, l.rows...)
	rs := append([]relation.Row{}, r.rows...)
	sort.SliceStable(ls, func(i, j int) bool { return cmpKeys(ls[i], lk, ls[j], lk) < 0 })
	sort.SliceStable(rs, func(i, j int) bool { return cmpKeys(rs[i], rk, rs[j], rk) < 0 })
	cost.SortedRows = int64(len(ls) + len(rs))

	var rows []relation.Row
	i, j := 0, 0
	steps := 0
	for i < len(ls) && j < len(rs) {
		if steps%interruptEvery == 0 {
			if err := ex.checkInterrupt(); err != nil {
				return nil, nil, err
			}
		}
		steps++
		cost.Probe.IncComparisons(1)
		switch c := cmpKeys(ls[i], lk, rs[j], rk); {
		case c < 0:
			cost.Probe.IncReadLeft()
			i++
		case c > 0:
			cost.Probe.IncReadRight()
			j++
		default:
			// Buffer the right group and join every equal-key left row.
			g := j
			for g < len(rs) && cmpKeys(rs[g], rk, rs[j], rk) == 0 {
				g++
			}
			cost.Probe.StateAdd(int64(g - j))
			for ; i < len(ls) && cmpKeys(ls[i], lk, rs[j], rk) == 0; i++ {
				cost.Probe.IncReadLeft()
				for k := j; k < g; k++ {
					cost.Probe.IncComparisons(1)
					if res(ls[i], rs[k]) {
						rows = append(rows, relation.ConcatRows(ls[i], rs[k]))
					}
				}
			}
			cost.Probe.StateRemove(int64(g - j))
			for ; j < g; j++ {
				cost.Probe.IncReadRight()
			}
		}
	}
	cost.Probe.IncEmitted(int64(len(rows)))
	cost.OutRows = int64(len(rows))
	return rows, cost, nil
}

func (ex *executor) evalSemijoin(n *algebra.Semijoin) (*result, error) {
	// A detected self semijoin evaluates its (shared) input once and runs
	// the single-scan, single-state-tuple algorithm of Figure 7 — the
	// right subtree is never executed.
	if n.Self && !ex.opt.ForceNestedLoop {
		return ex.evalSelfSemijoin(n)
	}
	l, err := ex.eval(n.L)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(n.R)
	if err != nil {
		return nil, err
	}

	if !ex.opt.ForceNestedLoop && n.Kind != algebra.KindTheta {
		rows, cost, err := ex.streamSemijoin(n, l, r)
		if err != nil {
			return nil, err
		}
		cost.Label = n.Label()
		ex.stats.add(*cost)
		return &result{schema: l.schema, rows: rows}, nil
	}

	pred, err := compilePairPred(n.Pred, l.schema, r.schema)
	if err != nil {
		return nil, err
	}
	cost := &NodeCost{Label: n.Label(), Algorithm: "nested-loop semijoin"}
	var rows []relation.Row
	pairs := 0
	for _, lr := range l.rows {
		cost.Probe.IncReadLeft()
		for _, rr := range r.rows {
			if pairs%interruptEvery == 0 {
				if err := ex.checkInterrupt(); err != nil {
					return nil, err
				}
			}
			pairs++
			cost.Probe.IncReadRight()
			cost.Probe.IncComparisons(1)
			if pred(lr, rr) {
				rows = append(rows, lr)
				break
			}
		}
		cost.Probe.IncPasses()
	}
	cost.Probe.IncEmitted(int64(len(rows)))
	cost.OutRows = int64(len(rows))
	ex.stats.add(*cost)
	return &result{schema: l.schema, rows: rows}, nil
}

func (ex *executor) evalSelfSemijoin(n *algebra.Semijoin) (*result, error) {
	l, err := ex.eval(n.L)
	if err != nil {
		return nil, err
	}
	lspan, err := spanAccessor(n.LSpan, l.schema)
	if err != nil {
		return nil, err
	}
	cost := &NodeCost{Label: n.Label()}
	opt := core.Options{Probe: &cost.Probe, VerifyOrder: ex.opt.VerifyOrder, Sampler: ex.cur.Sampler()}

	var order relation.Order
	switch n.Kind {
	case algebra.KindContained:
		cost.Algorithm = "single-scan contained-semijoin(X,X) (Fig 7)"
		order = relation.Order{relation.TSAsc, relation.TEAsc}
	case algebra.KindContain:
		cost.Algorithm = "single-scan contain-semijoin(X,X) (TS↓)"
		order = relation.Order{relation.TSDesc, relation.TEDesc}
	default:
		return nil, fmt.Errorf("engine: self semijoin of kind %v", n.Kind)
	}
	lw, err := ex.establishOrder(l.rows, lspan, order, l.schema, cost)
	if err != nil {
		return nil, err
	}

	var rows []relation.Row
	emit := func(s spanned) { rows = append(rows, s.row) }
	switch n.Kind {
	case algebra.KindContained:
		err = core.ContainedSelfSemijoin(wrappedStream(lw), spannedSpan, opt, emit)
	case algebra.KindContain:
		err = core.ContainSelfSemijoin(wrappedStream(lw), spannedSpan, opt, emit)
	}
	if err != nil {
		return nil, err
	}
	cost.OutRows = int64(len(rows))
	ex.stats.add(*cost)
	return &result{schema: l.schema, rows: rows}, nil
}

func (ex *executor) streamSemijoin(n *algebra.Semijoin, l, r *result) ([]relation.Row, *NodeCost, error) {
	lspan, err := spanAccessor(n.LSpan, l.schema)
	if err != nil {
		return nil, nil, err
	}
	rspan, err := spanAccessor(n.RSpan, r.schema)
	if err != nil {
		return nil, nil, err
	}
	cost := &NodeCost{}
	opt := core.Options{Probe: &cost.Probe, Policy: ex.opt.Policy,
		VerifyOrder: ex.opt.VerifyOrder, Sampler: ex.cur.Sampler()}

	var lOrder, rOrder relation.Order
	switch n.Kind {
	case algebra.KindContained:
		cost.Algorithm = "stream contained-semijoin [TE↑,TS↑] (Fig 6)"
		lOrder, rOrder = relation.Order{relation.TEAsc}, relation.Order{relation.TSAsc}
	case algebra.KindContain:
		cost.Algorithm = "stream contain-semijoin [TS↑,TE↑] (Fig 6)"
		lOrder, rOrder = relation.Order{relation.TSAsc}, relation.Order{relation.TEAsc}
	case algebra.KindOverlap:
		cost.Algorithm = "stream overlap-semijoin [TS↑,TS↑]"
		lOrder, rOrder = relation.Order{relation.TSAsc}, relation.Order{relation.TSAsc}
	case algebra.KindBefore:
		cost.Algorithm = "before-semijoin (sort-independent)"
	default:
		return nil, nil, fmt.Errorf("engine: unhandled semijoin kind %v", n.Kind)
	}
	lw, rw := wrap(l.rows, lspan), wrap(r.rows, rspan)
	if lOrder != nil {
		if lw, err = ex.establishOrder(l.rows, lspan, lOrder, l.schema, cost); err != nil {
			return nil, nil, err
		}
		if rw, err = ex.establishOrder(r.rows, rspan, rOrder, r.schema, cost); err != nil {
			return nil, nil, err
		}
		if plan := ex.planParallel(n.Kind, true, lw, rw, cost); plan != nil {
			var rows []relation.Row
			if ex.opt.RowExec {
				rows, err = ex.parallelSemijoin(n.Kind, lw, rw, plan, cost)
			} else {
				cost.Notes = append(cost.Notes, "columnar batch kernels")
				rows, err = ex.parallelSemijoinColumnar(n.Kind, lw, rw, plan, cost)
			}
			if err != nil {
				return nil, nil, err
			}
			cost.Algorithm += fmt.Sprintf(" ×%d", len(plan.ranges))
			cost.OutRows = int64(len(rows))
			return rows, cost, nil
		}

		// Columnar batch path (the default) for the sorted semijoin scans.
		// The Figure 6 scans never consult the read policy, so unlike the
		// join there is no λ carve-out; the before-semijoin (lOrder == nil)
		// and Options.RowExec take the row reference path below.
		if !ex.opt.RowExec {
			cost.Notes = append(cost.Notes, "columnar batch kernels")
			idxs, err := columnarSemijoinIdx(n.Kind, colsOfSpanned(lw), colsOfSpanned(rw), opt)
			if err != nil {
				return nil, nil, err
			}
			var rows []relation.Row
			for _, i := range idxs {
				rows = append(rows, lw[i].row)
			}
			cost.OutRows = int64(len(rows))
			return rows, cost, nil
		}
	}

	var rows []relation.Row
	emit := func(s spanned) { rows = append(rows, s.row) }

	switch n.Kind {
	case algebra.KindContained:
		err = core.ContainedSemijoin(wrappedStream(lw), wrappedStream(rw), spannedSpan, opt, emit)
	case algebra.KindContain:
		err = core.ContainSemijoin(wrappedStream(lw), wrappedStream(rw), spannedSpan, opt, emit)
	case algebra.KindOverlap:
		err = core.OverlapSemijoin(wrappedStream(lw), wrappedStream(rw), spannedSpan, opt, emit)
	case algebra.KindBefore:
		err = core.BeforeSemijoin(wrappedStream(lw), wrappedStream(rw), spannedSpan, opt, emit)
	}
	if err != nil {
		return nil, nil, err
	}
	cost.OutRows = int64(len(rows))
	return rows, cost, nil
}
