package engine

import (
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/value"
)

func salarySchema() *relation.Schema {
	return relation.MustSchema([]relation.Column{
		{Name: "Dept", Kind: value.KindString},
		{Name: "Emp", Kind: value.KindString},
		{Name: "Salary", Kind: value.KindInt},
		{Name: "ValidFrom", Kind: value.KindTime},
		{Name: "ValidTo", Kind: value.KindTime},
	}, 3, 4)
}

func salaryDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	rel := relation.New("Emp", salarySchema())
	add := func(dept, emp string, sal int64, from, to interval.Time) {
		rel.MustInsert(relation.Row{
			value.String_(dept), value.String_(emp), value.Int(sal),
			value.TimeVal(from), value.TimeVal(to),
		})
	}
	add("cs", "ada", 100, 0, 10)
	add("cs", "alan", 80, 0, 10)
	add("ee", "grace", 90, 0, 10)
	add("ee", "edith", 120, 5, 15)
	add("ee", "edsger", 60, 5, 15)
	db.MustRegister(rel)
	return db
}

// The Figure 4 processor as an engine operator: per-department sums.
func TestAggregateSumCountMinMax(t *testing.T) {
	db := salaryDB(t)
	q := &algebra.Aggregate{
		Input:   &algebra.Scan{Relation: "Emp", As: "e"},
		GroupBy: []algebra.ColRef{{Var: "e", Col: "Dept"}},
		Terms: []algebra.AggTerm{
			{Kind: algebra.AggSum, Of: algebra.ColRef{Var: "e", Col: "Salary"}, As: "total"},
			{Kind: algebra.AggCount, As: "n"},
			{Kind: algebra.AggMin, Of: algebra.ColRef{Var: "e", Col: "Salary"}, As: "lo"},
			{Kind: algebra.AggMax, Of: algebra.ColRef{Var: "e", Col: "Salary"}, As: "hi"},
		},
	}
	out, stats, err := Run(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Cardinality() != 2 {
		t.Fatalf("groups = %d\n%s", out.Cardinality(), out)
	}
	want := map[string][4]int64{
		"cs": {180, 2, 80, 100},
		"ee": {270, 3, 60, 120},
	}
	for _, r := range out.Rows {
		w := want[r[0].AsString()]
		if r[1].AsInt() != w[0] || r[2].AsInt() != w[1] || r[3].AsInt() != w[2] || r[4].AsInt() != w[3] {
			t.Errorf("group %s: got %v, want %v", r[0], r, w)
		}
	}
	if out.Schema.Temporal() {
		t.Error("aggregate result must be snapshot")
	}
	// Deterministic group order (sorted by key).
	if out.Rows[0][0].AsString() != "cs" {
		t.Error("groups not ordered")
	}
	// State = one accumulator per group.
	if stats.Nodes[len(stats.Nodes)-1].Probe.StateHighWater != 2 {
		t.Errorf("aggregate state %d, want 2", stats.Nodes[len(stats.Nodes)-1].Probe.StateHighWater)
	}
}

// Aggregation over a temporal selection: total payroll at a chronon.
func TestAggregateOverTimeslicePredicate(t *testing.T) {
	db := salaryDB(t)
	col := algebra.Column
	q := &algebra.Aggregate{
		Input: &algebra.Select{
			Input: &algebra.Scan{Relation: "Emp", As: "e"},
			Pred: algebra.Predicate{Atoms: []algebra.Atom{
				{L: col("e", "ValidFrom"), Op: algebra.LE, R: algebra.Const(value.TimeVal(7))},
				{L: col("e", "ValidTo"), Op: algebra.GT, R: algebra.Const(value.TimeVal(7))},
			}},
		},
		Terms: []algebra.AggTerm{
			{Kind: algebra.AggSum, Of: algebra.ColRef{Var: "e", Col: "Salary"}, As: "payroll"},
		},
	}
	out, _, err := Run(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Cardinality() != 1 || out.Rows[0][0].AsInt() != 450 {
		t.Fatalf("payroll at t=7: %v", out)
	}
}

func TestAggregateErrors(t *testing.T) {
	db := salaryDB(t)
	bad := &algebra.Aggregate{
		Input:   &algebra.Scan{Relation: "Emp", As: "e"},
		GroupBy: []algebra.ColRef{{Var: "e", Col: "Nope"}},
		Terms:   []algebra.AggTerm{{Kind: algebra.AggCount, As: "n"}},
	}
	if _, _, err := Run(db, bad, Options{}); err == nil {
		t.Error("unknown group column accepted")
	}
	bad2 := &algebra.Aggregate{
		Input: &algebra.Scan{Relation: "Emp", As: "e"},
		Terms: []algebra.AggTerm{{Kind: algebra.AggSum, Of: algebra.ColRef{Var: "e", Col: "Nope"}, As: "x"}},
	}
	if _, _, err := Run(db, bad2, Options{}); err == nil {
		t.Error("unknown aggregate column accepted")
	}
}

// Grand total: no group-by columns at all.
func TestAggregateNoGroups(t *testing.T) {
	db := salaryDB(t)
	q := &algebra.Aggregate{
		Input: &algebra.Scan{Relation: "Emp", As: "e"},
		Terms: []algebra.AggTerm{{Kind: algebra.AggCount, As: "n"}},
	}
	out, _, err := Run(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Cardinality() != 1 || out.Rows[0][0].AsInt() != 5 {
		t.Fatalf("count(*): %v", out)
	}
}

func TestTimeslice(t *testing.T) {
	db := salaryDB(t)
	rel, err := db.Relation("Emp")
	if err != nil {
		t.Fatal(err)
	}
	slice, err := relation.Timeslice(rel, 12)
	if err != nil {
		t.Fatal(err)
	}
	if slice.Cardinality() != 2 { // edith and edsger, [5,15)
		t.Fatalf("timeslice at 12: %v", slice)
	}
	if _, err := relation.Timeslice(slice, 12); err != nil {
		t.Errorf("timeslice of timeslice: %v", err)
	}
	snap := relation.New("S", relation.MustSchema([]relation.Column{{Name: "A", Kind: value.KindInt}}, -1, -1))
	if _, err := relation.Timeslice(snap, 0); err == nil {
		t.Error("timeslice of snapshot accepted")
	}
	// Boundary semantics: half-open lifespans.
	if s, _ := relation.Timeslice(rel, 10); s.Cardinality() != 2 {
		t.Errorf("timeslice at 10 (cs rows end): %d rows, want 2", s.Cardinality())
	}
}
