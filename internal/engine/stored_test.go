package engine

import (
	"testing"

	"tdb/internal/optimizer"
	"tdb/internal/workload"
)

// The paper's Section 3 observation: the Superstar query references
// Faculty three times, so a conventional evaluation scans the stored
// relation three times. With a one-frame buffer pool every scan pays the
// full page count; with a pool covering the relation, only the first does.
func TestStoredScansCountPasses(t *testing.T) {
	run := func(poolPages int) (pagesTotal, pagesFile int64) {
		db := NewDB()
		db.MustRegister(workload.Faculty(workload.FacultyConfig{N: 400, Seed: 31}))
		if err := db.StoreRelation("Faculty", t.TempDir(), poolPages); err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		opt, err := optimizer.Optimize(superstarQuery(), db, optimizer.Options{NoSemantic: true, NoRecognition: true})
		if err != nil {
			t.Fatal(err)
		}
		out, stats, err := Run(db, opt.Tree, Options{ForceNestedLoop: true})
		if err != nil {
			t.Fatal(err)
		}
		if out.Cardinality() == 0 {
			t.Fatal("empty result")
		}
		return stats.TotalPagesRead(), db.StoredIO("Faculty").PagesWritten
	}

	coldTotal, filePages := run(1)
	if filePages == 0 {
		t.Fatal("relation too small to occupy pages")
	}
	// Three scans, cold pool: ≈ 3× the file size in page reads.
	if coldTotal < 3*filePages {
		t.Errorf("cold pool read %d pages for 3 scans of %d-page file", coldTotal, filePages)
	}

	warmTotal, filePages2 := run(1024)
	// Warm pool: the second and third scans are served from memory.
	if warmTotal != filePages2 {
		t.Errorf("warm pool read %d pages, want exactly the file size %d", warmTotal, filePages2)
	}
}
