package engine

// Columnar batch execution of the stream operators. The executor keeps its
// materialized intermediates as rows, but an eligible join or semijoin node
// no longer sweeps them row-at-a-time: the sorted inputs are shredded once
// into flat endpoint columns (core.Cols), the internal/core batch kernels
// sweep the columns and report matches as row indexes, and the node
// materializes output rows exactly once at the end. On the parallel path
// the shards themselves are index lists (partition.SplitIndex), so workers
// gather compact per-shard columns, sweep, and return global indexes —
// no row data moves until the coordinator materializes the merged result.
//
// The row-at-a-time operators remain the reference implementation,
// selectable with Options.RowExec; the λ read policy and the before-join
// run on it unconditionally (the policy observes per-row stream state the
// batch kernels do not model, and before pairs across arbitrary time
// distance). Output is byte-identical between the two paths — the batch
// kernels reproduce the row engines' emission order exactly, and the
// equivalence property tests in columnar_test.go hold both paths to it.

import (
	"context"
	"fmt"

	"tdb/internal/algebra"
	"tdb/internal/core"
	"tdb/internal/interval"
	"tdb/internal/partition"
	"tdb/internal/relation"
	"tdb/internal/stream"
	"tdb/internal/value"
)

// colsOfSpanned shreds wrapped rows into the flat endpoint columns the
// batch kernels sweep. One pass, two presized appends per row.
func colsOfSpanned(ws []spanned) core.Cols {
	ts := make([]interval.Time, 0, len(ws))
	te := make([]interval.Time, 0, len(ws))
	//tdb:hotpath
	for i := range ws {
		ts = append(ts, ws[i].span.Start)
		te = append(te, ws[i].span.End)
	}
	return core.Cols{TS: ts, TE: te}
}

// gatherCols builds a shard's compact local columns from its index list.
func gatherCols(c core.Cols, idx []int32) core.Cols {
	ts := make([]interval.Time, 0, len(idx))
	te := make([]interval.Time, 0, len(idx))
	//tdb:hotpath
	for _, j := range idx {
		ts = append(ts, c.TS[j])
		te = append(te, c.TE[j])
	}
	return core.Cols{TS: ts, TE: te}
}

// pairIdx is one join match as (left row, right row) indexes into the
// node's sorted inputs; materialization is deferred until the full match
// list is known.
type pairIdx struct {
	l, r int32
}

// materializeJoin builds the output rows of a join from its matched index
// pairs in one step: a single value arena sized to the exact output,
// sliced into full-capacity rows so later appends can never alias. Returns
// nil for no pairs, matching the row path's nil-on-empty convention.
func materializeJoin(lw, rw []spanned, pairs []pairIdx) []relation.Row {
	if len(pairs) == 0 {
		return nil
	}
	la := len(lw[pairs[0].l].row)
	ra := len(rw[pairs[0].r].row)
	w := la + ra
	rows := make([]relation.Row, len(pairs))
	if w == 0 {
		for i := range rows {
			rows[i] = relation.Row{}
		}
		return rows
	}
	arena := make([]value.Value, len(pairs)*w)
	//tdb:hotpath
	for i := range pairs {
		row := arena[i*w : i*w+w : i*w+w]
		copy(row, lw[pairs[i].l].row)
		copy(row[la:], rw[pairs[i].r].row)
		rows[i] = row
	}
	return rows
}

// columnarJoinPairs sweeps the sorted columns with the batch kernel for
// kind and returns (left, right) index pairs in exactly the row engine's
// emission order. The Contained kind maps onto the contain kernel with the
// sides swapped, mirroring the row dispatch.
func columnarJoinPairs(kind algebra.TemporalKind, lc, rc core.Cols, opt core.Options) ([]pairIdx, error) {
	est := lc.Len()
	if rc.Len() > est {
		est = rc.Len()
	}
	pairs := make([]pairIdx, 0, est)
	var err error
	switch kind {
	case algebra.KindContain:
		err = core.BatchContainJoinTSTS(lc, rc, opt, func(xi, yi int32) {
			pairs = append(pairs, pairIdx{l: xi, r: yi})
		})
	case algebra.KindContained:
		// Left during right ⇔ Contain-join(right, left): the kernel's X is
		// the right input, so its emissions map back crossed.
		err = core.BatchContainJoinTSTS(rc, lc, opt, func(xi, yi int32) {
			pairs = append(pairs, pairIdx{l: yi, r: xi})
		})
	case algebra.KindOverlap:
		err = core.BatchOverlapJoin(lc, rc, opt, func(xi, yi int32) {
			pairs = append(pairs, pairIdx{l: xi, r: yi})
		})
	default:
		err = fmt.Errorf("engine: columnar join of kind %v", kind)
	}
	if err != nil {
		return nil, err
	}
	return pairs, nil
}

// columnarSemijoinIdx sweeps the sorted columns with the batch semijoin
// kernel for kind and returns the qualifying left row indexes in left
// input order — the row engine's emission order.
func columnarSemijoinIdx(kind algebra.TemporalKind, lc, rc core.Cols, opt core.Options) ([]int32, error) {
	out := make([]int32, 0, lc.Len())
	emit := func(xi int32) { out = append(out, xi) }
	var err error
	switch kind {
	case algebra.KindContained:
		err = core.BatchContainedSemijoin(lc, rc, opt, emit)
	case algebra.KindContain:
		err = core.BatchContainSemijoin(lc, rc, opt, emit)
	case algebra.KindOverlap:
		err = core.BatchOverlapSemijoin(lc, rc, opt, emit)
	default:
		err = fmt.Errorf("engine: columnar semijoin of kind %v", kind)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ownedPair is a matched index pair tagged with its canonical sweep point,
// the columnar counterpart of ownedRow: the key assigns the pair to exactly
// one owning shard and keys the recombination merge.
type ownedPair struct {
	key  interval.Time
	pair pairIdx
}

func ownedPairCmp(a, b ownedPair) int {
	switch {
	case a.key < b.key:
		return -1
	case a.key > b.key:
		return 1
	}
	return 0
}

// runJoinShardColumnar runs one shard of a columnar join fan-out: gather
// the shard's local columns from its index lists, sweep with the batch
// kernel, translate emissions back to global indexes, and keep only pairs
// whose sweep point the shard's range owns — the same ownership rule as
// runJoinShard, over indexes instead of rows. The kernels run the sweep
// without cancellation polls, so cancellation is honored at shard entry;
// a canceled sibling at worst lets this shard finish its bounded sweep.
func runJoinShardColumnar(ctx context.Context, kind algebra.TemporalKind,
	lc, rc core.Cols, li, ri []int32, rng partition.Range, o core.Options) ([]ownedPair, error) {

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	lcs, rcs := gatherCols(lc, li), gatherCols(rc, ri)
	out := make([]ownedPair, 0, len(li))
	keep := func(key interval.Time, p pairIdx) {
		if rng.OwnsPoint(key) {
			out = append(out, ownedPair{key: key, pair: p})
		}
	}
	var err error
	switch kind {
	case algebra.KindContain:
		// The containee's ValidFrom owns a contain pair (the read event
		// that emits it under the sweep policy).
		err = core.BatchContainJoinTSTS(lcs, rcs, o, func(xi, yi int32) {
			keep(rcs.TS[yi], pairIdx{l: li[xi], r: ri[yi]})
		})
	case algebra.KindContained:
		// Contain kernel with the sides swapped; the containee — here the
		// left input — still owns the pair.
		err = core.BatchContainJoinTSTS(rcs, lcs, o, func(xi, yi int32) {
			keep(lcs.TS[yi], pairIdx{l: li[yi], r: ri[xi]})
		})
	case algebra.KindOverlap:
		// The later ValidFrom owns an overlap pair.
		err = core.BatchOverlapJoin(lcs, rcs, o, func(xi, yi int32) {
			key := lcs.TS[xi]
			if rcs.TS[yi] > key {
				key = rcs.TS[yi]
			}
			keep(key, pairIdx{l: li[xi], r: ri[yi]})
		})
	default:
		err = fmt.Errorf("engine: parallel columnar join of kind %v", kind)
	}
	return out, err
}

// parallelJoinColumnar executes an accepted join fan-out on the columnar
// path. The inputs are shredded to columns once; partition.SplitIndex
// replicates *indexes* into boundary-spanning shards, workers sweep their
// gathered columns and return owned (key, pair) lists, and the stable
// k-way merge recombines them in serial emission order. Only then are
// output rows materialized — shard workers never touch row data.
func (ex *executor) parallelJoinColumnar(kind algebra.TemporalKind, lw, rw []spanned, plan *parallelPlan, cost *NodeCost) ([]relation.Row, error) {
	k := len(plan.ranges)
	lc, rc := colsOfSpanned(lw), colsOfSpanned(rw)
	shL := partition.SplitIndex(lc.TS, lc.TE, plan.ranges)
	shR := partition.SplitIndex(rc.TS, rc.TE, plan.ranges)
	noteMeasuredReplication(cost, shL, shR, len(lw)+len(rw))
	outs := make([][]ownedPair, k)
	err := ex.runWorkers(shardLabels("join shard", plan.ranges), cost, func(ctx context.Context, i int, o core.Options) (int64, error) {
		var err error
		outs[i], err = runJoinShardColumnar(ctx, kind, lc, rc, shL[i], shR[i], plan.ranges[i], o)
		return int64(len(outs[i])), err
	})
	if err != nil {
		return nil, err
	}
	parts := make([]stream.Stream[ownedPair], k)
	for i := range outs {
		parts[i] = stream.FromSlice(outs[i])
	}
	merged, err := stream.Collect(stream.MergeK(ownedPairCmp, parts...))
	if err != nil {
		return nil, err
	}
	pairs := make([]pairIdx, 0, len(merged))
	//tdb:hotpath
	for i := range merged {
		pairs = append(pairs, merged[i].pair)
	}
	return materializeJoin(lw, rw, pairs), nil
}

// runSemijoinShardColumnar runs one shard of a columnar semijoin fan-out.
// The batch scans preserve left input order and the shard's index list
// ascends, so the returned global indexes ascend — each shard yields a
// sorted subsequence of the left input, ready for the positional merge.
func runSemijoinShardColumnar(ctx context.Context, kind algebra.TemporalKind,
	lc, rc core.Cols, li, ri []int32, o core.Options) ([]int32, error) {

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	lcs, rcs := gatherCols(lc, li), gatherCols(rc, ri)
	out := make([]int32, 0, len(li))
	emit := func(xi int32) { out = append(out, li[xi]) }
	var err error
	switch kind {
	case algebra.KindContained:
		err = core.BatchContainedSemijoin(lcs, rcs, o, emit)
	case algebra.KindContain:
		err = core.BatchContainSemijoin(lcs, rcs, o, emit)
	case algebra.KindOverlap:
		err = core.BatchOverlapSemijoin(lcs, rcs, o, emit)
	default:
		err = fmt.Errorf("engine: parallel columnar semijoin of kind %v", kind)
	}
	return out, err
}

// parallelSemijoinColumnar executes an accepted semijoin fan-out on the
// columnar path. The global left index doubles as the position tag of the
// row path: the position-ordered merge with adjacent dedup yields the
// qualifying left rows in global input order, and only that final list is
// materialized (by reference — semijoin output rows are the input rows).
func (ex *executor) parallelSemijoinColumnar(kind algebra.TemporalKind, lw, rw []spanned, plan *parallelPlan, cost *NodeCost) ([]relation.Row, error) {
	k := len(plan.ranges)
	lc, rc := colsOfSpanned(lw), colsOfSpanned(rw)
	shL := partition.SplitIndex(lc.TS, lc.TE, plan.ranges)
	shR := partition.SplitIndex(rc.TS, rc.TE, plan.ranges)
	noteMeasuredReplication(cost, shL, shR, len(lw)+len(rw))
	outs := make([][]int32, k)
	err := ex.runWorkers(shardLabels("semijoin shard", plan.ranges), cost, func(ctx context.Context, i int, o core.Options) (int64, error) {
		var err error
		outs[i], err = runSemijoinShardColumnar(ctx, kind, lc, rc, shL[i], shR[i], o)
		return int64(len(outs[i])), err
	})
	if err != nil {
		return nil, err
	}
	parts := make([]stream.Stream[int32], k)
	for i := range outs {
		parts[i] = stream.FromSlice(outs[i])
	}
	idxCmp := func(a, b int32) int { return int(a) - int(b) }
	sameIdx := func(a, b int32) bool { return a == b }
	merged, err := stream.Collect(stream.Dedup(stream.MergeK(idxCmp, parts...), sameIdx))
	if err != nil {
		return nil, err
	}
	rows := make([]relation.Row, len(merged))
	//tdb:hotpath
	for i, g := range merged {
		rows[i] = lw[g].row
	}
	return rows, nil
}
