package engine

import (
	"fmt"

	"tdb/internal/algebra"
	"tdb/internal/catalog"
	"tdb/internal/core"
	"tdb/internal/fault"
	"tdb/internal/metrics"
	"tdb/internal/relation"
)

func init() {
	fault.Declare("engine/standing-run", "standing-query feeder goroutine, per emitted delta")
}

// This file extracts standing-evaluable plans from optimized algebra trees
// and runs them incrementally over live arrival. A standing plan is the
// restricted shape [Project?](Join|Semijoin([Select?]Scan, [Select?]Scan))
// whose temporal operator has a (TS↑, TS↑) stream algorithm: exactly the
// queries the core operators can evaluate in one pass while ingestion
// feeds them, with side predicates pushed down to the feed and the
// projection applied per delta. Anything else (Distinct, aggregates,
// multi-join trees, θ or before operators) is reported unsupported so the
// live manager can degrade it to periodic batch re-execution.

// ErrUnsupportedStanding wraps the reason a plan cannot run incrementally.
type ErrUnsupportedStanding struct{ Reason string }

func (e *ErrUnsupportedStanding) Error() string {
	return "engine: not standing-evaluable: " + e.Reason
}

func unsupported(format string, args ...any) error {
	return &ErrUnsupportedStanding{Reason: fmt.Sprintf(format, args...)}
}

// StandingPlan is a compiled incremental evaluation plan over two base
// relations.
type StandingPlan struct {
	Kind     algebra.TemporalKind
	Semijoin bool
	// LeftRel / RightRel are the base relation names whose appends feed
	// the two operator inputs.
	LeftRel, RightRel string

	lschema, rschema *relation.Schema
	lpred, rpred     rowPred // pushed-down side filters; nil when absent
	lspan, rspan     core.Span[relation.Row]
	outSchema        *relation.Schema
	project          func(relation.Row) relation.Row // nil = identity
}

// Schema returns the delta row schema.
func (p *StandingPlan) Schema() *relation.Schema { return p.outSchema }

// Algorithm names the stream operator the plan runs.
func (p *StandingPlan) Algorithm() string {
	op := "join"
	if p.Semijoin {
		op = "semijoin"
	}
	return fmt.Sprintf("stream %v-%s [TS↑,TS↑] (incremental)", p.Kind, op)
}

// BuildStanding extracts a standing plan from an optimized
// (temporal-atom-free) expression, or returns *ErrUnsupportedStanding
// explaining which shape constraint failed.
func BuildStanding(db *DB, e algebra.Expr) (*StandingPlan, error) {
	p := &StandingPlan{}
	root := e
	var proj *algebra.Project
	if pr, ok := root.(*algebra.Project); ok {
		if pr.Distinct {
			return nil, unsupported("DISTINCT projection must remember every row ever emitted")
		}
		proj = pr
		root = pr.Input
	}
	var l, r algebra.Expr
	var pred algebra.Predicate
	var lref, rref algebra.SpanRef
	switch n := root.(type) {
	case *algebra.Join:
		l, r, pred, p.Kind, lref, rref = n.L, n.R, n.Pred, n.Kind, n.LSpan, n.RSpan
	case *algebra.Semijoin:
		if n.Self {
			return nil, unsupported("self semijoin evaluates one shared input, not two live feeds")
		}
		p.Semijoin = true
		l, r, pred, p.Kind, lref, rref = n.L, n.R, n.Pred, n.Kind, n.LSpan, n.RSpan
	default:
		return nil, unsupported("plan root %T is not a single temporal join or semijoin", root)
	}
	if p.Kind == algebra.KindTheta {
		return nil, unsupported("θ operator has no single-pass stream algorithm")
	}
	// A recognized node's predicate still holds the comparison atoms the
	// optimizer consumed to classify it (Classify sets a non-θ Kind only
	// when the whole conjunction matches the operator signature), and the
	// batch stream path evaluates the operator in their place. Drop those;
	// anything else is a genuine residual the single-pass operator cannot
	// apply.
	spanCols := map[algebra.ColRef]bool{
		lref.TS: true, lref.TE: true, rref.TS: true, rref.TE: true,
	}
	for _, a := range pred.Atoms {
		consumed := (a.Op == algebra.LT || a.Op == algebra.GT) &&
			!a.L.IsConst && !a.R.IsConst && spanCols[a.L.Col] && spanCols[a.R.Col]
		if !consumed {
			return nil, unsupported("residual operator predicate %s cannot be pushed to a side feed", pred)
		}
	}
	if len(pred.Temporal) > 0 {
		return nil, unsupported("unexpanded temporal atoms %v in operator predicate", pred.Temporal)
	}

	var err error
	if p.LeftRel, p.lschema, p.lpred, err = standingSide(db, l); err != nil {
		return nil, err
	}
	if p.RightRel, p.rschema, p.rpred, err = standingSide(db, r); err != nil {
		return nil, err
	}
	if p.lspan, err = spanAccessor(lref, p.lschema); err != nil {
		return nil, err
	}
	if p.rspan, err = spanAccessor(rref, p.rschema); err != nil {
		return nil, err
	}
	// Live arrival is ordered by the base relation's ValidFrom; the
	// operator needs its *operand* spans in TS order, so the two must
	// coincide.
	if p.lschema.ColumnIndex(lref.TS.Name()) != p.lschema.TS {
		return nil, unsupported("left span starts at %s, not the relation's ValidFrom — arrival order would not be span order", lref.TS)
	}
	if p.rschema.ColumnIndex(rref.TS.Name()) != p.rschema.TS {
		return nil, unsupported("right span starts at %s, not the relation's ValidFrom — arrival order would not be span order", rref.TS)
	}

	if p.Semijoin {
		p.outSchema = p.lschema
	} else {
		p.outSchema = relation.Concat(p.lschema, p.rschema, "", "")
	}
	if proj != nil {
		if p.outSchema, p.project, err = compileProject(proj, p.outSchema); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// standingSide recognizes an optional Select over a base Scan.
func standingSide(db *DB, e algebra.Expr) (string, *relation.Schema, rowPred, error) {
	var pred rowPred
	if sel, ok := e.(*algebra.Select); ok {
		e = sel.Input
		scan, ok := e.(*algebra.Scan)
		if !ok {
			return "", nil, nil, unsupported("side %T is not σ(scan)", e)
		}
		schema, err := db.SchemaOf(scan.Relation)
		if err != nil {
			return "", nil, nil, err
		}
		schema = schema.Rename(scan.Var())
		if pred, err = compilePred(sel.Pred, schema); err != nil {
			return "", nil, nil, err
		}
		return scan.Relation, schema, pred, nil
	}
	scan, ok := e.(*algebra.Scan)
	if !ok {
		return "", nil, nil, unsupported("side %T is not a base scan", e)
	}
	schema, err := db.SchemaOf(scan.Relation)
	if err != nil {
		return "", nil, nil, err
	}
	return scan.Relation, schema.Rename(scan.Var()), nil, nil
}

// compileProject resolves a projection against the input schema into an
// output schema and a per-row mapping (the non-Distinct subset of
// evalProject).
func compileProject(p *algebra.Project, in *relation.Schema) (*relation.Schema, func(relation.Row) relation.Row, error) {
	idx := make([]int, len(p.Cols))
	cols := make([]relation.Column, len(p.Cols))
	ts, te := -1, -1
	for i, c := range p.Cols {
		j := in.ColumnIndex(c.From.Name())
		if j < 0 {
			return nil, nil, fmt.Errorf("engine: projection column %s not in %s", c.From, in)
		}
		idx[i] = j
		cols[i] = relation.Column{Name: c.Name, Kind: in.Cols[j].Kind}
		if c.Name == p.TSName {
			ts = i
		}
		if c.Name == p.TEName {
			te = i
		}
	}
	schema, err := relation.NewSchema(cols, ts, te)
	if err != nil {
		return nil, nil, err
	}
	return schema, func(r relation.Row) relation.Row {
		row := make(relation.Row, len(idx))
		for i, j := range idx {
			row[i] = r[j]
		}
		return row
	}, nil
}

// standingAbort carries an injected fault out of the operator callback;
// the run closure recovers it into a typed error.
type standingAbort struct{ err error }

// StandingRun is one live execution of a StandingPlan: the unchanged core
// operator running in a Runner, fed by ingestion, emitting delta rows.
type StandingRun struct {
	plan   *StandingPlan
	runner *core.Runner[relation.Row]
	left   *core.Feeder[spanned]
	right  *core.Feeder[spanned]
	probe  *metrics.Probe
}

// Start launches the plan's operator; maxPending bounds the undrained
// delta backlog before backpressure suspends the operator.
func (p *StandingPlan) Start(probe *metrics.Probe, maxPending int) *StandingRun {
	r := core.NewRunner[relation.Row](maxPending)
	fl := core.Attach[spanned](r)
	fr := core.Attach[spanned](r)
	run := &StandingRun{plan: p, runner: r, left: fl, right: fr, probe: probe}
	opt := core.Options{Probe: probe}
	r.Start(func(emit func(relation.Row)) (err error) {
		// Contain panics raised inside the feeder goroutine — whether an
		// injected abort or a genuine operator bug — as an ordinary run
		// error surfaced through Poll/Close, instead of crashing the
		// process with the runner's feeders still attached.
		defer func() {
			switch rec := recover().(type) {
			case nil:
			case standingAbort:
				err = fmt.Errorf("engine: standing run: %w", rec.err)
			default:
				err = fmt.Errorf("%w: %v", ErrWorkerPanic, rec)
			}
		}()
		out := func(row relation.Row) {
			// Failpoint: a fault here aborts the operator at its next
			// emission — the mid-flight feeder failure the chaos suite
			// injects. The error unwinds the whole run, never a partial
			// delta: the row is withheld, not half-delivered.
			if ferr := fault.Check("engine/standing-run"); ferr != nil {
				// lint:allow panic — controlled unwind to the recover above; converted to a typed error
				panic(standingAbort{err: ferr})
			}
			if p.project != nil {
				row = p.project(row)
			}
			emit(row)
		}
		emitLR := func(x, y spanned) { out(relation.ConcatRows(x.row, y.row)) }
		emitSemi := func(s spanned) { out(s.row) }
		switch {
		case p.Semijoin && p.Kind == algebra.KindContain:
			return core.ContainSemijoinTSTS[spanned](fl, fr, spannedSpan, opt, emitSemi)
		case p.Semijoin && p.Kind == algebra.KindContained:
			return core.ContainedSemijoinTSTS[spanned](fl, fr, spannedSpan, opt, emitSemi)
		case p.Semijoin: // KindOverlap
			return core.OverlapSemijoin[spanned](fl, fr, spannedSpan, opt, emitSemi)
		case p.Kind == algebra.KindContain:
			return core.ContainJoinTSTS[spanned](fl, fr, spannedSpan, opt, emitLR)
		case p.Kind == algebra.KindContained:
			// Left during right ⇔ Contain-join(right, left); output keeps
			// left columns first.
			return core.ContainJoinTSTS[spanned](fr, fl, spannedSpan, opt,
				func(x, y spanned) { out(relation.ConcatRows(y.row, x.row)) })
		default: // KindOverlap
			return core.OverlapJoin[spanned](fl, fr, spannedSpan, opt, emitLR)
		}
	})
	return run
}

// feed filters, wraps and feeds appended base rows into one side.
func feed(f *core.Feeder[spanned], rows []relation.Row, pred rowPred, span core.Span[relation.Row]) {
	ws := make([]spanned, 0, len(rows))
	for _, row := range rows {
		if pred != nil && !pred(row) {
			continue
		}
		ws = append(ws, spanned{row: row, span: span(row)})
	}
	if len(ws) > 0 {
		f.Feed(ws...)
	}
}

// FeedLeft / FeedRight push newly ingested base rows (in arrival order)
// into the operator, applying the plan's pushed-down side predicate.
func (r *StandingRun) FeedLeft(rows []relation.Row)  { feed(r.left, rows, r.plan.lpred, r.plan.lspan) }
func (r *StandingRun) FeedRight(rows []relation.Row) { feed(r.right, rows, r.plan.rpred, r.plan.rspan) }

// Poll waits until the operator has consumed everything it can of the
// input fed so far, then returns the accumulated delta rows. It loops
// quiesce→drain so a backpressure suspension mid-poll (more deltas than
// the pending cap) cannot truncate the result. If the operator has
// terminated with an error (an injected fault, a source failure), the
// error is returned alongside the deltas emitted before it — complete
// rows only, never a partial one.
func (r *StandingRun) Poll() ([]relation.Row, error) {
	var out []relation.Row
	for {
		r.runner.Quiesce()
		rows := r.runner.Drain()
		if len(rows) == 0 {
			break
		}
		out = append(out, rows...)
	}
	if r.runner.Done() {
		return out, r.runner.Wait()
	}
	return out, nil
}

// Fed returns the per-side post-filter feed counts — the replay offsets a
// checkpoint records.
func (r *StandingRun) Fed() (left, right int64) { return r.left.Fed(), r.right.Fed() }

// Emitted returns the number of delta rows ever emitted.
func (r *StandingRun) Emitted() int64 { return r.runner.Emitted() }

// Backlog returns fed-but-unconsumed input tuples plus undrained deltas.
func (r *StandingRun) Backlog() int {
	return r.left.Backlog() + r.right.Backlog() + r.runner.PendingLen()
}

// Suspended reports the runner's wait state ("input", "backpressure",
// "done", "running").
func (r *StandingRun) Suspended() string { return r.runner.Suspended() }

// Workspace returns the operator's live workspace figure (state high-water
// mark plus buffers).
func (r *StandingRun) Workspace() int64 { return r.probe.Workspace() }

// Close ends the streams gracefully and returns the final delta rows: the
// operator sees end-of-stream, runs its termination logic, and is drained
// repeatedly so a backpressure-suspended emit cannot deadlock the wait.
func (r *StandingRun) Close() ([]relation.Row, error) {
	r.runner.CloseAll()
	var out []relation.Row
	for !r.runner.Done() {
		r.runner.Quiesce()
		out = append(out, r.runner.Drain()...)
	}
	err := r.runner.Wait()
	return append(out, r.runner.Drain()...), err
}

// Quiesce blocks until the operator is suspended or done — after it, every
// delta implied by the input fed so far is pending or already drained.
func (r *StandingRun) Quiesce() { r.runner.Quiesce() }

// Stop abandons the run and discards pending deltas.
func (r *StandingRun) Stop() {
	r.runner.Stop()
	_ = r.runner.Wait()
}

// liveStats pairs the incremental accumulator of an appended relation with
// a publication countdown, so catalog snapshots are refreshed periodically
// rather than per row.
type liveStats struct {
	inc      *catalog.Incremental
	sincePub int
}

// statsPubEvery bounds how stale the published catalog snapshot of an
// appended relation may be, in rows.
const statsPubEvery = 64

// Append adds one row to a registered relation — the live ingestion write
// path. The row lands in the heap file (stored relations) or the in-memory
// row set, and for temporal relations the catalog statistics are folded
// forward incrementally (no rescan) and republished every statsPubEvery
// rows; RefreshStats forces publication.
func (db *DB) Append(name string, row relation.Row) error {
	rel, err := db.Relation(name)
	if err != nil {
		return err
	}
	if len(row) != rel.Schema.Arity() {
		return fmt.Errorf("engine: append to %s: row arity %d, schema %s", name, len(row), rel.Schema)
	}
	ls, err := db.liveStatsFor(name, rel)
	if err != nil {
		return err
	}
	if hf, ok := db.stored[name]; ok {
		if err := hf.Append(row); err != nil {
			return err
		}
	} else {
		rel.Rows = append(rel.Rows, row)
	}
	if ls != nil {
		ls.inc.Observe(row.Span(rel.Schema))
		ls.sincePub++
		if ls.sincePub >= statsPubEvery {
			db.publishStats(name, ls)
		}
	}
	return nil
}

// liveStatsFor returns (lazily creating) the incremental accumulator of a
// temporal relation, seeding it with a one-time pass over any rows that
// existed before the first append.
func (db *DB) liveStatsFor(name string, rel *relation.Relation) (*liveStats, error) {
	if !rel.Schema.Temporal() {
		return nil, nil
	}
	if ls, ok := db.live[name]; ok {
		return ls, nil
	}
	inc := catalog.NewIncremental()
	if hf, ok := db.stored[name]; ok {
		s := hf.Scan()
		for row, ok := s.Next(); ok; row, ok = s.Next() {
			inc.Observe(row.Span(rel.Schema))
		}
		if err := s.Err(); err != nil {
			return nil, err
		}
	} else {
		for i := range rel.Rows {
			inc.Observe(rel.Span(i))
		}
	}
	ls := &liveStats{inc: inc}
	db.live[name] = ls
	return ls, nil
}

func (db *DB) publishStats(name string, ls *liveStats) {
	db.cat.Put(name, ls.inc.Snapshot())
	ls.sincePub = 0
	db.refreshGauges()
}

// RefreshStats publishes the current incremental statistics of an appended
// relation into the catalog (a no-op for relations never appended to).
func (db *DB) RefreshStats(name string) {
	if ls, ok := db.live[name]; ok {
		db.publishStats(name, ls)
	}
}

// ActiveSpans returns the number of lifespans open at the append frontier
// of a relation, or 0 if it has never been appended to.
func (db *DB) ActiveSpans(name string) int {
	if ls, ok := db.live[name]; ok {
		return ls.inc.ActiveSpans()
	}
	return 0
}
