package engine

import (
	"context"
	"errors"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/workload"
)

// TestInterruptAbortsRun cancels a context mid-run and asserts the
// executor aborts with ErrInterrupted wrapping the cause — the contract
// the query server's per-request cancellation stands on.
func TestInterruptAbortsRun(t *testing.T) {
	db := NewDB()
	db.MustRegister(workload.Faculty(workload.FacultyConfig{N: 200, Seed: 7}))

	tree := &algebra.Product{
		L: &algebra.Scan{Relation: "Faculty", As: "a"},
		R: &algebra.Scan{Relation: "Faculty", As: "b"},
	}

	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	opt := Options{Interrupt: func() error {
		calls++
		if calls == 2 {
			cancel()
		}
		return ctx.Err()
	}}
	_, _, err := Run(db, tree, opt)
	if err == nil {
		t.Fatal("run completed despite cancellation")
	}
	if !errors.Is(err, ErrInterrupted) {
		t.Errorf("error %v does not wrap ErrInterrupted", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not expose the context cause", err)
	}
}

// TestInterruptNilIsFree asserts a nil hook leaves execution untouched.
func TestInterruptNilIsFree(t *testing.T) {
	db := NewDB()
	db.MustRegister(workload.Faculty(workload.FacultyConfig{N: 20, Seed: 7}))
	tree := &algebra.Scan{Relation: "Faculty", As: "f"}
	out, _, err := Run(db, tree, Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.Cardinality() == 0 {
		t.Fatal("no rows")
	}
}
