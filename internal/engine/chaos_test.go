package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"tdb/internal/fault"
	"tdb/internal/optimizer"
	"tdb/internal/storage"
	"tdb/internal/testutil"
)

// chaosAcceptable are the error identities a chaos run may surface; any
// other failure is a robustness bug.
func chaosAcceptable(err error) bool {
	return errors.Is(err, fault.ErrInjected) ||
		errors.Is(err, ErrWorkerPanic) ||
		errors.Is(err, storage.ErrCorruptPage)
}

// TestChaosSuperstar runs the full Superstar pipeline — semantic
// optimization, semijoin introduction, stored scans, parallel workers —
// under randomized (seeded) fault schedules that hit the parallel workers
// and the storage page reads probabilistically. Acceptance: either the
// run fails with a clean typed error, or its output is byte-identical to
// the fault-free serial reference — and in both cases every worker
// goroutine has unwound (the leak check holds that part).
func TestChaosSuperstar(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	db := newFacultyDB(t, 60, false)
	if err := db.DeclareChronOrder(rankIC(false)); err != nil {
		t.Fatal(err)
	}
	if err := db.StoreRelation("Faculty", t.TempDir(), 2); err != nil {
		t.Fatal(err)
	}
	tree := optimize(t, db, superstarQuery(), optimizer.Options{ICs: db.ChronOrders()})
	serial, _, err := Run(db, tree, Options{Parallelism: 1})
	if err != nil {
		t.Fatalf("fault-free reference: %v", err)
	}
	if len(serial.Rows) == 0 {
		t.Fatal("degenerate fixture: Superstar emits no rows")
	}

	schedule := func(rng *rand.Rand) []string {
		specs := []string{
			fmt.Sprintf("engine/parallel-worker=error:p=0.4:seed=%d", rng.Int63()),
			fmt.Sprintf("engine/parallel-worker=panic:p=0.3:seed=%d", rng.Int63()),
			fmt.Sprintf("storage/page-read=error:p=0.1:seed=%d", rng.Int63()),
		}
		// Arm a random non-empty subset.
		var armed []string
		for _, s := range specs {
			if rng.Intn(2) == 0 {
				armed = append(armed, s)
			}
		}
		if len(armed) == 0 {
			armed = append(armed, specs[rng.Intn(len(specs))])
		}
		return armed
	}

	failures := 0
	for seed := int64(0); seed < 24; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fault.Reset()
		for _, spec := range schedule(rng) {
			if err := fault.Arm(spec); err != nil {
				t.Fatal(err)
			}
		}
		res, _, err := Run(db, tree, forcePar(4))
		fault.Reset()
		if err != nil {
			failures++
			if !chaosAcceptable(err) {
				t.Fatalf("seed %d: untyped chaos error: %v", seed, err)
			}
			continue
		}
		identicalRows(t, fmt.Sprintf("chaos seed %d", seed), serial, res)
	}
	if failures == 0 {
		t.Fatal("chaos schedules never fired; the sweep is not exercising the fault paths")
	}

	// The fixture must be intact after the sweep: a final fault-free run
	// still reproduces the reference byte for byte.
	after, _, err := Run(db, tree, forcePar(4))
	if err != nil {
		t.Fatalf("post-chaos run: %v", err)
	}
	identicalRows(t, "post-chaos", serial, after)
}
