package engine

import (
	"errors"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/testutil"
	"tdb/internal/value"
)

func standingSchema() *relation.Schema {
	return relation.MustSchema([]relation.Column{
		{Name: "Id", Kind: value.KindInt},
		{Name: "ValidFrom", Kind: value.KindTime},
		{Name: "ValidTo", Kind: value.KindTime},
	}, 1, 2)
}

func standingDB(t *testing.T) *DB {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	db := NewDB()
	db.MustRegister(relation.New("A", standingSchema()))
	db.MustRegister(relation.New("B", standingSchema()))
	return db
}

func standingSpan(v string) algebra.SpanRef {
	return algebra.SpanRef{
		TS: algebra.ColRef{Var: v, Col: "ValidFrom"},
		TE: algebra.ColRef{Var: v, Col: "ValidTo"},
	}
}

// TestBuildStandingRejectsShapes: every shape constraint of the standing
// plan extractor fails with ErrUnsupportedStanding (so the live manager can
// degrade), never with a silent wrong plan.
func TestBuildStandingRejectsShapes(t *testing.T) {
	db := standingDB(t)
	scanA := func() algebra.Expr { return &algebra.Scan{Relation: "A"} }
	scanB := func() algebra.Expr { return &algebra.Scan{Relation: "B"} }
	join := func(kind algebra.TemporalKind) *algebra.Join {
		return &algebra.Join{L: scanA(), R: scanB(), Kind: kind,
			LSpan: standingSpan("A"), RSpan: standingSpan("B")}
	}
	cases := []struct {
		name string
		tree algebra.Expr
	}{
		{"distinct projection", &algebra.Project{
			Input: join(algebra.KindOverlap), Distinct: true,
			Cols:   []algebra.Output{{Name: "Id", From: algebra.ColRef{Var: "A", Col: "Id"}}},
			TSName: "", TEName: "",
		}},
		{"theta join", join(algebra.KindTheta)},
		{"self semijoin", &algebra.Semijoin{L: scanA(), R: scanA(), Self: true,
			Kind: algebra.KindOverlap, LSpan: standingSpan("A"), RSpan: standingSpan("A")}},
		{"residual predicate", &algebra.Join{L: scanA(), R: scanB(), Kind: algebra.KindOverlap,
			LSpan: standingSpan("A"), RSpan: standingSpan("B"),
			Pred: algebra.Predicate{Atoms: []algebra.Atom{{
				L: algebra.Column("A", "Id"), Op: algebra.EQ, R: algebra.Column("B", "Id")}}}}},
		{"non-scan side", &algebra.Join{L: &algebra.Product{L: scanA(), R: scanB()}, R: scanB(),
			Kind: algebra.KindOverlap, LSpan: standingSpan("A"), RSpan: standingSpan("B")}},
		{"span not on ValidFrom", &algebra.Join{L: scanA(), R: scanB(), Kind: algebra.KindOverlap,
			LSpan: algebra.SpanRef{
				TS: algebra.ColRef{Var: "A", Col: "ValidTo"},
				TE: algebra.ColRef{Var: "A", Col: "ValidFrom"}},
			RSpan: standingSpan("B")}},
		{"bare select root", &algebra.Select{Input: scanA()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := BuildStanding(db, tc.tree)
			var ue *ErrUnsupportedStanding
			if !errors.As(err, &ue) {
				t.Fatalf("err = %v, want *ErrUnsupportedStanding", err)
			}
			if ue.Reason == "" {
				t.Fatal("unsupported without a reason")
			}
		})
	}
}

// TestBuildStandingPushesSideSelect: σ over a scan becomes a side filter
// applied at feed time, and the projection is applied per delta.
func TestBuildStandingPushesSideSelect(t *testing.T) {
	db := standingDB(t)
	tree := &algebra.Project{
		Input: &algebra.Semijoin{
			L: &algebra.Select{Input: &algebra.Scan{Relation: "A"},
				Pred: algebra.Predicate{Atoms: []algebra.Atom{{
					L: algebra.Column("A", "Id"), Op: algebra.EQ,
					R: algebra.Const(value.Int(1))}}}},
			R:    &algebra.Scan{Relation: "B"},
			Kind: algebra.KindOverlap,
			LSpan: algebra.SpanRef{TS: algebra.ColRef{Var: "A", Col: "ValidFrom"},
				TE: algebra.ColRef{Var: "A", Col: "ValidTo"}},
			RSpan: algebra.SpanRef{TS: algebra.ColRef{Var: "B", Col: "ValidFrom"},
				TE: algebra.ColRef{Var: "B", Col: "ValidTo"}},
		},
		Cols:   []algebra.Output{{Name: "Id", From: algebra.ColRef{Var: "A", Col: "Id"}}},
		TSName: "", TEName: "",
	}
	plan, err := BuildStanding(db, tree)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Semijoin || plan.LeftRel != "A" || plan.RightRel != "B" {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.Schema().Arity() != 1 {
		t.Fatalf("projected arity = %d, want 1", plan.Schema().Arity())
	}
	run := plan.Start(nil, 0)
	mk := func(id int, from, to interval.Time) relation.Row {
		return relation.Row{value.Int(int64(id)), value.TimeVal(from), value.TimeVal(to)}
	}
	run.FeedLeft([]relation.Row{mk(1, 0, 10), mk(2, 1, 11)}) // Id=2 filtered out
	run.FeedRight([]relation.Row{mk(7, 2, 5)})
	rows, err := run.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0]) != 1 || rows[0][0] != value.Int(1) {
		t.Fatalf("deltas = %v, want one projected Id=1 row", rows)
	}
}

// TestDBAppendIncrementalStats: appends fold catalog statistics forward
// without a rescan, publishing every statsPubEvery rows and on demand.
func TestDBAppendIncrementalStats(t *testing.T) {
	db := standingDB(t)
	mk := func(id int, from, to interval.Time) relation.Row {
		return relation.Row{value.Int(int64(id)), value.TimeVal(from), value.TimeVal(to)}
	}
	for i := 0; i < statsPubEvery-1; i++ {
		if err := db.Append("A", mk(i, interval.Time(i), interval.Time(i+3))); err != nil {
			t.Fatal(err)
		}
	}
	if s := db.Stats("A"); s != nil && s.Cardinality != 0 {
		t.Fatalf("stats published early: %+v", s)
	}
	if err := db.Append("A", mk(99, interval.Time(99), interval.Time(102))); err != nil {
		t.Fatal(err)
	}
	s := db.Stats("A")
	if s == nil || s.Cardinality != statsPubEvery {
		t.Fatalf("stats after %d appends = %+v", statsPubEvery, s)
	}
	if err := db.Append("A", mk(100, 100, 103)); err != nil {
		t.Fatal(err)
	}
	db.RefreshStats("A")
	if s := db.Stats("A"); s == nil || s.Cardinality != statsPubEvery+1 {
		t.Fatalf("stats after refresh = %+v", s)
	}
	if db.ActiveSpans("A") <= 0 {
		t.Fatal("no active spans at the append frontier")
	}
	// Arity violations and unknown relations are rejected.
	if err := db.Append("A", relation.Row{value.Int(1)}); err == nil {
		t.Fatal("short row appended")
	}
	if err := db.Append("Nope", mk(1, 0, 1)); err == nil {
		t.Fatal("append to unknown relation accepted")
	}
}
