package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/interval"
	"tdb/internal/optimizer"
	"tdb/internal/value"
	"tdb/internal/workload"
)

// TestOptimizerEquivalenceRandomized is the whole-pipeline soundness
// property: for random conjunctive temporal queries over the Faculty
// relation, the fully optimized plan (semantic pass with integrity
// constraints, pushdown, temporal recognition, semijoin introduction, self
// detection, stream algorithms with order verification) must produce
// exactly the rows of the unoptimized nested-loop evaluation — and a
// detected contradiction must mean the nested-loop result is empty.
func TestOptimizerEquivalenceRandomized(t *testing.T) {
	db := newFacultyDB(t, 25, false)
	if err := db.DeclareChronOrder(rankIC(false)); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(61))
	tempCols := []string{"ValidFrom", "ValidTo"}
	cmps := []algebra.CmpOp{algebra.LT, algebra.LE, algebra.GT, algebra.GE, algebra.EQ}
	rels := []interval.Relationship{
		interval.RelDuring, interval.RelContains, interval.RelBefore,
		interval.RelMeets, interval.RelOverlaps, interval.RelEqual,
	}

	genQuery := func() algebra.Expr {
		nVars := 2 + rng.Intn(2)
		vars := make([]string, nVars)
		for i := range vars {
			vars[i] = fmt.Sprintf("v%d", i)
		}
		var pred algebra.Predicate
		// Maybe a key equality between a random pair.
		if rng.Intn(2) == 0 {
			a, b := rng.Intn(nVars), rng.Intn(nVars)
			if a != b {
				pred.Atoms = append(pred.Atoms, algebra.Atom{
					L: algebra.Column(vars[a], "Name"), Op: algebra.EQ, R: algebra.Column(vars[b], "Name"),
				})
			}
		}
		// Maybe rank constants.
		for _, v := range vars {
			if rng.Intn(3) == 0 {
				pred.Atoms = append(pred.Atoms, algebra.Atom{
					L:  algebra.Column(v, "Rank"),
					Op: algebra.EQ,
					R:  algebra.Const(value.String_(workload.Ranks[rng.Intn(3)])),
				})
			}
		}
		// Temporal comparison atoms between random endpoint pairs.
		nAtoms := 1 + rng.Intn(3)
		for i := 0; i < nAtoms; i++ {
			a, b := rng.Intn(nVars), rng.Intn(nVars)
			if a == b {
				continue
			}
			pred.Atoms = append(pred.Atoms, algebra.Atom{
				L:  algebra.Column(vars[a], tempCols[rng.Intn(2)]),
				Op: cmps[rng.Intn(len(cmps))],
				R:  algebra.Column(vars[b], tempCols[rng.Intn(2)]),
			})
		}
		// Maybe a temporal operator atom.
		if rng.Intn(2) == 0 {
			a, b := rng.Intn(nVars), rng.Intn(nVars)
			if a != b {
				ta := algebra.TemporalAtom{L: vars[a], R: vars[b]}
				if rng.Intn(3) == 0 {
					ta.General = true
				} else {
					ta.Rel = rels[rng.Intn(len(rels))]
				}
				pred.Temporal = append(pred.Temporal, ta)
			}
		}

		// Product chain and a projection over a random subset of one or
		// two variables.
		var tree algebra.Expr
		for _, v := range vars {
			scan := &algebra.Scan{Relation: "Faculty", As: v}
			if tree == nil {
				tree = scan
			} else {
				tree = &algebra.Product{L: tree, R: scan}
			}
		}
		if !pred.True() {
			tree = &algebra.Select{Input: tree, Pred: pred}
		}
		nOut := 1 + rng.Intn(2)
		var cols []algebra.Output
		for i := 0; i < nOut; i++ {
			v := vars[rng.Intn(nVars)]
			col := []string{"Name", "Rank", "ValidFrom", "ValidTo"}[rng.Intn(4)]
			cols = append(cols, algebra.Output{
				Name: fmt.Sprintf("c%d", i),
				From: algebra.ColRef{Var: v, Col: col},
			})
		}
		return &algebra.Project{Input: tree, Cols: cols, Distinct: true}
	}

	for trial := 0; trial < 120; trial++ {
		q := genQuery()

		ref, err := optimizer.Optimize(q, db, optimizer.Options{
			NoSemantic: true, NoConventional: true, NoRecognition: true,
		})
		if err != nil {
			t.Fatalf("trial %d: reference optimize: %v\n%s", trial, err, algebra.Format(q))
		}
		refOut, _, err := Run(db, ref.Tree, Options{ForceNestedLoop: true, ForceNoHash: true})
		if err != nil {
			t.Fatalf("trial %d: reference run: %v\n%s", trial, err, algebra.Format(q))
		}

		opt, err := optimizer.Optimize(q, db, optimizer.Options{ICs: db.ChronOrders()})
		if err != nil {
			t.Fatalf("trial %d: optimize: %v\n%s", trial, err, algebra.Format(q))
		}
		if opt.Contradiction {
			if refOut.Cardinality() != 0 {
				t.Fatalf("trial %d: contradiction claimed but %d rows exist\n%s",
					trial, refOut.Cardinality(), algebra.Format(q))
			}
			continue
		}
		optOut, _, err := Run(db, opt.Tree, Options{VerifyOrder: true})
		if err != nil {
			t.Fatalf("trial %d: optimized run: %v\n%s", trial, err, algebra.Format(opt.Tree))
		}
		sameRows(t, fmt.Sprintf("trial %d\nquery:\n%s\noptimized:\n%s",
			trial, algebra.Format(q), algebra.Format(opt.Tree)), refOut, optOut)
	}
}

// The same property for the merge-join and λ-policy execution variants on
// a fixed join-heavy query.
func TestExecutionVariantEquivalence(t *testing.T) {
	db := newFacultyDB(t, 40, false)
	q := superstarQuery()
	opt, err := optimizer.Optimize(q, db, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := Run(db, opt.Tree, Options{ForceNestedLoop: true, ForceNoHash: true})
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]Options{
		"hash":    {},
		"merge":   {PreferMergeJoin: true},
		"stream":  {VerifyOrder: true},
		"nl-hash": {ForceNestedLoop: true},
	}
	for name, o := range variants {
		out, _, err := Run(db, opt.Tree, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameRows(t, name, base, out)
	}
}
