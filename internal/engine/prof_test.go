package engine

import (
	"strings"
	"testing"
	"time"

	"tdb/internal/algebra"
	"tdb/internal/obs"
	"tdb/internal/optimizer"
)

// TestProfiledRunReportsResourceColumns: a run with Profile on marks
// every plan-node span profiled, surfaces allocs/op and B/op in the
// EXPLAIN ANALYZE tree, and produces exactly the rows of an unprofiled
// run — accounting observes, never steers.
func TestProfiledRunReportsResourceColumns(t *testing.T) {
	db := newFacultyDB(t, 40, false)
	if err := db.DeclareChronOrder(rankIC(false)); err != nil {
		t.Fatal(err)
	}
	tree := optimize(t, db, superstarQuery(), optimizer.Options{ICs: db.ChronOrders()})

	tr := obs.NewTracer()
	res, _, err := Run(db, tree, Options{Tracer: tr, Profile: true})
	if err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	if len(spans) < 2 {
		t.Fatalf("spans = %d, want a root plus plan nodes", len(spans))
	}
	var sawAllocs bool
	for _, s := range spans {
		if !s.Profiled {
			t.Errorf("span %q not profiled", s.Label)
		}
		if s.Allocs < 0 || s.AllocBytes < 0 {
			t.Errorf("span %q has negative exclusive deltas: allocs=%d bytes=%d",
				s.Label, s.Allocs, s.AllocBytes)
		}
		if s.Allocs > 0 {
			sawAllocs = true
		}
	}
	if !sawAllocs {
		t.Error("no span attributed any allocation; the superstar plan allocates")
	}

	tree2 := tr.Tree()
	for _, want := range []string{"allocs/op=", "B/op=", "allocs="} {
		if !strings.Contains(tree2, want) {
			t.Errorf("EXPLAIN ANALYZE tree missing %q:\n%s", want, tree2)
		}
	}

	plain, _, err := Run(db, tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "profiled vs plain", res, plain)
}

// TestSlowQueryEventJournaled: with a slow-query cutoff below any real
// run, the engine journals exactly one slow-query event carrying the
// elapsed time and output cardinality; with the cutoff unset it stays
// silent.
func TestSlowQueryEventJournaled(t *testing.T) {
	db := newFacultyDB(t, 40, false)
	tree := optimize(t, db, superstarQuery(), optimizer.Options{})

	events := obs.NewEventLog(8)
	res, _, err := Run(db, tree, Options{Events: events, SlowQuery: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	evs := events.Events()
	if len(evs) != 1 || evs[0].Kind != obs.EventSlowQuery {
		t.Fatalf("events = %+v, want one slow-query", evs)
	}
	if evs[0].Detail["elapsed_ms"] == "" {
		t.Errorf("slow-query event missing elapsed_ms: %+v", evs[0].Detail)
	}
	if want := int64(res.Cardinality()); evs[0].Detail["rows_out"] == "" {
		t.Errorf("slow-query event missing rows_out (want %d): %+v", want, evs[0].Detail)
	}

	quiet := obs.NewEventLog(8)
	if _, _, err := Run(db, tree, Options{Events: quiet}); err != nil {
		t.Fatal(err)
	}
	if quiet.Len() != 0 {
		t.Errorf("events journaled with no cutoff: %+v", quiet.Events())
	}
}

// TestGovernorFallbackEventJournaled: a governed degradation lands in
// the event journal with the breach arithmetic, alongside the existing
// note and counter.
func TestGovernorFallbackEventJournaled(t *testing.T) {
	db := governorDB(t, 40)
	events := obs.NewEventLog(8)
	_, st, err := Run(db, governorJoin(algebra.KindOverlap),
		Options{GovernWorkspace: true, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	if note := findNote(st, "degraded to baseline sort-merge"); note == "" {
		t.Fatalf("no degradation note; notes: %+v", st.Nodes)
	}
	var ev *obs.Event
	for _, e := range events.Events() {
		if e.Kind == obs.EventGovernor {
			cp := e
			ev = &cp
		}
	}
	if ev == nil {
		t.Fatalf("no governor-fallback event; journal: %+v", events.Events())
	}
	if ev.Detail["workspace"] == "" || ev.Detail["ceiling"] == "" || ev.Detail["algorithm"] == "" {
		t.Errorf("fallback event missing breach arithmetic: %+v", ev.Detail)
	}
}
