package engine

import (
	"strings"
	"testing"

	"tdb/internal/optimizer"
	"tdb/internal/quel"
	"tdb/internal/relation"
	"tdb/internal/value"
)

// End to end: Quel text → parse → translate → optimize → execute, for both
// a temporal query and an aggregate, against one database.
func TestQuelEndToEnd(t *testing.T) {
	db := salaryDB(t)

	run := func(src string) *relation.Relation {
		t.Helper()
		prog, err := quel.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		qs, err := quel.Translate(prog, db)
		if err != nil {
			t.Fatal(err)
		}
		res, err := optimizer.Optimize(qs[0].Tree, db, optimizer.Options{ICs: db.ChronOrders()})
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := Run(db, res.Tree, Options{VerifyOrder: true})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Aggregate: payroll per department among rows valid at chronon 7.
	out := run(`range of e is Emp
retrieve (Dept=e.Dept, payroll=sum(e.Salary), n=count(e))
where e.ValidFrom <= 7 and e.ValidTo > 7`)
	if out.Cardinality() != 2 {
		t.Fatalf("groups: %v", out)
	}
	want := map[string][2]int64{"cs": {180, 2}, "ee": {270, 3}}
	for _, r := range out.Rows {
		w := want[r[0].AsString()]
		if r[1].AsInt() != w[0] || r[2].AsInt() != w[1] {
			t.Errorf("group %v: %v, want %v", r[0], r, w)
		}
	}

	// Temporal self-join through the full optimizer: pairs of employees
	// whose salary periods intersect (general overlap), counted.
	out = run(`range of a is Emp
range of b is Emp
retrieve (X=a.Emp, Y=b.Emp)
where (a overlap b) and a.Emp != b.Emp`)
	if out.Cardinality() == 0 {
		t.Fatal("no overlapping salary periods found")
	}
	// Symmetry: (x,y) present ⇔ (y,x) present.
	seen := map[string]bool{}
	for _, r := range out.Rows {
		seen[r[0].AsString()+"|"+r[1].AsString()] = true
	}
	for k := range seen {
		x, y, _ := strings.Cut(k, "|")
		if !seen[y+"|"+x] {
			t.Errorf("overlap not symmetric: %s present, %s missing", k, y+"|"+x)
		}
	}
	_ = value.Int(0)
}
