package engine

import (
	"fmt"
	"strings"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/baseline"
	"tdb/internal/interval"
	"tdb/internal/obs"
	"tdb/internal/relation"
	"tdb/internal/value"
)

// governorDB builds a database whose catalog statistics are deliberately
// stale-low: each relation is registered (and analyzed) with a handful of
// disjoint lifespans, then grown by direct row insertion — bypassing
// Append's incremental statistics — with extra tuples that all span one
// common window, driving the true lifespan concurrency far above what the
// catalog predicts. This is the statistics-drift scenario the workspace
// governor exists to catch.
func governorDB(t *testing.T, drifted int) *DB {
	t.Helper()
	db := NewDB()
	row := func(id int, from, to interval.Time) relation.Row {
		return relation.Row{value.Int(int64(id)), value.TimeVal(from), value.TimeVal(to)}
	}
	for ri, name := range []string{"A", "B"} {
		rel := relation.New(name, standingSchema())
		for i := 0; i < 4; i++ {
			// Disjoint seed spans: analyzed MaxConcurrency stays 1.
			s := interval.Time(i * 10)
			rel.MustInsert(row(ri*1000+i, s, s+3))
		}
		if err := db.Register(rel); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < drifted; i++ {
			// All drifted spans cover [100, 200): concurrency = drifted.
			rel.Rows = append(rel.Rows, row(ri*1000+100+i, 100+interval.Time(i%7), 200+interval.Time(i%5)))
		}
	}
	return db
}

func governorJoin(kind algebra.TemporalKind) algebra.Expr {
	return &algebra.Join{
		L: &algebra.Scan{Relation: "A", As: "a"}, R: &algebra.Scan{Relation: "B", As: "b"},
		Kind: kind, LSpan: standingSpan("a"), RSpan: standingSpan("b"),
	}
}

func findNote(st *Stats, substr string) string {
	for _, n := range st.Nodes {
		for _, note := range n.Notes {
			if strings.Contains(note, substr) {
				return note
			}
		}
	}
	return ""
}

// A drifted workload breaches the stale catalog ceiling; the governed run
// degrades to the baseline sort-merge, emits the explain notes, bumps the
// fallback counter — and still produces exactly the rows the ungoverned
// stream path produces, in the baseline band-scan order.
func TestGovernorFallbackOnDrift(t *testing.T) {
	for _, kind := range []algebra.TemporalKind{algebra.KindOverlap, algebra.KindContain, algebra.KindContained} {
		t.Run(fmt.Sprint(kind), func(t *testing.T) {
			db := governorDB(t, 40)
			reg := obs.NewRegistry()
			res, st, err := Run(db, governorJoin(kind), Options{GovernWorkspace: true, Registry: reg})
			if err != nil {
				t.Fatalf("governed run: %v", err)
			}
			if note := findNote(st, "degraded to baseline sort-merge"); note == "" {
				t.Fatalf("no degradation note; notes: %+v", st.Nodes)
			}
			if got := reg.Counter("tdb_governor_fallbacks_total", "").Value(); got != 1 {
				t.Fatalf("tdb_governor_fallbacks_total = %d, want 1", got)
			}
			algo := ""
			for _, n := range st.Nodes {
				if strings.Contains(n.Algorithm, "baseline sort-merge (governed)") {
					algo = n.Algorithm
				}
			}
			if algo == "" {
				t.Fatal("no node records the governed fallback algorithm")
			}

			// Same rows as the ungoverned stream path (order may differ).
			plain, _, err := Run(db, governorJoin(kind), Options{})
			if err != nil {
				t.Fatalf("ungoverned run: %v", err)
			}
			sameRows(t, "governed vs stream", res, plain)

			// Byte-identical to the baseline path: re-deriving the output by
			// invoking the band scan directly reproduces the governed rows
			// in exactly the same order.
			want := baselineOracle(t, db, kind)
			if len(want) != len(res.Rows) {
				t.Fatalf("governed %d rows, baseline %d", len(res.Rows), len(want))
			}
			for i := range want {
				if res.Rows[i].Key() != want[i].Key() {
					t.Fatalf("row %d differs from baseline path:\n got %v\nwant %v", i, res.Rows[i], want[i])
				}
			}
		})
	}
}

// baselineOracle evaluates the governed join by calling the baseline band
// scan directly over the database contents — the reference output the
// governed fallback must match byte for byte.
func baselineOracle(t *testing.T, db *DB, kind algebra.TemporalKind) []relation.Row {
	t.Helper()
	spanOf := func(name string) ([]spanned, *relation.Schema) {
		rel, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		w := make([]spanned, len(rel.Rows))
		for i, r := range rel.Rows {
			w[i] = spanned{row: r, span: r.Span(rel.Schema)}
		}
		return w, rel.Schema
	}
	lw, _ := spanOf("A")
	rw, _ := spanOf("B")
	var theta func(x, y interval.Interval) bool
	switch kind {
	case algebra.KindContain:
		theta = func(x, y interval.Interval) bool { return x.ContainsInterval(y) }
	case algebra.KindContained:
		theta = func(x, y interval.Interval) bool { return y.ContainsInterval(x) }
	default:
		theta = func(x, y interval.Interval) bool { return x.Intersects(y) }
	}
	var rows []relation.Row
	baseline.SortMergeJoin(lw, rw, spannedSpan, theta, nil,
		func(a, b spanned) { rows = append(rows, relation.ConcatRows(a.row, b.row)) })
	return rows
}

// With accurate statistics the governed run takes the stream path: the
// ceiling note is present, no fallback fires, and the output is untouched.
func TestGovernorQuiescentUnderAccurateStats(t *testing.T) {
	db := governorDB(t, 40)
	// Publish accurate statistics the way live ingestion would.
	for _, name := range []string{"A", "B"} {
		rel, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.cat.Analyze(rel); err != nil {
			t.Fatal(err)
		}
	}
	reg := obs.NewRegistry()
	res, st, err := Run(db, governorJoin(algebra.KindOverlap), Options{GovernWorkspace: true, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if note := findNote(st, "workspace ceiling"); note == "" {
		t.Fatal("governed run should record its admission ceiling note")
	}
	if note := findNote(st, "degraded"); note != "" {
		t.Fatalf("unexpected degradation with accurate stats: %s", note)
	}
	if got := reg.Counter("tdb_governor_fallbacks_total", "").Value(); got != 0 {
		t.Fatalf("fallback counter %d, want 0", got)
	}
	plain, _, err := Run(db, governorJoin(algebra.KindOverlap), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(plain.Rows) {
		t.Fatalf("governed %d rows, plain %d", len(res.Rows), len(plain.Rows))
	}
	for i := range plain.Rows {
		if res.Rows[i].Key() != plain.Rows[i].Key() {
			t.Fatalf("row %d: governed output diverges from stream path", i)
		}
	}
}

// Derived inputs (a join under a join) and unbounded kinds run ungoverned,
// each leaving an explanatory note instead of a silent skip.
func TestGovernorUngovernedNotes(t *testing.T) {
	db := governorDB(t, 0)
	inner := governorJoin(algebra.KindOverlap).(*algebra.Join)
	outer := &algebra.Join{
		L: inner, R: &algebra.Scan{Relation: "B", As: "c"},
		Kind: algebra.KindOverlap,
		LSpan: algebra.SpanRef{
			TS: algebra.ColRef{Var: "a", Col: "ValidFrom"},
			TE: algebra.ColRef{Var: "a", Col: "ValidTo"}},
		RSpan: standingSpan("c"),
	}
	_, st, err := Run(db, outer, Options{GovernWorkspace: true})
	if err != nil {
		t.Fatal(err)
	}
	if note := findNote(st, "derived input"); note == "" {
		t.Fatal("derived-input join should note it runs ungoverned")
	}

	_, st, err = Run(db, governorJoin(algebra.KindBefore), Options{GovernWorkspace: true})
	if err != nil {
		t.Fatal(err)
	}
	if note := findNote(st, "ungoverned"); note == "" {
		t.Fatal("before-join (unbounded entry) should note it runs ungoverned")
	}
}
