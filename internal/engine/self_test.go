package engine

import (
	"strings"
	"testing"

	"tdb/internal/optimizer"
	"tdb/internal/quel"
	"tdb/internal/workload"
)

// The Section 5 transformed Superstar query, written directly in the
// surface language: a during-semijoin of the associate tuples against
// themselves. The optimizer must detect the self semijoin and the engine
// must run it as the single-scan Figure 7 algorithm — "plan C" with no
// manual plan construction.
const transformedSuperstar = `
range of i is Faculty
range of j is Faculty
retrieve (Name=i.Name, ValidFrom=i.ValidFrom, ValidTo=i.ValidTo)
where i.Rank="Associate" and j.Rank="Associate" and (i during j)
`

func TestSelfSemijoinEndToEnd(t *testing.T) {
	db := NewDB()
	db.MustRegister(workload.Faculty(workload.FacultyConfig{N: 150, Continuous: true, Seed: 21}))

	prog, err := quel.Parse(transformedSuperstar)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := quel.Translate(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := optimizer.Optimize(qs[0].Tree, db, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Self path.
	selfOut, selfStats, err := Run(db, res.Tree, Options{VerifyOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	// Conventional reference.
	nlOut, nlStats, err := Run(db, res.Tree, Options{ForceNestedLoop: true})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "self semijoin", selfOut, nlOut)
	if selfOut.Cardinality() == 0 {
		t.Fatal("empty result; workload too thin")
	}

	// The single-scan algorithm must actually have run, with one state
	// tuple, never evaluating the right subtree.
	var found bool
	for _, nc := range selfStats.Nodes {
		if strings.Contains(nc.Algorithm, "Fig 7") {
			found = true
			if nc.Probe.StateHighWater > 1 {
				t.Errorf("self semijoin state %d, want ≤ 1", nc.Probe.StateHighWater)
			}
		}
	}
	if !found {
		t.Fatalf("single-scan algorithm not used:\n%s", selfStats)
	}
	// One side of the base data is scanned once less than in the
	// conventional plan (the right subtree is skipped entirely).
	if selfStats.TotalTuplesRead() >= nlStats.TotalTuplesRead() {
		t.Errorf("self plan read %d tuples, conventional %d",
			selfStats.TotalTuplesRead(), nlStats.TotalTuplesRead())
	}
	if selfStats.TotalComparisons() >= nlStats.TotalComparisons() {
		t.Errorf("self plan comparisons %d not below conventional %d",
			selfStats.TotalComparisons(), nlStats.TotalComparisons())
	}
}

// A contain-direction self query uses the descending-order variant.
func TestSelfSemijoinContainDirection(t *testing.T) {
	db := NewDB()
	db.MustRegister(workload.Faculty(workload.FacultyConfig{N: 100, Seed: 23}))
	prog, err := quel.Parse(`
range of i is Faculty
range of j is Faculty
retrieve (Name=i.Name, ValidFrom=i.ValidFrom, ValidTo=i.ValidTo)
where i.Rank="Associate" and j.Rank="Associate" and (i contains j)
`)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := quel.Translate(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := optimizer.Optimize(qs[0].Tree, db, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	selfOut, stats, err := Run(db, res.Tree, Options{VerifyOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	nlOut, _, err := Run(db, res.Tree, Options{ForceNestedLoop: true})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "contain self", selfOut, nlOut)
	usedDesc := false
	for _, nc := range stats.Nodes {
		if strings.Contains(nc.Algorithm, "TS↓") {
			usedDesc = true
		}
	}
	if !usedDesc {
		t.Errorf("descending single-scan variant not used:\n%s", stats)
	}
}
