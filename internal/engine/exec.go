package engine

import (
	"errors"
	"fmt"
	"time"

	"tdb/internal/algebra"
	"tdb/internal/core"
	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/obs"
	"tdb/internal/obs/prof"
	"tdb/internal/relation"
	"tdb/internal/storage"
	"tdb/internal/stream"
)

// Options configures execution.
type Options struct {
	// ForceNestedLoop disables the stream algorithms: every join and
	// semijoin runs as a conventional nested loop (with hash joins still
	// used for pure equi-joins), the Section 3 baseline.
	ForceNestedLoop bool
	// ForceNoHash additionally disables hash equi-joins, leaving the
	// pure conventional nested-loop executor.
	ForceNoHash bool
	// PreferMergeJoin evaluates equi-joins by sort-merge instead of
	// hashing — the third conventional strategy of Section 3.
	PreferMergeJoin bool
	// CostBased lets the executor choose between the stream algorithm and
	// the nested loop per recognized temporal join, using the Section 6
	// statistics (catalog estimates over the materialized inputs) instead
	// of always streaming.
	CostBased bool
	// SortMemRows, when positive, bounds the in-memory sort workspace for
	// establishing stream orderings: larger inputs are sorted externally
	// through run files in SpillDir, paying the extra read/write passes
	// of Section 4.1's third tradeoff (accounted in NodeCost).
	SortMemRows int
	// SpillDir receives external-sort run files; required when
	// SortMemRows is set.
	SpillDir string
	// Policy selects the stream read policy (sweep by default).
	Policy core.ReadPolicy
	// RowExec forces the row-at-a-time reference implementation of the
	// stream operators. By default eligible stream joins and semijoins
	// sweep columnar batches (flat endpoint columns, pooled active-list
	// arenas, deferred row materialization — see DESIGN.md "Columnar batch
	// execution"); output is byte-identical either way, and the equivalence
	// property tests hold the two paths to it. The λ read policy, the
	// before-join and the self semijoins run row-at-a-time regardless.
	RowExec bool
	// Parallelism bounds time-range partitioned parallel execution:
	// eligible join and semijoin nodes (and large stored scans) fan out
	// to at most this many shard workers, each running the unchanged
	// single-pass algorithm on its shard. 0 defaults to
	// runtime.GOMAXPROCS(0); 1 disables parallel execution. Results are
	// byte-identical to serial execution at any setting.
	Parallelism int
	// ParallelMinRows is the smallest combined input cardinality the cost
	// model considers parallelizing (0 means DefaultParallelMinRows) —
	// below it shard setup dominates any per-shard saving.
	ParallelMinRows int
	// ForceParallel fans every eligible node out to Parallelism shards,
	// bypassing the size and predicted-speedup gates (the correctness
	// gates — operator kind, read policy, distinct cut points — still
	// apply). Tests and experiments use it to exercise the parallel path
	// on inputs the cost model would run serially.
	ForceParallel bool
	// VerifyOrder makes every stream algorithm check its input ordering.
	VerifyOrder bool
	// GovernWorkspace arms the workspace governor on serial stream joins
	// whose inputs are base-relation scans: the operator runs under the
	// catalog-derived Tables 1–3 ceiling (core Options.Limit) and, when its
	// measured workspace breaches it (statistics drift), the node is
	// re-evaluated by the baseline sort-merge band scan — bounded workspace
	// by construction — with an explain note recording the degradation and
	// the tdb_governor_fallbacks_total counter incremented. Derived inputs
	// and unbounded operator kinds run ungoverned, with a note.
	GovernWorkspace bool
	// Tracer, when non-nil, receives one span per plan node: timestamps,
	// the algorithm chosen, sort/spill decisions, the node's final Probe
	// snapshot, and (for stream operators) the sampled state(t) curve.
	Tracer *obs.Tracer
	// Registry, when non-nil, receives execution metrics: query and row
	// counters, per-operator workspace and duration histograms.
	Registry *obs.Registry
	// Profile turns on the internal/obs/prof resource-accounting layer
	// for this run: every serial plan-node span (and the query root)
	// captures heap alloc/bytes deltas, and plan nodes execute under
	// pprof labels (tdb.query, tdb.node, tdb.op) so CPU and heap
	// profiles slice by operator. Parallel shards aggregate at their
	// node span. Off, the cost is one branch per node.
	Profile bool
	// Events, when non-nil, receives the structured operational journal:
	// slow-query entries (see SlowQuery), governor fallbacks, and — via
	// internal/live sharing these Options — breaker trips and
	// backpressure suspensions.
	Events *obs.EventLog
	// SlowQuery is the wall-clock latency above which a finished run
	// emits a slow-query event to Events. Zero disables the slow-query
	// log.
	SlowQuery time.Duration
	// Interrupt, when non-nil, is polled at every plan-node boundary and
	// periodically inside the row loops of the conventional operators
	// (selection, Cartesian product). A non-nil return aborts the run
	// with that error wrapped in ErrInterrupted — the hook the query
	// server uses to propagate client context cancellation into a
	// running query. Stream operators check only at node granularity.
	Interrupt func() error
}

// ErrInterrupted marks a run aborted by Options.Interrupt; the cause
// (typically context.Canceled or context.DeadlineExceeded) is wrapped and
// visible to errors.Is.
var ErrInterrupted = errors.New("engine: query interrupted")

// interruptEvery bounds how many rows the conventional operators process
// between Interrupt polls.
const interruptEvery = 4096

// checkInterrupt polls the interrupt hook, wrapping its error.
func (ex *executor) checkInterrupt() error {
	if ex.opt.Interrupt == nil {
		return nil
	}
	if err := ex.opt.Interrupt(); err != nil {
		return fmt.Errorf("%w: %w", ErrInterrupted, err)
	}
	return nil
}

// NodeCost is the per-operator cost record of one execution.
type NodeCost struct {
	Label     string
	Algorithm string
	Probe     metrics.Probe
	// SortedRows counts rows that had to be sorted to establish the
	// algorithm's required ordering (0 when the input already had it —
	// the "interesting order" case).
	SortedRows int64
	OutRows    int64
	// PagesRead counts storage pages fetched by a stored scan (0 when
	// served by the buffer pool or scanning an in-memory relation).
	PagesRead int64
	// SortRuns and SortPages account external sorting done to establish
	// this operator's input ordering under a bounded sort workspace.
	SortRuns  int
	SortPages int64
	// Notes record qualitative execution decisions (sort avoided via an
	// interesting order, spill to run files, predicate shape) for the
	// EXPLAIN ANALYZE tree and the JSONL trace.
	Notes []string
}

// Stats aggregates the cost records of one execution.
type Stats struct {
	Nodes []NodeCost
}

func (s *Stats) add(n NodeCost) { s.Nodes = append(s.Nodes, n) }

// Total merges every operator probe into plan-level totals: additive
// counters sum, workspace marks combine by maximum.
func (s *Stats) Total() metrics.Probe {
	var t metrics.Probe
	for i := range s.Nodes {
		t.Merge(&s.Nodes[i].Probe)
	}
	return t
}

// TotalComparisons sums predicate evaluations across operators.
func (s *Stats) TotalComparisons() int64 {
	var t int64
	for _, n := range s.Nodes {
		t += n.Probe.Comparisons
	}
	return t
}

// TotalTuplesRead sums operator input consumption.
func (s *Stats) TotalTuplesRead() int64 {
	var t int64
	for _, n := range s.Nodes {
		t += n.Probe.TuplesRead()
	}
	return t
}

// MaxWorkspace returns the largest operator workspace high-water mark.
func (s *Stats) MaxWorkspace() int64 {
	var m int64
	for _, n := range s.Nodes {
		if w := n.Probe.Workspace(); w > m {
			m = w
		}
	}
	return m
}

// TotalSortedRows sums the sorting work spent establishing stream orders.
func (s *Stats) TotalSortedRows() int64 {
	var t int64
	for _, n := range s.Nodes {
		t += n.SortedRows
	}
	return t
}

// TotalPagesRead sums storage page fetches across stored scans.
func (s *Stats) TotalPagesRead() int64 {
	var t int64
	for _, n := range s.Nodes {
		t += n.PagesRead
	}
	return t
}

// String renders a per-node cost table.
func (s *Stats) String() string {
	out := ""
	for _, n := range s.Nodes {
		out += fmt.Sprintf("%-34s %-28s out=%-8d sort=%-8d %s\n",
			n.Label, n.Algorithm, n.OutRows, n.SortedRows, n.Probe.String())
	}
	return out
}

// result is a materialized intermediate.
type result struct {
	schema *relation.Schema
	rows   []relation.Row
}

// spanned pairs a row with a precomputed lifespan so the generic stream
// algorithms can treat heterogeneous join sides uniformly.
type spanned struct {
	row  relation.Row
	span interval.Interval
}

func spannedSpan(s spanned) interval.Interval { return s.span }

func wrap(rows []relation.Row, span core.Span[relation.Row]) []spanned {
	out := make([]spanned, len(rows))
	for i, r := range rows {
		out[i] = spanned{row: r, span: span(r)}
	}
	return out
}

// establishOrder produces the rows wrapped with their (possibly derived)
// lifespans in the given order. With an unbounded sort workspace the sort
// is in-memory; under Options.SortMemRows larger inputs run through the
// external merge sort, whose run and page counts are charged to cost —
// the Section 4.1 passes-for-order tradeoff inside a query plan.
func (ex *executor) establishOrder(rows []relation.Row, span core.Span[relation.Row],
	o relation.Order, schema *relation.Schema, cost *NodeCost) ([]spanned, error) {

	w := wrap(rows, span)
	if relation.SortedSpans(w, spannedSpan, o) {
		cost.Notes = append(cost.Notes, fmt.Sprintf("order %v already established (interesting order)", o))
		return w, nil
	}
	cost.SortedRows += int64(len(w))
	if ex.opt.SortMemRows <= 0 || len(rows) <= ex.opt.SortMemRows {
		relation.SortSpans(w, spannedSpan, o)
		cost.Notes = append(cost.Notes, fmt.Sprintf("sorted %d rows in memory for order %v", len(w), o))
		return w, nil
	}
	var st storage.SortStats
	less := func(a, b relation.Row) bool {
		return o.Compare(span(a), span(b)) < 0
	}
	sorted, err := storage.ExternalSort(stream.FromSlice(rows), schema, less,
		ex.opt.SortMemRows, ex.opt.SpillDir, &st)
	if err != nil {
		return nil, err
	}
	out, err := stream.Collect(sorted)
	if err != nil {
		return nil, err
	}
	cost.SortRuns += st.Runs
	cost.SortPages += st.PagesRead + st.PagesWritten
	cost.Notes = append(cost.Notes, fmt.Sprintf(
		"external sort for order %v: %d rows spilled to %d runs, %d pages", o, len(rows), st.Runs, st.PagesRead+st.PagesWritten))
	return wrap(out, span), nil
}

func wrappedStream(xs []spanned) stream.Stream[spanned] { return stream.FromSlice(xs) }

// Run evaluates an optimized (temporal-atom-free) algebra expression and
// returns the materialized result with per-operator statistics. When
// Options.Tracer is set, every plan node emits a span; when
// Options.Registry is set, plan-level metrics are published after the run.
func Run(db *DB, e algebra.Expr, opt Options) (*relation.Relation, *Stats, error) {
	ex := &executor{db: db, opt: opt, stats: &Stats{}}
	if opt.Profile {
		// The master switch stays on once any run profiles; unprofiled
		// runs skip every prof call regardless, so they are unaffected.
		prof.SetEnabled(true)
	}
	start := time.Now()
	if opt.Tracer != nil {
		ex.cur = opt.Tracer.BeginQuery(e.Label())
		if opt.Profile {
			ex.cur.ProfBegin()
		}
	}
	root := ex.cur
	res, err := ex.eval(e)
	if err != nil {
		root.Fail(opt.Tracer, err)
		ex.publish(e.Label(), start, 0, err)
		return nil, nil, err
	}
	total := ex.stats.Total()
	root.Finish(opt.Tracer, total, obs.NodeStats{
		Algorithm: "query",
		OutRows:   int64(len(res.rows)),
	})
	ex.publish(e.Label(), start, int64(len(res.rows)), nil)
	rel := relation.New("result", res.schema)
	rel.Rows = res.rows
	return rel, ex.stats, nil
}

// publish pushes the run's plan-level metrics into the configured
// registry (per-operator probe counters go through the single
// obs.PublishProbe export path) and emits the slow-query event when the
// run crossed the Options.SlowQuery threshold.
func (ex *executor) publish(label string, start time.Time, outRows int64, runErr error) {
	elapsed := time.Since(start)
	if ex.opt.Events != nil && ex.opt.SlowQuery > 0 && elapsed >= ex.opt.SlowQuery {
		detail := map[string]string{
			"elapsed_ms": fmt.Sprintf("%.3f", elapsed.Seconds()*1e3),
			"rows_out":   fmt.Sprintf("%d", outRows),
		}
		if runErr != nil {
			detail["error"] = runErr.Error()
		}
		ex.opt.Events.Emit(obs.EventSlowQuery, label, detail)
	}
	reg := ex.opt.Registry
	if reg == nil {
		return
	}
	reg.Counter("tdb_queries_total", "queries executed").Inc()
	if runErr != nil {
		reg.Counter("tdb_query_errors_total", "queries that failed").Inc()
	}
	reg.Counter("tdb_rows_out_total", "result rows returned by queries").Add(outRows)
	reg.Histogram("tdb_query_duration_seconds", "wall-clock query latency",
		obs.ExpBuckets(0.0001, 10, 7)).Observe(elapsed.Seconds())
	for i := range ex.stats.Nodes {
		n := &ex.stats.Nodes[i]
		reg.PublishProbe(&n.Probe)
		reg.Counter("tdb_sort_rows_total", "rows sorted to establish stream orderings").Add(n.SortedRows)
	}
}

type executor struct {
	db    *DB
	opt   Options
	stats *Stats
	// cur is the span of the plan node currently being evaluated; nil when
	// tracing is off.
	cur *obs.Span
}

// eval dispatches a plan node, wrapping it in a trace span. Every evalX
// appends exactly one NodeCost for itself as the last stats entry (children
// append theirs first during recursion), which is what lets this wrapper
// attach the correct cost record to the node's span.
//
// Under Options.Profile the span additionally opens an allocation window
// (ProfBegin; valid here because every node span begins and finishes on
// the query goroutine — parallel shards aggregate into their node) and
// the node body runs under pprof labels so profile samples slice by
// operator.
func (ex *executor) eval(e algebra.Expr) (*result, error) {
	if err := ex.checkInterrupt(); err != nil {
		return nil, err
	}
	if ex.opt.Tracer == nil {
		if ex.opt.Profile {
			var res *result
			var err error
			prof.Do("q0", e.Label(), exprOp(e), func() { res, err = ex.evalNode(e) })
			return res, err
		}
		return ex.evalNode(e)
	}
	parent := ex.cur
	span := ex.opt.Tracer.Begin(parent, e.Label())
	ex.cur = span
	var res *result
	var err error
	if ex.opt.Profile {
		span.ProfBegin()
		prof.Do(fmt.Sprintf("q%d", span.QueryID), e.Label(), exprOp(e), func() {
			res, err = ex.evalNode(e)
		})
	} else {
		res, err = ex.evalNode(e)
	}
	ex.cur = parent
	if err != nil {
		span.Fail(ex.opt.Tracer, err)
		return nil, err
	}
	if n := len(ex.stats.Nodes); n > 0 {
		own := &ex.stats.Nodes[n-1]
		span.Finish(ex.opt.Tracer, own.Probe, obs.NodeStats{
			Algorithm:  own.Algorithm,
			OutRows:    own.OutRows,
			SortedRows: own.SortedRows,
			SortRuns:   own.SortRuns,
			SortPages:  own.SortPages,
			PagesRead:  own.PagesRead,
			Notes:      own.Notes,
		})
	}
	return res, nil
}

// exprOp names a plan node's operator kind for the tdb.op pprof label.
func exprOp(e algebra.Expr) string {
	switch e.(type) {
	case *algebra.Scan:
		return "scan"
	case *algebra.Select:
		return "select"
	case *algebra.Product:
		return "product"
	case *algebra.Join:
		return "join"
	case *algebra.Semijoin:
		return "semijoin"
	case *algebra.Project:
		return "project"
	case *algebra.Aggregate:
		return "aggregate"
	}
	return "node"
}

func (ex *executor) evalNode(e algebra.Expr) (*result, error) {
	switch n := e.(type) {
	case *algebra.Scan:
		return ex.evalScan(n)
	case *algebra.Select:
		return ex.evalSelect(n)
	case *algebra.Product:
		return ex.evalProduct(n)
	case *algebra.Join:
		return ex.evalJoin(n)
	case *algebra.Semijoin:
		return ex.evalSemijoin(n)
	case *algebra.Project:
		return ex.evalProject(n)
	case *algebra.Aggregate:
		return ex.evalAggregate(n)
	}
	return nil, fmt.Errorf("engine: unknown expression %T", e)
}

func (ex *executor) evalScan(n *algebra.Scan) (*result, error) {
	base, err := ex.db.Relation(n.Relation)
	if err != nil {
		return nil, err
	}
	probe := metrics.Probe{}
	probe.Passes = 1

	if hf, ok := ex.db.stored[n.Relation]; ok {
		cost := NodeCost{Label: n.Label(), Algorithm: "stored scan", Probe: probe}
		before := hf.Stats().PagesRead
		rows, parallel, err := ex.parallelScan(hf, &cost)
		if err != nil {
			return nil, err
		}
		if !parallel {
			if rows, err = stream.Collect(hf.Scan()); err != nil {
				return nil, err
			}
			cost.Probe.ReadLeft = int64(len(rows))
		}
		cost.OutRows = int64(len(rows))
		cost.PagesRead = hf.Stats().PagesRead - before
		ex.stats.add(cost)
		return &result{schema: base.Schema.Rename(n.Var()), rows: rows}, nil
	}

	probe.ReadLeft = int64(base.Cardinality())
	ex.stats.add(NodeCost{
		Label: n.Label(), Algorithm: "scan", Probe: probe,
		OutRows: int64(base.Cardinality()),
	})
	return &result{schema: base.Schema.Rename(n.Var()), rows: base.Rows}, nil
}

func (ex *executor) evalSelect(n *algebra.Select) (*result, error) {
	in, err := ex.eval(n.Input)
	if err != nil {
		return nil, err
	}
	pred, err := compilePred(n.Pred, in.schema)
	if err != nil {
		return nil, err
	}
	probe := metrics.Probe{}
	var out []relation.Row
	for i, r := range in.rows {
		if i%interruptEvery == 0 {
			if err := ex.checkInterrupt(); err != nil {
				return nil, err
			}
		}
		probe.IncReadLeft()
		probe.IncComparisons(1)
		if pred(r) {
			out = append(out, r)
		}
	}
	probe.IncEmitted(int64(len(out)))
	ex.stats.add(NodeCost{
		Label: n.Label(), Algorithm: "filter", Probe: probe, OutRows: int64(len(out)),
		Notes: []string{fmt.Sprintf("%d-atom conjunction over %d rows", predAtoms(n.Pred), len(in.rows))},
	})
	return &result{schema: in.schema, rows: out}, nil
}

func (ex *executor) evalProduct(n *algebra.Product) (*result, error) {
	l, err := ex.eval(n.L)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(n.R)
	if err != nil {
		return nil, err
	}
	probe := metrics.Probe{}
	out := make([]relation.Row, 0, len(l.rows)*len(r.rows))
	for i, lr := range l.rows {
		if i%interruptEvery == 0 || len(r.rows) >= interruptEvery {
			if err := ex.checkInterrupt(); err != nil {
				return nil, err
			}
		}
		probe.IncReadLeft()
		for _, rr := range r.rows {
			probe.IncReadRight()
			out = append(out, relation.ConcatRows(lr, rr))
		}
	}
	probe.IncEmitted(int64(len(out)))
	ex.stats.add(NodeCost{Label: "×", Algorithm: "cartesian", Probe: probe, OutRows: int64(len(out))})
	return &result{schema: relation.Concat(l.schema, r.schema, "", ""), rows: out}, nil
}

func (ex *executor) evalProject(n *algebra.Project) (*result, error) {
	in, err := ex.eval(n.Input)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(n.Cols))
	cols := make([]relation.Column, len(n.Cols))
	ts, te := -1, -1
	for i, c := range n.Cols {
		j := in.schema.ColumnIndex(c.From.Name())
		if j < 0 {
			return nil, fmt.Errorf("engine: projection column %s not in %s", c.From, in.schema)
		}
		idx[i] = j
		cols[i] = relation.Column{Name: c.Name, Kind: in.schema.Cols[j].Kind}
		if c.Name == n.TSName {
			ts = i
		}
		if c.Name == n.TEName {
			te = i
		}
	}
	schema, err := relation.NewSchema(cols, ts, te)
	if err != nil {
		return nil, err
	}
	probe := metrics.Probe{}
	out := make([]relation.Row, 0, len(in.rows))
	seen := map[string]bool{}
	for _, r := range in.rows {
		probe.IncReadLeft()
		row := make(relation.Row, len(idx))
		for i, j := range idx {
			row[i] = r[j]
		}
		if n.Distinct {
			k := row.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		out = append(out, row)
	}
	probe.IncEmitted(int64(len(out)))
	ex.stats.add(NodeCost{Label: n.Label(), Algorithm: "project", Probe: probe, OutRows: int64(len(out))})
	return &result{schema: schema, rows: out}, nil
}
