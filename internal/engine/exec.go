package engine

import (
	"fmt"

	"tdb/internal/algebra"
	"tdb/internal/core"
	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/relation"
	"tdb/internal/storage"
	"tdb/internal/stream"
)

// Options configures execution.
type Options struct {
	// ForceNestedLoop disables the stream algorithms: every join and
	// semijoin runs as a conventional nested loop (with hash joins still
	// used for pure equi-joins), the Section 3 baseline.
	ForceNestedLoop bool
	// ForceNoHash additionally disables hash equi-joins, leaving the
	// pure conventional nested-loop executor.
	ForceNoHash bool
	// PreferMergeJoin evaluates equi-joins by sort-merge instead of
	// hashing — the third conventional strategy of Section 3.
	PreferMergeJoin bool
	// CostBased lets the executor choose between the stream algorithm and
	// the nested loop per recognized temporal join, using the Section 6
	// statistics (catalog estimates over the materialized inputs) instead
	// of always streaming.
	CostBased bool
	// SortMemRows, when positive, bounds the in-memory sort workspace for
	// establishing stream orderings: larger inputs are sorted externally
	// through run files in SpillDir, paying the extra read/write passes
	// of Section 4.1's third tradeoff (accounted in NodeCost).
	SortMemRows int
	// SpillDir receives external-sort run files; required when
	// SortMemRows is set.
	SpillDir string
	// Policy selects the stream read policy (sweep by default).
	Policy core.ReadPolicy
	// VerifyOrder makes every stream algorithm check its input ordering.
	VerifyOrder bool
}

// NodeCost is the per-operator cost record of one execution.
type NodeCost struct {
	Label     string
	Algorithm string
	Probe     metrics.Probe
	// SortedRows counts rows that had to be sorted to establish the
	// algorithm's required ordering (0 when the input already had it —
	// the "interesting order" case).
	SortedRows int64
	OutRows    int64
	// PagesRead counts storage pages fetched by a stored scan (0 when
	// served by the buffer pool or scanning an in-memory relation).
	PagesRead int64
	// SortRuns and SortPages account external sorting done to establish
	// this operator's input ordering under a bounded sort workspace.
	SortRuns  int
	SortPages int64
}

// Stats aggregates the cost records of one execution.
type Stats struct {
	Nodes []NodeCost
}

func (s *Stats) add(n NodeCost) { s.Nodes = append(s.Nodes, n) }

// TotalComparisons sums predicate evaluations across operators.
func (s *Stats) TotalComparisons() int64 {
	var t int64
	for _, n := range s.Nodes {
		t += n.Probe.Comparisons
	}
	return t
}

// TotalTuplesRead sums operator input consumption.
func (s *Stats) TotalTuplesRead() int64 {
	var t int64
	for _, n := range s.Nodes {
		t += n.Probe.TuplesRead()
	}
	return t
}

// MaxWorkspace returns the largest operator workspace high-water mark.
func (s *Stats) MaxWorkspace() int64 {
	var m int64
	for _, n := range s.Nodes {
		if w := n.Probe.Workspace(); w > m {
			m = w
		}
	}
	return m
}

// TotalSortedRows sums the sorting work spent establishing stream orders.
func (s *Stats) TotalSortedRows() int64 {
	var t int64
	for _, n := range s.Nodes {
		t += n.SortedRows
	}
	return t
}

// TotalPagesRead sums storage page fetches across stored scans.
func (s *Stats) TotalPagesRead() int64 {
	var t int64
	for _, n := range s.Nodes {
		t += n.PagesRead
	}
	return t
}

// String renders a per-node cost table.
func (s *Stats) String() string {
	out := ""
	for _, n := range s.Nodes {
		out += fmt.Sprintf("%-34s %-28s out=%-8d sort=%-8d %s\n",
			n.Label, n.Algorithm, n.OutRows, n.SortedRows, n.Probe.String())
	}
	return out
}

// result is a materialized intermediate.
type result struct {
	schema *relation.Schema
	rows   []relation.Row
}

// spanned pairs a row with a precomputed lifespan so the generic stream
// algorithms can treat heterogeneous join sides uniformly.
type spanned struct {
	row  relation.Row
	span interval.Interval
}

func spannedSpan(s spanned) interval.Interval { return s.span }

func wrap(rows []relation.Row, span core.Span[relation.Row]) []spanned {
	out := make([]spanned, len(rows))
	for i, r := range rows {
		out[i] = spanned{row: r, span: span(r)}
	}
	return out
}

// establishOrder produces the rows wrapped with their (possibly derived)
// lifespans in the given order. With an unbounded sort workspace the sort
// is in-memory; under Options.SortMemRows larger inputs run through the
// external merge sort, whose run and page counts are charged to cost —
// the Section 4.1 passes-for-order tradeoff inside a query plan.
func (ex *executor) establishOrder(rows []relation.Row, span core.Span[relation.Row],
	o relation.Order, schema *relation.Schema, cost *NodeCost) ([]spanned, error) {

	w := wrap(rows, span)
	if relation.SortedSpans(w, spannedSpan, o) {
		return w, nil
	}
	cost.SortedRows += int64(len(w))
	if ex.opt.SortMemRows <= 0 || len(rows) <= ex.opt.SortMemRows {
		relation.SortSpans(w, spannedSpan, o)
		return w, nil
	}
	var st storage.SortStats
	less := func(a, b relation.Row) bool {
		return o.Compare(span(a), span(b)) < 0
	}
	sorted, err := storage.ExternalSort(stream.FromSlice(rows), schema, less,
		ex.opt.SortMemRows, ex.opt.SpillDir, &st)
	if err != nil {
		return nil, err
	}
	out, err := stream.Collect(sorted)
	if err != nil {
		return nil, err
	}
	cost.SortRuns += st.Runs
	cost.SortPages += st.PagesRead + st.PagesWritten
	return wrap(out, span), nil
}

func wrappedStream(xs []spanned) stream.Stream[spanned] { return stream.FromSlice(xs) }

// Run evaluates an optimized (temporal-atom-free) algebra expression and
// returns the materialized result with per-operator statistics.
func Run(db *DB, e algebra.Expr, opt Options) (*relation.Relation, *Stats, error) {
	ex := &executor{db: db, opt: opt, stats: &Stats{}}
	res, err := ex.eval(e)
	if err != nil {
		return nil, nil, err
	}
	rel := relation.New("result", res.schema)
	rel.Rows = res.rows
	return rel, ex.stats, nil
}

type executor struct {
	db    *DB
	opt   Options
	stats *Stats
}

func (ex *executor) eval(e algebra.Expr) (*result, error) {
	switch n := e.(type) {
	case *algebra.Scan:
		return ex.evalScan(n)
	case *algebra.Select:
		return ex.evalSelect(n)
	case *algebra.Product:
		return ex.evalProduct(n)
	case *algebra.Join:
		return ex.evalJoin(n)
	case *algebra.Semijoin:
		return ex.evalSemijoin(n)
	case *algebra.Project:
		return ex.evalProject(n)
	case *algebra.Aggregate:
		return ex.evalAggregate(n)
	}
	return nil, fmt.Errorf("engine: unknown expression %T", e)
}

func (ex *executor) evalScan(n *algebra.Scan) (*result, error) {
	base, err := ex.db.Relation(n.Relation)
	if err != nil {
		return nil, err
	}
	probe := metrics.Probe{}
	probe.Passes = 1

	if hf, ok := ex.db.stored[n.Relation]; ok {
		before := hf.Stats().PagesRead
		rows, err := stream.Collect(hf.Scan())
		if err != nil {
			return nil, err
		}
		probe.ReadLeft = int64(len(rows))
		ex.stats.add(NodeCost{
			Label: n.Label(), Algorithm: "stored scan", Probe: probe,
			OutRows: int64(len(rows)), PagesRead: hf.Stats().PagesRead - before,
		})
		return &result{schema: base.Schema.Rename(n.Var()), rows: rows}, nil
	}

	probe.ReadLeft = int64(base.Cardinality())
	ex.stats.add(NodeCost{
		Label: n.Label(), Algorithm: "scan", Probe: probe,
		OutRows: int64(base.Cardinality()),
	})
	return &result{schema: base.Schema.Rename(n.Var()), rows: base.Rows}, nil
}

func (ex *executor) evalSelect(n *algebra.Select) (*result, error) {
	in, err := ex.eval(n.Input)
	if err != nil {
		return nil, err
	}
	pred, err := compilePred(n.Pred, in.schema)
	if err != nil {
		return nil, err
	}
	probe := metrics.Probe{}
	var out []relation.Row
	for _, r := range in.rows {
		probe.IncReadLeft()
		probe.IncComparisons(1)
		if pred(r) {
			out = append(out, r)
		}
	}
	probe.IncEmitted(int64(len(out)))
	ex.stats.add(NodeCost{Label: n.Label(), Algorithm: "filter", Probe: probe, OutRows: int64(len(out))})
	return &result{schema: in.schema, rows: out}, nil
}

func (ex *executor) evalProduct(n *algebra.Product) (*result, error) {
	l, err := ex.eval(n.L)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(n.R)
	if err != nil {
		return nil, err
	}
	probe := metrics.Probe{}
	out := make([]relation.Row, 0, len(l.rows)*len(r.rows))
	for _, lr := range l.rows {
		probe.IncReadLeft()
		for _, rr := range r.rows {
			probe.IncReadRight()
			out = append(out, relation.ConcatRows(lr, rr))
		}
	}
	probe.IncEmitted(int64(len(out)))
	ex.stats.add(NodeCost{Label: "×", Algorithm: "cartesian", Probe: probe, OutRows: int64(len(out))})
	return &result{schema: relation.Concat(l.schema, r.schema, "", ""), rows: out}, nil
}

func (ex *executor) evalProject(n *algebra.Project) (*result, error) {
	in, err := ex.eval(n.Input)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(n.Cols))
	cols := make([]relation.Column, len(n.Cols))
	ts, te := -1, -1
	for i, c := range n.Cols {
		j := in.schema.ColumnIndex(c.From.Name())
		if j < 0 {
			return nil, fmt.Errorf("engine: projection column %s not in %s", c.From, in.schema)
		}
		idx[i] = j
		cols[i] = relation.Column{Name: c.Name, Kind: in.schema.Cols[j].Kind}
		if c.Name == n.TSName {
			ts = i
		}
		if c.Name == n.TEName {
			te = i
		}
	}
	schema, err := relation.NewSchema(cols, ts, te)
	if err != nil {
		return nil, err
	}
	probe := metrics.Probe{}
	out := make([]relation.Row, 0, len(in.rows))
	seen := map[string]bool{}
	for _, r := range in.rows {
		probe.IncReadLeft()
		row := make(relation.Row, len(idx))
		for i, j := range idx {
			row[i] = r[j]
		}
		if n.Distinct {
			k := row.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		out = append(out, row)
	}
	probe.IncEmitted(int64(len(out)))
	ex.stats.add(NodeCost{Label: n.Label(), Algorithm: "project", Probe: probe, OutRows: int64(len(out))})
	return &result{schema: schema, rows: out}, nil
}
