package engine

import (
	"fmt"

	"tdb/internal/algebra"
	"tdb/internal/core"
	"tdb/internal/interval"
	"tdb/internal/relation"
	"tdb/internal/value"
)

// rowPred is a compiled predicate over rows of one schema.
type rowPred func(relation.Row) bool

// pairPred is a compiled predicate over (left row, right row) pairs.
type pairPred func(l, r relation.Row) bool

// operandLoader resolves an operand to a value extractor over one schema.
func operandLoader(o algebra.Operand, s *relation.Schema) (func(relation.Row) value.Value, error) {
	if o.Param > 0 {
		return nil, fmt.Errorf("engine: unbound parameter $%d reached execution; bind values first (quel.BindParams)", o.Param)
	}
	if o.IsConst {
		c := o.Const
		return func(relation.Row) value.Value { return c }, nil
	}
	idx := s.ColumnIndex(o.Col.Name())
	if idx < 0 {
		return nil, fmt.Errorf("engine: column %s not in %s", o.Col, s)
	}
	return func(r relation.Row) value.Value { return r[idx] }, nil
}

// predAtoms counts the atoms of a conjunction — comparison atoms plus any
// not-yet-expanded temporal atoms — the predicate-shape figure reported in
// trace notes.
func predAtoms(p algebra.Predicate) int {
	return len(p.Atoms) + len(p.Temporal)
}

// compilePred compiles the conjunction against one schema. Temporal atoms
// must have been expanded by the optimizer before execution.
func compilePred(p algebra.Predicate, s *relation.Schema) (rowPred, error) {
	if len(p.Temporal) > 0 {
		return nil, fmt.Errorf("engine: unexpanded temporal atoms %v reached execution", p.Temporal)
	}
	type cmp struct {
		l, r func(relation.Row) value.Value
		op   algebra.CmpOp
	}
	cmps := make([]cmp, len(p.Atoms))
	for i, a := range p.Atoms {
		l, err := operandLoader(a.L, s)
		if err != nil {
			return nil, err
		}
		r, err := operandLoader(a.R, s)
		if err != nil {
			return nil, err
		}
		cmps[i] = cmp{l: l, r: r, op: a.Op}
	}
	return func(row relation.Row) bool {
		for _, c := range cmps {
			if !c.op.Eval(c.l(row).Compare(c.r(row))) {
				return false
			}
		}
		return true
	}, nil
}

// compilePairPred compiles the conjunction against a (left, right) row
// pair, resolving each operand in whichever schema defines it.
func compilePairPred(p algebra.Predicate, ls, rs *relation.Schema) (pairPred, error) {
	if len(p.Temporal) > 0 {
		return nil, fmt.Errorf("engine: unexpanded temporal atoms %v reached execution", p.Temporal)
	}
	type side struct {
		left bool
		get  func(relation.Row) value.Value
	}
	load := func(o algebra.Operand) (side, error) {
		if o.IsConst {
			c := o.Const
			return side{left: true, get: func(relation.Row) value.Value { return c }}, nil
		}
		if ls.ColumnIndex(o.Col.Name()) >= 0 {
			g, err := operandLoader(o, ls)
			return side{left: true, get: g}, err
		}
		if rs.ColumnIndex(o.Col.Name()) >= 0 {
			g, err := operandLoader(o, rs)
			return side{left: false, get: g}, err
		}
		return side{}, fmt.Errorf("engine: column %s in neither %s nor %s", o.Col, ls, rs)
	}
	type cmp struct {
		l, r side
		op   algebra.CmpOp
	}
	cmps := make([]cmp, len(p.Atoms))
	for i, a := range p.Atoms {
		l, err := load(a.L)
		if err != nil {
			return nil, err
		}
		r, err := load(a.R)
		if err != nil {
			return nil, err
		}
		cmps[i] = cmp{l: l, r: r, op: a.Op}
	}
	pick := func(s side, l, r relation.Row) value.Value {
		if s.left {
			return s.get(l)
		}
		return s.get(r)
	}
	return func(l, r relation.Row) bool {
		for _, c := range cmps {
			if !c.op.Eval(pick(c.l, l, r).Compare(pick(c.r, l, r))) {
				return false
			}
		}
		return true
	}, nil
}

// equiKeys extracts the column-to-column equality atoms usable as hash-join
// keys, returning the key extractors and the residual conjunction.
func equiKeys(p algebra.Predicate, ls, rs *relation.Schema) (lk, rk []int, residual algebra.Predicate) {
	residual.Temporal = p.Temporal
	for _, a := range p.Atoms {
		if a.Op == algebra.EQ && !a.L.IsConst && !a.R.IsConst {
			li, ri := ls.ColumnIndex(a.L.Col.Name()), rs.ColumnIndex(a.R.Col.Name())
			if li >= 0 && ri >= 0 {
				lk, rk = append(lk, li), append(rk, ri)
				continue
			}
			// The atom may be written right-to-left.
			li, ri = ls.ColumnIndex(a.R.Col.Name()), rs.ColumnIndex(a.L.Col.Name())
			if li >= 0 && ri >= 0 {
				lk, rk = append(lk, li), append(rk, ri)
				continue
			}
		}
		residual.Atoms = append(residual.Atoms, a)
	}
	return lk, rk, residual
}

// spanAccessor builds a lifespan extractor from a recognized SpanRef. A
// point span (TS == TE, the before-join case) maps to the degenerate
// interval [t, t).
func spanAccessor(sr algebra.SpanRef, s *relation.Schema) (core.Span[relation.Row], error) {
	tsIdx := s.ColumnIndex(sr.TS.Name())
	teIdx := s.ColumnIndex(sr.TE.Name())
	if tsIdx < 0 || teIdx < 0 {
		return nil, fmt.Errorf("engine: span %v not resolvable in %s", sr, s)
	}
	return func(r relation.Row) interval.Interval {
		return interval.Interval{Start: r[tsIdx].AsTime(), End: r[teIdx].AsTime()}
	}, nil
}
