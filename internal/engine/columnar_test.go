package engine

import (
	"errors"
	"fmt"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/core"
	"tdb/internal/fault"
	"tdb/internal/obs"
	"tdb/internal/relation"
	"tdb/internal/workload"
)

// rowOpt runs the row-at-a-time reference path serially.
func rowOpt() Options {
	return Options{RowExec: true, Parallelism: 1, VerifyOrder: true}
}

// colOpt runs the default columnar path serially.
func colOpt() Options {
	return Options{Parallelism: 1, VerifyOrder: true}
}

// columnarWorkloadDB builds one randomized two-relation database. The
// configurations vary density, duration mix and size so the sweeps hit
// empty states, deep states and boundary ties across the matrix.
func columnarWorkloadDB(t *testing.T, n int, seed int64, lambda, meanDur float64, longFrac float64) *DB {
	t.Helper()
	db := NewDB()
	xs := workload.Tuples(workload.Config{N: n, Lambda: lambda, MeanDur: meanDur, LongFrac: longFrac, Seed: seed}, "x")
	ys := workload.Tuples(workload.Config{N: 1 + n/2, Lambda: lambda * 2, MeanDur: meanDur / 4, Seed: seed + 1}, "y")
	if err := db.Register(relation.FromTuples("X", xs)); err != nil {
		t.Fatal(err)
	}
	if err := db.Register(relation.FromTuples("Y", ys)); err != nil {
		t.Fatal(err)
	}
	return db
}

// The columnar path must reproduce the row reference byte for byte — same
// rows, same order — and do the same logical work (reads, comparisons,
// emissions) for every operator kind across randomized workloads. Only
// state-grow accounting may differ (the arena pre-sizes its active lists).
func TestColumnarMatchesRowReferenceExactly(t *testing.T) {
	configs := []struct {
		n       int
		seed    int64
		lambda  float64
		meanDur float64
		long    float64
	}{
		{0, 1, 1, 10, 0},
		{1, 2, 1, 10, 0},
		{40, 3, 0.5, 30, 0.2},
		{300, 4, 2, 5, 0},
		{300, 5, 1, 40, 0.3},
	}
	joins := []algebra.TemporalKind{
		algebra.KindContain, algebra.KindContained, algebra.KindOverlap, algebra.KindBefore,
	}
	semis := []algebra.TemporalKind{
		algebra.KindContained, algebra.KindContain, algebra.KindOverlap, algebra.KindBefore,
	}
	for _, cfg := range configs {
		db := columnarWorkloadDB(t, cfg.n, cfg.seed, cfg.lambda, cfg.meanDur, cfg.long)
		for _, kind := range joins {
			name := fmt.Sprintf("join %v n=%d seed=%d", kind, cfg.n, cfg.seed)
			ref, refStats, err := Run(db, joinOf(kind), rowOpt())
			if err != nil {
				t.Fatal(err)
			}
			got, gotStats, err := Run(db, joinOf(kind), colOpt())
			if err != nil {
				t.Fatal(err)
			}
			identicalRows(t, name, ref, got)
			sameLogicalWork(t, name, refStats, gotStats)
		}
		for _, kind := range semis {
			name := fmt.Sprintf("semijoin %v n=%d seed=%d", kind, cfg.n, cfg.seed)
			ref, refStats, err := Run(db, semijoinOf(kind), rowOpt())
			if err != nil {
				t.Fatal(err)
			}
			got, gotStats, err := Run(db, semijoinOf(kind), colOpt())
			if err != nil {
				t.Fatal(err)
			}
			identicalRows(t, name, ref, got)
			sameLogicalWork(t, name, refStats, gotStats)
		}
	}
}

// sameLogicalWork checks the plan-level probe totals the batch kernels
// promise to preserve: tuple reads, comparisons — growth counts are
// layout-dependent and excluded.
func sameLogicalWork(t *testing.T, name string, ref, got *Stats) {
	t.Helper()
	if a, b := ref.TotalTuplesRead(), got.TotalTuplesRead(); a != b {
		t.Errorf("%s: row path read %d tuples, columnar %d", name, a, b)
	}
	if a, b := ref.TotalComparisons(), got.TotalComparisons(); a != b {
		t.Errorf("%s: row path made %d comparisons, columnar %d", name, a, b)
	}
}

// The parallel columnar drivers (index shards, gathered columns, deferred
// materialization) must also land on the row reference's exact sequence,
// and so must the row parallel drivers on the same plan — all four
// path × fan-out combinations agree.
func TestColumnarParallelMatchesRowReference(t *testing.T) {
	db := newPoissonDB(t, 600)
	kinds := []algebra.TemporalKind{algebra.KindContain, algebra.KindContained, algebra.KindOverlap}
	for _, kind := range kinds {
		for _, q := range []algebra.Expr{joinOf(kind), semijoinOf(kind)} {
			ref, _, err := Run(db, q, rowOpt())
			if err != nil {
				t.Fatal(err)
			}
			if len(ref.Rows) == 0 {
				t.Fatalf("%v: degenerate test, no output rows", kind)
			}
			for _, k := range []int{2, 3, 8} {
				colPar := forcePar(k)
				got, stats, err := Run(db, q, colPar)
				if err != nil {
					t.Fatalf("%v ×%d: %v", kind, k, err)
				}
				identicalRows(t, fmt.Sprintf("%v columnar ×%d vs row serial", kind, k), ref, got)
				if !hasNote(stats, "columnar batch kernels") {
					t.Errorf("%v ×%d: columnar fan-out not recorded in notes", kind, k)
				}
				rowPar := forcePar(k)
				rowPar.RowExec = true
				rp, stats, err := Run(db, q, rowPar)
				if err != nil {
					t.Fatalf("%v row ×%d: %v", kind, k, err)
				}
				identicalRows(t, fmt.Sprintf("%v row ×%d vs row serial", kind, k), ref, rp)
				if hasNote(stats, "columnar batch kernels") {
					t.Errorf("%v ×%d: RowExec run claims columnar kernels", kind, k)
				}
			}
		}
	}
}

// Under statistics drift the governed columnar join must breach the same
// admission ceiling as the row path, degrade to the same baseline band
// scan, and return the identical sequence.
func TestColumnarGovernorFallbackMatchesRow(t *testing.T) {
	for _, kind := range []algebra.TemporalKind{algebra.KindContain, algebra.KindOverlap} {
		db := governorDB(t, 40)
		reg := obs.NewRegistry()
		col, colStats, err := Run(db, governorJoin(kind), Options{GovernWorkspace: true, Registry: reg})
		if err != nil {
			t.Fatalf("%v governed columnar: %v", kind, err)
		}
		if note := findNote(colStats, "degraded to baseline sort-merge"); note == "" {
			t.Fatalf("%v: governed columnar run did not degrade; notes: %+v", kind, colStats.Nodes)
		}
		if got := reg.Counter("tdb_governor_fallbacks_total", "").Value(); got != 1 {
			t.Fatalf("%v: fallback counter %d, want 1", kind, got)
		}
		row, rowStats, err := Run(db, governorJoin(kind), Options{GovernWorkspace: true, RowExec: true})
		if err != nil {
			t.Fatalf("%v governed row: %v", kind, err)
		}
		if note := findNote(rowStats, "degraded to baseline sort-merge"); note == "" {
			t.Fatalf("%v: governed row run did not degrade", kind)
		}
		identicalRows(t, fmt.Sprintf("%v governed fallback", kind), row, col)
	}
}

// A fault injected at the shard-worker boundary must surface through the
// columnar parallel drivers as fault.ErrInjected (error mode) and
// ErrWorkerPanic (panic mode), and the engine must recover completely once
// the failpoint disarms.
func TestColumnarParallelChaosFailpoints(t *testing.T) {
	defer fault.Reset()
	db := newPoissonDB(t, 600)
	q := joinOf(algebra.KindContain)
	ref, _, err := Run(db, q, rowOpt())
	if err != nil {
		t.Fatal(err)
	}

	if err := fault.Arm("engine/parallel-worker=error:n=1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(db, q, forcePar(4)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("columnar parallel run error %v, want fault.ErrInjected", err)
	}
	fault.Reset()

	if err := fault.Arm("engine/parallel-worker=panic:n=1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(db, q, forcePar(4)); !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("columnar parallel run error %v, want ErrWorkerPanic", err)
	}
	fault.Reset()

	got, _, err := Run(db, q, forcePar(4))
	if err != nil {
		t.Fatalf("run after failpoint disarm: %v", err)
	}
	identicalRows(t, "columnar ×4 after chaos recovery", ref, got)
}

// The λ read policy cannot run on the batch kernels; the engine must fall
// back to the row path automatically — no option juggling — and say nothing
// about columnar kernels in the plan.
func TestColumnarLambdaPolicyFallsBackToRows(t *testing.T) {
	db := newPoissonDB(t, 400)
	q := joinOf(algebra.KindContain)
	ref, _, err := Run(db, q, Options{RowExec: true, Parallelism: 1, Policy: core.ReadLambda})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Run(db, q, Options{Parallelism: 1, Policy: core.ReadLambda})
	if err != nil {
		t.Fatal(err)
	}
	identicalRows(t, "λ-policy join", ref, got)
	if hasNote(stats, "columnar batch kernels") {
		t.Errorf("λ-policy run claims columnar kernels: %+v", stats.Nodes)
	}
}
