package engine

import (
	"sort"
	"strings"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/constraints"
	"tdb/internal/interval"
	"tdb/internal/optimizer"
	"tdb/internal/relation"
	"tdb/internal/value"
	"tdb/internal/workload"
)

func newFacultyDB(t *testing.T, n int, continuous bool) *DB {
	t.Helper()
	db := NewDB()
	rel := workload.Faculty(workload.FacultyConfig{N: n, Continuous: continuous, Seed: 77})
	if err := db.Register(rel); err != nil {
		t.Fatal(err)
	}
	return db
}

func rankIC(continuous bool) constraints.ChronOrder {
	return constraints.ChronOrder{
		Relation: "Faculty", KeyCol: "Name", ValCol: "Rank",
		Order:      []string{"Assistant", "Associate", "Full"},
		Continuous: continuous,
	}
}

// superstarQuery builds the paper's running query with temporal sugar.
func superstarQuery() algebra.Expr {
	col := algebra.Column
	cons := func(s string) algebra.Operand { return algebra.Const(value.String_(s)) }
	theta := algebra.Predicate{
		Atoms: []algebra.Atom{
			{L: col("f1", "Name"), Op: algebra.EQ, R: col("f2", "Name")},
			{L: col("f1", "Rank"), Op: algebra.EQ, R: cons("Assistant")},
			{L: col("f2", "Rank"), Op: algebra.EQ, R: cons("Full")},
			{L: col("f3", "Rank"), Op: algebra.EQ, R: cons("Associate")},
		},
		Temporal: []algebra.TemporalAtom{
			{L: "f1", R: "f3", General: true},
			{L: "f2", R: "f3", General: true},
		},
	}
	prod := &algebra.Product{
		L: &algebra.Product{
			L: &algebra.Scan{Relation: "Faculty", As: "f1"},
			R: &algebra.Scan{Relation: "Faculty", As: "f2"},
		},
		R: &algebra.Scan{Relation: "Faculty", As: "f3"},
	}
	return &algebra.Project{
		Input: &algebra.Select{Input: prod, Pred: theta},
		Cols: []algebra.Output{
			{Name: "Name", From: algebra.ColRef{Var: "f1", Col: "Name"}},
			{Name: "ValidFrom", From: algebra.ColRef{Var: "f1", Col: "ValidFrom"}},
			{Name: "ValidTo", From: algebra.ColRef{Var: "f2", Col: "ValidTo"}},
		},
		TSName: "ValidFrom", TEName: "ValidTo",
		Distinct: true,
	}
}

func rowSet(rel *relation.Relation) []string {
	keys := make([]string, 0, len(rel.Rows))
	for _, r := range rel.Rows {
		keys = append(keys, r.Key())
	}
	sort.Strings(keys)
	return keys
}

func sameRows(t *testing.T, name string, a, b *relation.Relation) {
	t.Helper()
	ka, kb := rowSet(a), rowSet(b)
	if len(ka) != len(kb) {
		t.Fatalf("%s: %d vs %d rows", name, len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("%s: row sets differ at %d: %q vs %q", name, i, ka[i], kb[i])
		}
	}
}

func optimize(t *testing.T, db *DB, q algebra.Expr, opt optimizer.Options) algebra.Expr {
	t.Helper()
	res, err := optimizer.Optimize(q, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Contradiction {
		t.Fatal("unexpected contradiction")
	}
	return res.Tree
}

// The central end-to-end equivalence: the Superstar query computes the same
// answer under (A) conventional execution without semantic optimization,
// (B) semantically optimized stream execution, and the answer is non-empty.
func TestSuperstarPlansAgree(t *testing.T) {
	db := newFacultyDB(t, 40, false)
	if err := db.DeclareChronOrder(rankIC(false)); err != nil {
		t.Fatal(err)
	}
	q := superstarQuery()

	// Plan A: conventional — no semantic pass, no recognition, nested loops.
	treeA := optimize(t, db, q, optimizer.Options{NoSemantic: true, NoRecognition: true})
	resA, statsA, err := Run(db, treeA, Options{ForceNestedLoop: true})
	if err != nil {
		t.Fatal(err)
	}

	// Plan B: full pipeline with stream semijoin.
	treeB := optimize(t, db, q, optimizer.Options{ICs: db.ChronOrders()})
	resB, statsB, err := Run(db, treeB, Options{VerifyOrder: true})
	if err != nil {
		t.Fatal(err)
	}

	if resA.Cardinality() == 0 {
		t.Fatal("superstar result empty; workload too thin to be meaningful")
	}
	sameRows(t, "superstar", resA, resB)

	// The stream plan does strictly fewer comparisons than the
	// conventional plan (which scans the inner per outer tuple).
	if statsB.TotalComparisons() >= statsA.TotalComparisons() {
		t.Errorf("stream plan comparisons %d not below conventional %d",
			statsB.TotalComparisons(), statsA.TotalComparisons())
	}
	// The recognized semijoin actually ran as a stream algorithm.
	found := false
	for _, nc := range statsB.Nodes {
		if strings.Contains(nc.Algorithm, "contained-semijoin") {
			found = true
			if nc.Probe.StateHighWater != 0 {
				t.Errorf("Fig 6 semijoin retained state: %d", nc.Probe.StateHighWater)
			}
		}
	}
	if !found {
		t.Errorf("no stream semijoin in plan B:\n%s", statsB)
	}
}

// Every recognized temporal join kind agrees with the nested-loop result.
func TestTemporalJoinKindsAgainstNestedLoop(t *testing.T) {
	db := NewDB()
	mk := func(name string, seed int64, n int) {
		rel := relation.FromTuples(name, workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 8, Seed: seed}, name))
		rel.Name = name
		db.MustRegister(rel)
	}
	mk("R", 1, 120)
	mk("S", 2, 150)

	col := algebra.Column
	patterns := map[string]algebra.Predicate{
		"contain": {Atoms: []algebra.Atom{
			{L: col("r", "ValidFrom"), Op: algebra.LT, R: col("s", "ValidFrom")},
			{L: col("s", "ValidTo"), Op: algebra.LT, R: col("r", "ValidTo")},
		}},
		"contained": {Atoms: []algebra.Atom{
			{L: col("s", "ValidFrom"), Op: algebra.LT, R: col("r", "ValidFrom")},
			{L: col("r", "ValidTo"), Op: algebra.LT, R: col("s", "ValidTo")},
		}},
		"overlap": {Atoms: []algebra.Atom{
			{L: col("r", "ValidFrom"), Op: algebra.LT, R: col("s", "ValidTo")},
			{L: col("s", "ValidFrom"), Op: algebra.LT, R: col("r", "ValidTo")},
		}},
		"before": {Atoms: []algebra.Atom{
			{L: col("r", "ValidTo"), Op: algebra.LT, R: col("s", "ValidFrom")},
		}},
	}
	for name, pred := range patterns {
		q := &algebra.Select{
			Input: &algebra.Product{
				L: &algebra.Scan{Relation: "R", As: "r"},
				R: &algebra.Scan{Relation: "S", As: "s"},
			},
			Pred: pred,
		}
		tree := optimize(t, db, q, optimizer.Options{})
		// The recognized kind must not be θ.
		if j, ok := tree.(*algebra.Join); !ok || j.Kind == algebra.KindTheta {
			t.Fatalf("%s: not recognized (%T)", name, tree)
		}
		streamRes, streamStats, err := Run(db, tree, Options{VerifyOrder: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		nlRes, _, err := Run(db, tree, Options{ForceNestedLoop: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameRows(t, name, streamRes, nlRes)
		if streamRes.Cardinality() == 0 {
			t.Errorf("%s: empty result, workload too thin", name)
		}
		// The stream join reads each input once.
		for _, nc := range streamStats.Nodes {
			if strings.Contains(nc.Algorithm, "stream") && nc.Probe.Passes > 1 {
				t.Errorf("%s: stream algorithm took %d passes", name, nc.Probe.Passes)
			}
		}
	}
}

// Semijoin kinds against nested loop.
func TestTemporalSemijoinKindsAgainstNestedLoop(t *testing.T) {
	db := NewDB()
	r := relation.FromTuples("R", workload.Tuples(workload.Config{N: 150, Lambda: 1, MeanDur: 6, Seed: 3}, "r"))
	r.Name = "R"
	s := relation.FromTuples("S", workload.Tuples(workload.Config{N: 100, Lambda: 0.7, MeanDur: 14, Seed: 4}, "s"))
	s.Name = "S"
	db.MustRegister(r)
	db.MustRegister(s)

	col := algebra.Column
	preds := map[string]algebra.Predicate{
		"contained": {Atoms: []algebra.Atom{
			{L: col("a", "ValidFrom"), Op: algebra.GT, R: col("b", "ValidFrom")},
			{L: col("a", "ValidTo"), Op: algebra.LT, R: col("b", "ValidTo")},
		}},
		"contain": {Atoms: []algebra.Atom{
			{L: col("a", "ValidFrom"), Op: algebra.LT, R: col("b", "ValidFrom")},
			{L: col("b", "ValidTo"), Op: algebra.LT, R: col("a", "ValidTo")},
		}},
		"overlap": {Atoms: []algebra.Atom{
			{L: col("a", "ValidFrom"), Op: algebra.LT, R: col("b", "ValidTo")},
			{L: col("b", "ValidFrom"), Op: algebra.LT, R: col("a", "ValidTo")},
		}},
		"before": {Atoms: []algebra.Atom{
			{L: col("a", "ValidTo"), Op: algebra.LT, R: col("b", "ValidFrom")},
		}},
	}
	for name, pred := range preds {
		q := &algebra.Project{
			Input: &algebra.Select{
				Input: &algebra.Product{
					L: &algebra.Scan{Relation: "R", As: "a"},
					R: &algebra.Scan{Relation: "S", As: "b"},
				},
				Pred: pred,
			},
			Cols: []algebra.Output{
				{Name: "S", From: algebra.ColRef{Var: "a", Col: "S"}},
				{Name: "ValidFrom", From: algebra.ColRef{Var: "a", Col: "ValidFrom"}},
				{Name: "ValidTo", From: algebra.ColRef{Var: "a", Col: "ValidTo"}},
			},
			TSName: "ValidFrom", TEName: "ValidTo",
			Distinct: true,
		}
		tree := optimize(t, db, q, optimizer.Options{})
		semi, ok := tree.(*algebra.Project).Input.(*algebra.Semijoin)
		if !ok {
			t.Fatalf("%s: no semijoin introduced", name)
		}
		if semi.Kind == algebra.KindTheta {
			t.Fatalf("%s: semijoin not classified", name)
		}
		streamRes, _, err := Run(db, tree, Options{VerifyOrder: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		nlRes, _, err := Run(db, tree, Options{ForceNestedLoop: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameRows(t, name, streamRes, nlRes)
		if streamRes.Cardinality() == 0 {
			t.Errorf("%s: empty result", name)
		}
	}
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	db := newFacultyDB(t, 30, false)
	col := algebra.Column
	q := &algebra.Select{
		Input: &algebra.Product{
			L: &algebra.Scan{Relation: "Faculty", As: "a"},
			R: &algebra.Scan{Relation: "Faculty", As: "b"},
		},
		Pred: algebra.Predicate{Atoms: []algebra.Atom{
			{L: col("a", "Name"), Op: algebra.EQ, R: col("b", "Name")},
			{L: col("a", "ValidFrom"), Op: algebra.LT, R: col("b", "ValidFrom")},
		}},
	}
	tree := optimize(t, db, q, optimizer.Options{})
	hashRes, hashStats, err := Run(db, tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nlRes, nlStats, err := Run(db, tree, Options{ForceNestedLoop: true, ForceNoHash: true})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "equi-join", hashRes, nlRes)
	if hashRes.Cardinality() == 0 {
		t.Fatal("empty equi-join result")
	}
	if hashStats.TotalComparisons() >= nlStats.TotalComparisons() {
		t.Errorf("hash join comparisons %d not below nested loop %d",
			hashStats.TotalComparisons(), nlStats.TotalComparisons())
	}
	usedHash := false
	for _, nc := range hashStats.Nodes {
		if nc.Algorithm == "hash equi-join" {
			usedHash = true
		}
	}
	if !usedHash {
		t.Error("hash join not used")
	}

	// The third conventional strategy: sort-merge.
	mergeRes, mergeStats, err := Run(db, tree, Options{PreferMergeJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "merge equi-join", mergeRes, nlRes)
	usedMerge := false
	for _, nc := range mergeStats.Nodes {
		if nc.Algorithm == "sort-merge equi-join" {
			usedMerge = true
			if nc.SortedRows == 0 {
				t.Error("merge join sorted nothing")
			}
		}
	}
	if !usedMerge {
		t.Error("merge join not used")
	}
	if mergeStats.TotalComparisons() >= nlStats.TotalComparisons() {
		t.Errorf("merge join comparisons %d not below nested loop %d",
			mergeStats.TotalComparisons(), nlStats.TotalComparisons())
	}
}

func TestProjectDistinctAndSpans(t *testing.T) {
	db := newFacultyDB(t, 10, false)
	q := &algebra.Project{
		Input:    &algebra.Scan{Relation: "Faculty", As: "f"},
		Cols:     []algebra.Output{{Name: "Rank", From: algebra.ColRef{Var: "f", Col: "Rank"}}},
		Distinct: true,
	}
	res, _, err := Run(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cardinality() > 3 {
		t.Errorf("distinct ranks = %d", res.Cardinality())
	}
	if res.Schema.Temporal() {
		t.Error("snapshot projection kept temporal designation")
	}
}

func TestRunErrors(t *testing.T) {
	db := newFacultyDB(t, 5, false)
	if _, _, err := Run(db, &algebra.Scan{Relation: "Nope"}, Options{}); err == nil {
		t.Error("unknown relation accepted")
	}
	badPred := &algebra.Select{
		Input: &algebra.Scan{Relation: "Faculty", As: "f"},
		Pred: algebra.Predicate{Atoms: []algebra.Atom{
			{L: algebra.Column("f", "Missing"), Op: algebra.EQ, R: algebra.Const(value.Int(1))},
		}},
	}
	if _, _, err := Run(db, badPred, Options{}); err == nil {
		t.Error("unknown predicate column accepted")
	}
	sugar := &algebra.Select{
		Input: &algebra.Scan{Relation: "Faculty", As: "f"},
		Pred:  algebra.Predicate{Temporal: []algebra.TemporalAtom{{L: "f", R: "f", General: true}}},
	}
	if _, _, err := Run(db, sugar, Options{}); err == nil {
		t.Error("unexpanded temporal atom accepted")
	}
}

func TestDeclareChronOrderValidation(t *testing.T) {
	db := newFacultyDB(t, 20, true)
	if err := db.DeclareChronOrder(rankIC(true)); err != nil {
		t.Fatalf("valid continuous constraint rejected: %v", err)
	}

	// A relation violating the ordering must reject the declaration.
	bad := relation.New("Faculty2", workload.FacultySchema)
	bad.MustInsert(relation.Row{value.String_("x"), value.String_("Full"), value.TimeVal(0), value.TimeVal(5)})
	bad.MustInsert(relation.Row{value.String_("x"), value.String_("Assistant"), value.TimeVal(5), value.TimeVal(9)})
	db.MustRegister(bad)
	ic := rankIC(false)
	ic.Relation = "Faculty2"
	if err := db.DeclareChronOrder(ic); err == nil {
		t.Error("violated ordering accepted")
	}

	// Unknown value outside the declared order.
	bad2 := relation.New("Faculty3", workload.FacultySchema)
	bad2.MustInsert(relation.Row{value.String_("x"), value.String_("Emeritus"), value.TimeVal(0), value.TimeVal(5)})
	db.MustRegister(bad2)
	ic.Relation = "Faculty3"
	if err := db.DeclareChronOrder(ic); err == nil {
		t.Error("out-of-domain value accepted")
	}
}

func TestStatsRendering(t *testing.T) {
	db := newFacultyDB(t, 10, false)
	_, stats, err := Run(db, &algebra.Scan{Relation: "Faculty", As: "f"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Nodes) != 1 || stats.Nodes[0].Algorithm != "scan" {
		t.Fatalf("stats nodes: %+v", stats.Nodes)
	}
	if !strings.Contains(stats.String(), "scan") {
		t.Error("stats rendering empty")
	}
	if stats.TotalTuplesRead() == 0 {
		t.Error("no tuples counted")
	}
}

// Interesting orders: a second stream join over the same sorted relation
// re-sorts nothing when the base data is already in ValidFrom order.
func TestSortAvoidance(t *testing.T) {
	db := NewDB()
	tu := workload.Tuples(workload.Config{N: 100, Lambda: 1, MeanDur: 9, Seed: 9}, "r")
	rel := relation.FromTuples("R", tu) // generator emits in TS order
	rel.Name = "R"
	db.MustRegister(rel)
	if st := db.Stats("R"); st == nil || !st.SortedTS {
		t.Fatal("workload no longer arrives sorted; test premise broken")
	}
	col := algebra.Column
	q := &algebra.Select{
		Input: &algebra.Product{
			L: &algebra.Scan{Relation: "R", As: "a"},
			R: &algebra.Scan{Relation: "R", As: "b"},
		},
		Pred: algebra.Predicate{Atoms: []algebra.Atom{
			{L: col("a", "ValidFrom"), Op: algebra.LT, R: col("b", "ValidTo")},
			{L: col("b", "ValidFrom"), Op: algebra.LT, R: col("a", "ValidTo")},
		}},
	}
	tree := optimize(t, db, q, optimizer.Options{})
	_, stats, err := Run(db, tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalSortedRows() != 0 {
		t.Errorf("sorted %d rows despite pre-sorted input", stats.TotalSortedRows())
	}
	_ = interval.Time(0)
}
