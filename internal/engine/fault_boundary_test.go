package engine

import (
	"errors"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/fault"
	"tdb/internal/relation"
	"tdb/internal/storage"
	"tdb/internal/value"
)

// Injected worker faults must cross the executor boundary as the typed
// fault.ErrInjected — callers (and the chaos suite) dispatch on the error
// identity, so a rewrap that loses the chain is a bug this test catches.
func TestParallelWorkerFaultTyped(t *testing.T) {
	defer fault.Reset()
	db := newPoissonDB(t, 400)
	if err := fault.Arm("engine/parallel-worker=error:n=1"); err != nil {
		t.Fatal(err)
	}
	_, _, err := Run(db, joinOf(algebra.KindContain), forcePar(4))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("parallel run error %v, want fault.ErrInjected through the engine boundary", err)
	}
}

// An injected worker panic is recovered into the typed ErrWorkerPanic; the
// sibling shards unwind through the shared context and runWorkers returns
// with no goroutine left behind (the fixture's leak check verifies that).
func TestParallelWorkerPanicTyped(t *testing.T) {
	defer fault.Reset()
	db := newPoissonDB(t, 400)
	if err := fault.Arm("engine/parallel-worker=panic:n=1"); err != nil {
		t.Fatal(err)
	}
	_, _, err := Run(db, joinOf(algebra.KindContain), forcePar(4))
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("parallel run error %v, want ErrWorkerPanic", err)
	}
}

// A page-read fault in the storage layer must surface from a query over a
// stored relation as fault.ErrInjected — two subsystem boundaries deep.
func TestStoredScanFaultTyped(t *testing.T) {
	defer fault.Reset()
	db := newPoissonDB(t, 200)
	if err := db.StoreRelation("X", t.TempDir(), 2); err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm("storage/page-read=error"); err != nil {
		t.Fatal(err)
	}
	_, _, err := Run(db, joinOf(algebra.KindOverlap), Options{})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("stored scan error %v, want fault.ErrInjected", err)
	}
}

// A torn page write — the failpoint persists a prefix, as a crash
// mid-flush would — is silent at write time and must be detected at the
// next read as the typed storage.ErrCorruptPage, through the engine.
func TestStoredTornPageTyped(t *testing.T) {
	defer fault.Reset()
	db := newPoissonDB(t, 200)
	if err := fault.Arm("storage/page-write=torn"); err != nil {
		t.Fatal(err)
	}
	if err := db.StoreRelation("X", t.TempDir(), 2); err != nil {
		t.Fatalf("torn writes must be silent (a crash reports nothing): %v", err)
	}
	fault.Reset()
	_, _, err := Run(db, joinOf(algebra.KindOverlap), Options{})
	if !errors.Is(err, storage.ErrCorruptPage) {
		t.Fatalf("query over torn pages: %v, want storage.ErrCorruptPage", err)
	}
}

// A delta-delivery fault in a standing run surfaces from Poll as the typed
// injected error, with the run unwound (not silently short).
func TestStandingRunFaultTyped(t *testing.T) {
	defer fault.Reset()
	db := standingDB(t)
	plan, err := BuildStanding(db, governorJoin(algebra.KindOverlap))
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm("engine/standing-run=error:n=1"); err != nil {
		t.Fatal(err)
	}
	run := plan.Start(nil, 0)
	defer run.Stop()
	rows := []relation.Row{
		{value.Int(1), value.TimeVal(0), value.TimeVal(10)},
	}
	run.FeedLeft(rows)
	run.FeedRight(rows)
	if _, err := run.Close(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("standing close error %v, want fault.ErrInjected", err)
	}
}
