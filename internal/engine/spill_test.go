package engine

import (
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/interval"
	"tdb/internal/optimizer"
	"tdb/internal/relation"
	"tdb/internal/workload"
)

// A bounded sort workspace forces the stream join's ordering to be
// established by external sort — the Section 4.1 passes-for-order tradeoff
// inside a query plan — with identical results and the spill accounted.
func TestBoundedSortWorkspaceSpills(t *testing.T) {
	db := NewDB()
	mk := func(name string, seed int64) {
		ts := workload.Tuples(workload.Config{N: 3000, Lambda: 1, MeanDur: 8, Seed: seed}, name)
		// Store in ValidTo order — useless for the overlap join, forcing
		// the executor to (re)establish ValidFrom order.
		relation.SortSpans(ts, func(t relation.Tuple) interval.Interval { return t.Span },
			relation.Order{relation.TEAsc})
		rel := relation.FromTuples(name, ts)
		rel.Name = name
		db.MustRegister(rel)
	}
	mk("R", 1)
	mk("S", 2)

	col := algebra.Column
	q := &algebra.Select{
		Input: &algebra.Product{
			L: &algebra.Scan{Relation: "R", As: "a"},
			R: &algebra.Scan{Relation: "S", As: "b"},
		},
		Pred: algebra.Predicate{Atoms: []algebra.Atom{
			{L: col("a", "ValidFrom"), Op: algebra.LT, R: col("b", "ValidTo")},
			{L: col("b", "ValidFrom"), Op: algebra.LT, R: col("a", "ValidTo")},
		}},
	}
	tree := optimize(t, db, q, optimizer.Options{})

	inMem, memStats, err := Run(db, tree, Options{VerifyOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	spilled, spillStats, err := Run(db, tree, Options{
		VerifyOrder: true, SortMemRows: 256, SpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "spilled overlap join", inMem, spilled)

	var memRuns, spillRuns int
	var spillPages int64
	for _, nc := range memStats.Nodes {
		memRuns += nc.SortRuns
	}
	for _, nc := range spillStats.Nodes {
		spillRuns += nc.SortRuns
		spillPages += nc.SortPages
	}
	if memRuns != 0 {
		t.Errorf("unbounded sort produced %d external runs", memRuns)
	}
	// 3000 rows per side at 256 rows of workspace: ≈ 12 runs per side.
	if spillRuns < 20 {
		t.Errorf("bounded sort produced only %d runs", spillRuns)
	}
	if spillPages == 0 {
		t.Error("bounded sort moved no pages")
	}
	if inMem.Cardinality() == 0 {
		t.Fatal("empty join result")
	}
}
