package engine

// Time-range partitioned parallel execution. An eligible stream join or
// semijoin node partitions its sorted, materialized inputs into k time
// shards (equi-depth ValidFrom cuts from catalog statistics), runs the
// unchanged single-pass core algorithm per shard on worker goroutines,
// and recombines through the order-preserving k-way merge of
// internal/stream. Boundary-spanning tuples are replicated into every
// shard they intersect; exactness is restored by the owner rule (each
// join pair is kept only by the shard owning its canonical sweep point)
// or by position tags with adjacent dedup (semijoins). The output is
// byte-identical to serial execution: the merge is deterministic, worker
// results live in per-shard slots, and no map or scheduling order ever
// reaches the output. See DESIGN.md "Parallel execution" for the
// per-operator ownership rules and the determinism argument.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"tdb/internal/algebra"
	"tdb/internal/catalog"
	"tdb/internal/core"
	"tdb/internal/fault"
	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/obs"
	"tdb/internal/obs/prof"
	"tdb/internal/optimizer"
	"tdb/internal/partition"
	"tdb/internal/relation"
	"tdb/internal/storage"
	"tdb/internal/stream"
)

func init() {
	fault.Declare("engine/parallel-worker", "shard worker entry; panic mode exercises recovery")
}

// ErrWorkerPanic wraps a panic recovered inside a shard worker, turning
// it into an ordinary first-error cancellation instead of a process
// crash with sibling goroutines left running.
var ErrWorkerPanic = errors.New("engine: panic in parallel worker")

// DefaultParallelMinRows is the combined-input floor below which join and
// semijoin nodes always run serially: partitioning, worker setup and the
// recombination merge dominate at small sizes.
const DefaultParallelMinRows = 4096

// parallelScanMinPages gates the parallel stored scan; below it a single
// scan is already cheap.
const parallelScanMinPages = 8

// workers resolves Options.Parallelism: 0 means one worker per available
// processor.
func (ex *executor) workers() int {
	k := ex.opt.Parallelism
	if k == 0 {
		k = runtime.GOMAXPROCS(0)
	}
	if k < 1 {
		k = 1
	}
	return k
}

func (ex *executor) parallelMinRows() int {
	if ex.opt.ParallelMinRows > 0 {
		return ex.opt.ParallelMinRows
	}
	return DefaultParallelMinRows
}

// parallelPlan is a node's accepted fan-out decision.
type parallelPlan struct {
	ranges []partition.Range
	est    optimizer.ParallelEstimate
}

// spannedStats derives catalog statistics from wrapped, materialized rows.
func spannedStats(ws []spanned) *catalog.Stats {
	spans := make([]interval.Interval, len(ws))
	for i, w := range ws {
		spans[i] = w.span
	}
	return catalog.FromSpans(spans)
}

// planParallel decides whether to fan a stream join (semi=false) or
// semijoin (semi=true) node out across time shards. The correctness gates
// — operator kind, read policy, distinct cut points — always apply;
// Options.ForceParallel bypasses only the size and cost-model gates. A
// nil return means serial. Once a decision is genuinely considered, the
// evidence is recorded in the node's notes for the plan explain.
func (ex *executor) planParallel(kind algebra.TemporalKind, semi bool, lw, rw []spanned, cost *NodeCost) *parallelPlan {
	k := ex.workers()
	if k < 2 {
		return nil
	}
	switch kind {
	case algebra.KindContain, algebra.KindContained, algebra.KindOverlap:
	default:
		// Before pairs tuples across arbitrary time distance: no range
		// partitioning keeps its state local to a shard.
		return nil
	}
	if n := len(lw) + len(rw); !ex.opt.ForceParallel && n < ex.parallelMinRows() {
		return nil
	}
	if !semi && ex.opt.Policy != core.ReadSweep {
		// The λ policy picks the next read from the observed state of
		// both streams — a global interleaving per-shard runs cannot
		// reproduce, so the emission order would diverge from serial.
		// (The Figure 6 semijoin scans never consult the policy.)
		cost.Notes = append(cost.Notes, "parallel: declined (λ read policy orders reads globally)")
		return nil
	}
	sx, sy := spannedStats(lw), spannedStats(rw)
	all := make([]interval.Interval, 0, len(lw)+len(rw))
	for _, w := range lw {
		all = append(all, w.span)
	}
	for _, w := range rw {
		all = append(all, w.span)
	}
	ranges := partition.Ranges(catalog.FromSpans(all).EquiDepthTSCuts(k))
	if len(ranges) < 2 {
		cost.Notes = append(cost.Notes, "parallel: declined (no distinct TS cut points)")
		return nil
	}
	var base optimizer.JoinEstimate
	switch {
	case semi:
		base = optimizer.EstimateSemijoin(sx, sy, true, true)
	case kind == algebra.KindOverlap:
		base = optimizer.EstimateOverlapJoin(sx, sy)
	case kind == algebra.KindContained:
		// Contained runs as Contain-join with the sides swapped, so the
		// state-bearing X of the algorithm is the right input.
		base = optimizer.EstimateContainJoin(sy, sx)
	default:
		base = optimizer.EstimateContainJoin(sx, sy)
	}
	est := optimizer.EstimateParallel(base, sx, sy, len(ranges))
	if !ex.opt.ForceParallel && !est.Use() {
		cost.Notes = append(cost.Notes, "parallel: declined ("+est.String()+")")
		return nil
	}
	cost.Notes = append(cost.Notes, "parallel "+est.String())
	return &parallelPlan{ranges: ranges, est: est}
}

// runWorkers fans k shard workers out under the current node span: one
// child span and probe per worker, results written to per-shard slots (no
// channels anywhere, so no send can ever block a worker), the
// tdb_parallel_workers gauge held high for the duration, and worker spans
// finished in shard order so traces are deterministic.
//
// Failure semantics: the first worker to fail cancels the shared context,
// so sibling shards unwind at their next input poll (their streams are
// Cancelable-wrapped); a panic inside a worker is recovered into
// ErrWorkerPanic and treated the same way. wg.Wait guarantees every
// goroutine has exited before runWorkers returns — no leaks on any path.
// The returned error is the lowest-indexed *genuine* failure: shards that
// merely observed the cancellation never mask the root cause.
func (ex *executor) runWorkers(labels []string, cost *NodeCost, run func(ctx context.Context, i int, o core.Options) (int64, error)) error {
	k := len(labels)
	tr := ex.opt.Tracer
	spans := make([]*obs.Span, k)
	for i := range spans {
		spans[i] = tr.Begin(ex.cur, labels[i])
	}
	var gauge *obs.Gauge
	if reg := ex.opt.Registry; reg != nil {
		gauge = reg.Gauge("tdb_parallel_workers", "shard workers currently running parallel operators")
		reg.Counter("tdb_parallel_nodes_total", "plan nodes executed with time-range parallelism").Inc()
	}
	gauge.Add(int64(k))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	probes := make([]metrics.Probe, k)
	outRows := make([]int64, k)
	errs := make([]error, k)
	profQuery := "q0"
	if ex.cur != nil {
		profQuery = fmt.Sprintf("q%d", ex.cur.QueryID)
	}
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("%s: %w: %v", labels[i], ErrWorkerPanic, r)
				}
				if errs[i] != nil {
					cancel()
				}
			}()
			if err := fault.Check("engine/parallel-worker"); err != nil {
				errs[i] = fmt.Errorf("%s: %w", labels[i], err)
				return
			}
			o := core.Options{Probe: &probes[i], Policy: ex.opt.Policy,
				VerifyOrder: ex.opt.VerifyOrder, Sampler: spans[i].Sampler()}
			if ex.opt.Profile {
				// Label the worker goroutine so profiles attribute shard
				// CPU/heap samples to the node; alloc-delta accounting
				// stays at the node span (worker windows overlap).
				prof.Do(profQuery, labels[i], "shard-worker", func() {
					outRows[i], errs[i] = run(ctx, i, o)
				})
			} else {
				outRows[i], errs[i] = run(ctx, i, o)
			}
		}(i)
	}
	wg.Wait()
	gauge.Add(-int64(k))
	for i, sp := range spans {
		if errs[i] != nil {
			sp.Fail(tr, errs[i])
			continue
		}
		sp.Finish(tr, probes[i], obs.NodeStats{Algorithm: "shard worker", OutRows: outRows[i]})
	}
	for i := range probes {
		cost.Probe.Merge(&probes[i])
	}
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

func shardLabels(prefix string, rs []partition.Range) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = fmt.Sprintf("%s %d/%d %s", prefix, i+1, len(rs), r)
	}
	return out
}

// ownedRow is a join output row tagged with its canonical sweep point —
// the chronon that assigns the pair to exactly one owning shard and keys
// the recombination merge.
type ownedRow struct {
	key interval.Time
	row relation.Row
}

func ownedCmp(a, b ownedRow) int {
	switch {
	case a.key < b.key:
		return -1
	case a.key > b.key:
		return 1
	}
	return 0
}

// parallelJoin executes an accepted join fan-out. Each shard runs the
// serial algorithm on its replicated inputs and keeps only the pairs
// whose sweep point its range owns; because shard key ranges ascend
// disjointly and per-shard emission keys are non-decreasing under the
// sweep policy, the stable k-way merge reproduces the serial output
// sequence exactly.
func (ex *executor) parallelJoin(kind algebra.TemporalKind, lw, rw []spanned, plan *parallelPlan, cost *NodeCost) ([]relation.Row, error) {
	k := len(plan.ranges)
	shL := partition.Split(lw, spannedSpan, plan.ranges)
	shR := partition.Split(rw, spannedSpan, plan.ranges)
	noteMeasuredReplication(cost, shL, shR, len(lw)+len(rw))
	outs := make([][]ownedRow, k)
	err := ex.runWorkers(shardLabels("join shard", plan.ranges), cost, func(ctx context.Context, i int, o core.Options) (int64, error) {
		var err error
		outs[i], err = runJoinShard(ctx, kind, shL[i], shR[i], plan.ranges[i], o)
		return int64(len(outs[i])), err
	})
	if err != nil {
		return nil, err
	}
	parts := make([]stream.Stream[ownedRow], k)
	for i := range outs {
		parts[i] = stream.FromSlice(outs[i])
	}
	merged, err := stream.Collect(stream.MergeK(ownedCmp, parts...))
	if err != nil {
		return nil, err
	}
	rows := make([]relation.Row, len(merged))
	//tdb:hotpath
	for i, m := range merged {
		rows[i] = m.row
	}
	return rows, nil
}

// runJoinShard runs the serial stream join on one shard, keeping only the
// pairs the shard owns. The canonical sweep point of a contain pair is
// the containee's ValidFrom (the read event that emits it under the sweep
// policy); for an overlap pair it is the later of the two ValidFroms.
// Every pair's members both span its sweep point, so the owning shard is
// guaranteed to hold both — no pair is lost, and each is kept exactly
// once.
func runJoinShard(ctx context.Context, kind algebra.TemporalKind, xs, ys []spanned, rng partition.Range, o core.Options) ([]ownedRow, error) {
	px := stream.Cancelable(ctx, wrappedStream(xs))
	py := stream.Cancelable(ctx, wrappedStream(ys))
	out := make([]ownedRow, 0, len(xs))
	keep := func(key interval.Time, row relation.Row) {
		if rng.OwnsPoint(key) {
			out = append(out, ownedRow{key: key, row: row})
		}
	}
	var err error
	switch kind {
	case algebra.KindContain:
		err = core.ContainJoinTSTS(px, py, spannedSpan, o, func(a, b spanned) {
			keep(b.span.Start, relation.ConcatRows(a.row, b.row))
		})
	case algebra.KindContained:
		// Left during right ⇔ Contain-join(right, left); the containee
		// (the emitted left row) still owns the pair.
		err = core.ContainJoinTSTS(py, px, spannedSpan, o, func(a, b spanned) {
			keep(b.span.Start, relation.ConcatRows(b.row, a.row))
		})
	case algebra.KindOverlap:
		err = core.OverlapJoin(px, py, spannedSpan, o, func(a, b spanned) {
			key := a.span.Start
			if interval.CmpStart(a.span, b.span) < 0 {
				key = b.span.Start
			}
			keep(key, relation.ConcatRows(a.row, b.row))
		})
	default:
		err = fmt.Errorf("engine: parallel join of kind %v", kind)
	}
	return out, err
}

// parallelSemijoin executes an accepted semijoin fan-out. The Figure 6
// scans preserve left-input order and never consult the read policy, so
// each shard emits a position-tagged subsequence of its left shard; the
// position-ordered merge with adjacent dedup yields the qualifying left
// rows in global input order — exactly the serial output.
func (ex *executor) parallelSemijoin(kind algebra.TemporalKind, lw, rw []spanned, plan *parallelPlan, cost *NodeCost) ([]relation.Row, error) {
	k := len(plan.ranges)
	shL := partition.SplitTagged(lw, spannedSpan, plan.ranges)
	shR := partition.SplitTagged(rw, spannedSpan, plan.ranges)
	noteMeasuredReplication(cost, shL, shR, len(lw)+len(rw))
	outs := make([][]partition.Tagged[spanned], k)
	err := ex.runWorkers(shardLabels("semijoin shard", plan.ranges), cost, func(ctx context.Context, i int, o core.Options) (int64, error) {
		var err error
		outs[i], err = runSemijoinShard(ctx, kind, shL[i], shR[i], o)
		return int64(len(outs[i])), err
	})
	if err != nil {
		return nil, err
	}
	parts := make([]stream.Stream[partition.Tagged[spanned]], k)
	for i := range outs {
		parts[i] = stream.FromSlice(outs[i])
	}
	posCmp := func(a, b partition.Tagged[spanned]) int { return a.Pos - b.Pos }
	samePos := func(a, b partition.Tagged[spanned]) bool { return a.Pos == b.Pos }
	merged, err := stream.Collect(stream.Dedup(stream.MergeK(posCmp, parts...), samePos))
	if err != nil {
		return nil, err
	}
	rows := make([]relation.Row, len(merged))
	//tdb:hotpath
	for i, m := range merged {
		rows[i] = m.Elem.row
	}
	return rows, nil
}

// runSemijoinShard runs the serial semijoin scan on one shard. A
// qualifying left row and any witness share at least one chronon, so the
// shard owning that chronon holds both and emits the row; the per-shard
// result is a subsequence of the tagged left shard, hence sorted by
// position.
func runSemijoinShard(ctx context.Context, kind algebra.TemporalKind, xs, ys []partition.Tagged[spanned], o core.Options) ([]partition.Tagged[spanned], error) {
	span := func(t partition.Tagged[spanned]) interval.Interval { return t.Elem.span }
	px := stream.Cancelable(ctx, stream.FromSlice(xs))
	py := stream.Cancelable(ctx, stream.FromSlice(ys))
	out := make([]partition.Tagged[spanned], 0, len(xs))
	emit := func(t partition.Tagged[spanned]) { out = append(out, t) }
	var err error
	switch kind {
	case algebra.KindContained:
		err = core.ContainedSemijoin(px, py, span, o, emit)
	case algebra.KindContain:
		err = core.ContainSemijoin(px, py, span, o, emit)
	case algebra.KindOverlap:
		err = core.OverlapSemijoin(px, py, span, o, emit)
	default:
		err = fmt.Errorf("engine: parallel semijoin of kind %v", kind)
	}
	return out, err
}

// noteMeasuredReplication records the realized boundary-replication rate
// next to the optimizer's prediction, so explain output shows both.
func noteMeasuredReplication[T any](cost *NodeCost, shL, shR [][]T, n int) {
	if n == 0 {
		return
	}
	total := 0
	for i := range shL {
		total += len(shL[i])
	}
	for i := range shR {
		total += len(shR[i])
	}
	cost.Notes = append(cost.Notes,
		fmt.Sprintf("parallel: measured boundary replication %.1f%%", 100*float64(total-n)/float64(n)))
}

// parallelScan fans a large stored scan out over disjoint flushed-page
// ranges. Ranges are contiguous and concatenated in order, so the result
// is byte-identical to a serial Scan (file order); the page ranges are
// disjoint, so page-read accounting stays deterministic.
func (ex *executor) parallelScan(hf *storage.HeapFile, cost *NodeCost) ([]relation.Row, bool, error) {
	k := ex.workers()
	pages := hf.Pages()
	minPages := int64(parallelScanMinPages)
	if ex.opt.ForceParallel {
		minPages = 2
	}
	if k < 2 || pages < minPages {
		return nil, false, nil
	}
	if int64(k) > pages {
		k = int(pages)
	}
	labels := make([]string, k)
	bounds := make([]int64, k+1)
	for i := 0; i <= k; i++ {
		bounds[i] = pages * int64(i) / int64(k)
	}
	for i := 0; i < k; i++ {
		labels[i] = fmt.Sprintf("scan shard %d/%d pages [%d,%d)", i+1, k, bounds[i], bounds[i+1])
	}
	outs := make([][]relation.Row, k)
	err := ex.runWorkers(labels, cost, func(ctx context.Context, i int, o core.Options) (int64, error) {
		hi := bounds[i+1]
		if i == k-1 {
			hi = pages + 1 // the last shard also drains the open tail page
		}
		rows, err := stream.Collect(stream.Cancelable(ctx, hf.ScanRange(bounds[i], hi)))
		if err != nil {
			return 0, err
		}
		outs[i] = rows
		o.Probe.ReadLeft = int64(len(rows))
		return int64(len(rows)), nil
	})
	if err != nil {
		return nil, false, err
	}
	var rows []relation.Row
	for _, o := range outs {
		rows = append(rows, o...)
	}
	cost.Notes = append(cost.Notes, fmt.Sprintf("parallel stored scan ×%d over %d pages", k, pages))
	return rows, true, nil
}
