package engine

import (
	"fmt"
	"strings"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/core"
	"tdb/internal/obs"
	"tdb/internal/optimizer"
	"tdb/internal/relation"
	"tdb/internal/testutil"
	"tdb/internal/workload"
)

// identicalRows is the parallel-execution acceptance check: not just the
// same row set, but the exact same row *sequence* the serial plan emits.
func identicalRows(t *testing.T, name string, serial, parallel *relation.Relation) {
	t.Helper()
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("%s: %d serial vs %d parallel rows", name, len(serial.Rows), len(parallel.Rows))
	}
	for i := range serial.Rows {
		if serial.Rows[i].Key() != parallel.Rows[i].Key() {
			t.Fatalf("%s: row %d differs:\nserial:   %q\nparallel: %q",
				name, i, serial.Rows[i].Key(), parallel.Rows[i].Key())
		}
	}
}

// newPoissonDB registers two Poisson relations with enough containment
// structure (long X lifespans over short Y ones) to exercise boundary
// replication at every cut.
func newPoissonDB(t *testing.T, n int) *DB {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	db := NewDB()
	xs := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 25, LongFrac: 0.1, Seed: 21}, "x")
	ys := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 4, Seed: 22}, "y")
	if err := db.Register(relation.FromTuples("X", xs)); err != nil {
		t.Fatal(err)
	}
	if err := db.Register(relation.FromTuples("Y", ys)); err != nil {
		t.Fatal(err)
	}
	return db
}

func spanOf(v string) algebra.SpanRef {
	return algebra.SpanRef{
		TS: algebra.ColRef{Var: v, Col: "ValidFrom"},
		TE: algebra.ColRef{Var: v, Col: "ValidTo"},
	}
}

// joinOf builds a recognized temporal join node directly, the shape the
// optimizer's recognition pass produces.
func joinOf(kind algebra.TemporalKind) algebra.Expr {
	return &algebra.Join{
		L:     &algebra.Scan{Relation: "X", As: "a"},
		R:     &algebra.Scan{Relation: "Y", As: "b"},
		Kind:  kind,
		LSpan: spanOf("a"), RSpan: spanOf("b"),
	}
}

func semijoinOf(kind algebra.TemporalKind) algebra.Expr {
	return &algebra.Semijoin{
		L:     &algebra.Scan{Relation: "X", As: "a"},
		R:     &algebra.Scan{Relation: "Y", As: "b"},
		Kind:  kind,
		LSpan: spanOf("a"), RSpan: spanOf("b"),
	}
}

// forcePar builds options that bypass the size and cost-model gates (the
// correctness gates still apply) so small test inputs fan out.
func forcePar(k int) Options {
	return Options{Parallelism: k, ForceParallel: true, ParallelMinRows: 1, VerifyOrder: true}
}

// Every eligible join kind must produce the serial row sequence exactly,
// at any worker count.
func TestParallelJoinsByteIdentical(t *testing.T) {
	db := newPoissonDB(t, 600)
	for _, kind := range []algebra.TemporalKind{algebra.KindContain, algebra.KindContained, algebra.KindOverlap} {
		q := joinOf(kind)
		serial, _, err := Run(db, q, Options{Parallelism: 1, VerifyOrder: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(serial.Rows) == 0 {
			t.Fatalf("%v: degenerate test, no output rows", kind)
		}
		for _, k := range []int{2, 3, 4, 8} {
			par, stats, err := Run(db, q, forcePar(k))
			if err != nil {
				t.Fatalf("%v ×%d: %v", kind, k, err)
			}
			identicalRows(t, fmt.Sprintf("%v join ×%d", kind, k), serial, par)
			if !hasNote(stats, "parallel ×") {
				t.Errorf("%v ×%d: no parallel note in plan: %+v", kind, k, stats.Nodes)
			}
		}
	}
}

// Semijoins never consult the read policy, so they must stay byte-identical
// under both policies.
func TestParallelSemijoinsByteIdentical(t *testing.T) {
	db := newPoissonDB(t, 600)
	for _, kind := range []algebra.TemporalKind{algebra.KindContained, algebra.KindContain, algebra.KindOverlap} {
		for _, policy := range []core.ReadPolicy{core.ReadSweep, core.ReadLambda} {
			q := semijoinOf(kind)
			serial, _, err := Run(db, q, Options{Parallelism: 1, Policy: policy, VerifyOrder: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(serial.Rows) == 0 {
				t.Fatalf("%v: degenerate test, no output rows", kind)
			}
			for _, k := range []int{2, 4} {
				o := forcePar(k)
				o.Policy = policy
				par, _, err := Run(db, q, o)
				if err != nil {
					t.Fatalf("%v ⋉ ×%d policy %v: %v", kind, k, policy, err)
				}
				identicalRows(t, fmt.Sprintf("%v semijoin ×%d policy %v", kind, k, policy), serial, par)
			}
		}
	}
}

// A join under the λ read policy must decline the fan-out (the policy
// interleaves reads globally) and still compute the correct result.
func TestParallelJoinLambdaPolicyDeclines(t *testing.T) {
	db := newPoissonDB(t, 400)
	q := joinOf(algebra.KindContain)
	serial, _, err := Run(db, q, Options{Parallelism: 1, Policy: core.ReadLambda, VerifyOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	o := forcePar(4)
	o.Policy = core.ReadLambda
	par, stats, err := Run(db, q, o)
	if err != nil {
		t.Fatal(err)
	}
	identicalRows(t, "λ-policy join", serial, par)
	if !hasNote(stats, "λ read policy") {
		t.Errorf("declined λ-policy join not recorded in plan notes: %+v", stats.Nodes)
	}
}

// The full Superstar pipeline — semantic optimization, semijoin
// introduction, stream execution — must be unchanged by parallel workers.
func TestParallelSuperstarByteIdentical(t *testing.T) {
	db := newFacultyDB(t, 60, false)
	if err := db.DeclareChronOrder(rankIC(false)); err != nil {
		t.Fatal(err)
	}
	tree := optimize(t, db, superstarQuery(), optimizer.Options{ICs: db.ChronOrders()})
	serial, _, err := Run(db, tree, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4} {
		par, _, err := Run(db, tree, forcePar(k))
		if err != nil {
			t.Fatalf("×%d: %v", k, err)
		}
		identicalRows(t, fmt.Sprintf("superstar ×%d", k), serial, par)
	}
}

// Without ForceParallel the default gates must keep small inputs serial —
// the regression guard for every other test in this package, which runs
// with default Options on multi-core machines.
func TestParallelGatesKeepSmallInputsSerial(t *testing.T) {
	db := newPoissonDB(t, 300)
	_, stats, err := Run(db, joinOf(algebra.KindContain), Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range stats.Nodes {
		if strings.Contains(n.Algorithm, "×") {
			t.Errorf("small input fanned out: %+v", n)
		}
	}
}

// Worker observability: one child span per shard worker, and the
// tdb_parallel_workers gauge returns to zero after the run.
func TestParallelWorkerObservability(t *testing.T) {
	db := newPoissonDB(t, 600)
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	o := forcePar(3)
	o.Tracer = tr
	o.Registry = reg
	if _, _, err := Run(db, joinOf(algebra.KindContain), o); err != nil {
		t.Fatal(err)
	}
	workers := 0
	for _, sp := range tr.Spans() {
		if strings.Contains(sp.Label, "join shard") {
			workers++
			if sp.Node.Algorithm != "shard worker" {
				t.Errorf("worker span algorithm = %q", sp.Node.Algorithm)
			}
			if sp.Probe.Comparisons == 0 {
				t.Errorf("worker span %q carries no probe", sp.Label)
			}
		}
	}
	if workers != 3 {
		t.Errorf("want 3 worker spans, got %d", workers)
	}
	if v := reg.Gauge("tdb_parallel_workers", "").Value(); v != 0 {
		t.Errorf("tdb_parallel_workers = %d after run, want 0", v)
	}
	if reg.Counter("tdb_parallel_nodes_total", "").Value() == 0 {
		t.Error("tdb_parallel_nodes_total not incremented")
	}
}

// A parallel stored scan must return the exact file order of a serial scan
// and keep the page accounting deterministic.
func TestParallelStoredScanByteIdentical(t *testing.T) {
	mk := func(t *testing.T) *DB {
		db := NewDB()
		rel := workload.Faculty(workload.FacultyConfig{N: 400, Seed: 77})
		if err := db.Register(rel); err != nil {
			t.Fatal(err)
		}
		if err := db.StoreRelation("Faculty", t.TempDir(), 4); err != nil {
			t.Fatal(err)
		}
		return db
	}
	scan := &algebra.Scan{Relation: "Faculty", As: "f"}
	serialDB, parDB := mk(t), mk(t)
	serial, _, err := Run(serialDB, scan, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, stats, err := Run(parDB, scan, forcePar(4))
	if err != nil {
		t.Fatal(err)
	}
	identicalRows(t, "stored scan ×4", serial, par)
	if !hasNote(stats, "parallel stored scan") {
		t.Errorf("parallel scan not recorded: %+v", stats.Nodes)
	}
	if got, want := parDB.StoredIO("Faculty").PagesRead, serialDB.StoredIO("Faculty").PagesRead; got != want {
		t.Errorf("parallel scan read %d pages, serial %d", got, want)
	}
}

func hasNote(stats *Stats, substr string) bool {
	for _, n := range stats.Nodes {
		for _, note := range n.Notes {
			if strings.Contains(note, substr) {
				return true
			}
		}
	}
	return false
}
