package engine

import (
	"fmt"
	"sort"
	"strings"

	"tdb/internal/algebra"
	"tdb/internal/metrics"
	"tdb/internal/relation"
	"tdb/internal/value"
)

// evalAggregate groups the materialized input and folds each group through
// the aggregate terms — the Figure 4 processor as a physical operator. The
// implementation sorts the groups for deterministic output order; the
// retained state is one accumulator row per group.
func (ex *executor) evalAggregate(n *algebra.Aggregate) (*result, error) {
	in, err := ex.eval(n.Input)
	if err != nil {
		return nil, err
	}
	groupIdx := make([]int, len(n.GroupBy))
	for i, g := range n.GroupBy {
		groupIdx[i] = in.schema.ColumnIndex(g.Name())
		if groupIdx[i] < 0 {
			return nil, fmt.Errorf("engine: group column %s not in %s", g, in.schema)
		}
	}
	type termState struct {
		kind  algebra.AggKind
		col   int
		count int64
		sum   int64
		min   value.Value
		max   value.Value
		seen  bool
	}
	termCol := make([]int, len(n.Terms))
	for i, t := range n.Terms {
		termCol[i] = -1
		if t.Kind != algebra.AggCount {
			termCol[i] = in.schema.ColumnIndex(t.Of.Name())
			if termCol[i] < 0 {
				return nil, fmt.Errorf("engine: aggregate column %s not in %s", t.Of, in.schema)
			}
		}
	}

	probe := metrics.Probe{}
	type group struct {
		key   []value.Value
		terms []termState
	}
	groups := map[string]*group{}
	var order []string
	for _, row := range in.rows {
		probe.IncReadLeft()
		var kb strings.Builder
		keyVals := make([]value.Value, len(groupIdx))
		for i, gi := range groupIdx {
			keyVals[i] = row[gi]
			kb.WriteString(row[gi].String())
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			g = &group{key: keyVals, terms: make([]termState, len(n.Terms))}
			for i, t := range n.Terms {
				g.terms[i] = termState{kind: t.Kind, col: termCol[i]}
			}
			groups[k] = g
			order = append(order, k)
			probe.StateAdd(1)
		}
		for i := range g.terms {
			ts := &g.terms[i]
			switch ts.kind {
			case algebra.AggCount:
				ts.count++
			case algebra.AggSum:
				ts.sum += row[ts.col].AsInt()
			case algebra.AggMin:
				if !ts.seen || row[ts.col].Less(ts.min) {
					ts.min = row[ts.col]
				}
				ts.seen = true
			case algebra.AggMax:
				if !ts.seen || ts.max.Less(row[ts.col]) {
					ts.max = row[ts.col]
				}
				ts.seen = true
			}
		}
	}

	schema, err := aggregateOutputSchema(n, in.schema)
	if err != nil {
		return nil, err
	}
	sort.Strings(order)
	rows := make([]relation.Row, 0, len(order))
	for _, k := range order {
		g := groups[k]
		row := make(relation.Row, 0, len(g.key)+len(g.terms))
		row = append(row, g.key...)
		for _, ts := range g.terms {
			switch ts.kind {
			case algebra.AggCount:
				row = append(row, value.Int(ts.count))
			case algebra.AggSum:
				row = append(row, value.Int(ts.sum))
			case algebra.AggMin:
				row = append(row, ts.min)
			case algebra.AggMax:
				row = append(row, ts.max)
			}
		}
		rows = append(rows, row)
	}
	probe.IncEmitted(int64(len(rows)))
	probe.StateRemove(int64(len(groups)))
	ex.stats.add(NodeCost{Label: n.Label(), Algorithm: "hash aggregate", Probe: probe, OutRows: int64(len(rows))})
	return &result{schema: schema, rows: rows}, nil
}

// aggregateOutputSchema mirrors algebra's schema computation locally (the
// algebra version works through OutputSchema; here the input schema is
// already resolved).
func aggregateOutputSchema(a *algebra.Aggregate, in *relation.Schema) (*relation.Schema, error) {
	cols := make([]relation.Column, 0, len(a.GroupBy)+len(a.Terms))
	for _, g := range a.GroupBy {
		idx := in.ColumnIndex(g.Name())
		if idx < 0 {
			return nil, fmt.Errorf("engine: group column %s not in %s", g, in)
		}
		cols = append(cols, relation.Column{Name: g.Name(), Kind: in.Cols[idx].Kind})
	}
	for _, t := range a.Terms {
		kind := value.KindInt
		if t.Kind == algebra.AggMin || t.Kind == algebra.AggMax {
			idx := in.ColumnIndex(t.Of.Name())
			if idx < 0 {
				return nil, fmt.Errorf("engine: aggregate column %s not in %s", t.Of, in)
			}
			kind = in.Cols[idx].Kind
		}
		cols = append(cols, relation.Column{Name: t.As, Kind: kind})
	}
	return relation.NewSchema(cols, -1, -1)
}
