package engine

import (
	"strings"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/optimizer"
	"tdb/internal/relation"
	"tdb/internal/workload"
)

func overlapQuery(relL, relR string) algebra.Expr {
	col := algebra.Column
	return &algebra.Select{
		Input: &algebra.Product{
			L: &algebra.Scan{Relation: relL, As: "a"},
			R: &algebra.Scan{Relation: relR, As: "b"},
		},
		Pred: algebra.Predicate{Atoms: []algebra.Atom{
			{L: col("a", "ValidFrom"), Op: algebra.LT, R: col("b", "ValidTo")},
			{L: col("b", "ValidFrom"), Op: algebra.LT, R: col("a", "ValidTo")},
		}},
	}
}

// Cost-based execution streams large inputs and nested-loops tiny unsorted
// ones, matching the model's crossover, with identical results either way.
func TestCostBasedChoice(t *testing.T) {
	db := NewDB()
	big := relation.FromTuples("Big", workload.Tuples(workload.Config{N: 3000, Lambda: 1, MeanDur: 10, Seed: 1}, "b"))
	big.Name = "Big"
	db.MustRegister(big)
	// A tiny relation stored in an order useless for the overlap join, so
	// streaming would have to sort first.
	tinyT := workload.Tuples(workload.Config{N: 3, Lambda: 1, MeanDur: 10, Seed: 2}, "t")
	tiny := relation.FromTuples("Tiny", tinyT)
	tiny.Name = "Tiny"
	tiny.Sort(relation.Order{relation.TEDesc})
	db.MustRegister(tiny)

	algoOf := func(relL, relR string) (string, *relation.Relation) {
		tree := optimize(t, db, overlapQuery(relL, relR), optimizer.Options{})
		out, stats, err := Run(db, tree, Options{CostBased: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, nc := range stats.Nodes {
			if strings.Contains(nc.Algorithm, "join") {
				return nc.Algorithm, out
			}
		}
		return "", out
	}

	bigAlgo, bigOut := algoOf("Big", "Big")
	if !strings.Contains(bigAlgo, "stream") {
		t.Errorf("large join chose %q, want stream", bigAlgo)
	}
	tinyAlgo, tinyOut := algoOf("Tiny", "Tiny")
	if !strings.Contains(tinyAlgo, "nested-loop") {
		t.Errorf("tiny unsorted join chose %q, want nested loop", tinyAlgo)
	}

	// Same answers as forced plans.
	tree := optimize(t, db, overlapQuery("Big", "Big"), optimizer.Options{})
	ref, _, err := Run(db, tree, Options{ForceNestedLoop: true, ForceNoHash: true})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "cost-based big", bigOut, ref)

	tree = optimize(t, db, overlapQuery("Tiny", "Tiny"), optimizer.Options{})
	ref, _, err = Run(db, tree, Options{VerifyOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "cost-based tiny", tinyOut, ref)
}
