// Package engine implements the physical query execution layer: a named
// database of temporal relations, compilation of algebra predicates into
// row predicates, and an executor that maps the optimizer's annotated
// parse trees onto physical operators — the conventional strategies of
// Section 3 (nested-loop θ-join, hash equi-join, Cartesian product) and
// the stream processing algorithms of Section 4 (contain/contained/overlap
// joins and semijoins, before-join, self-semijoins), sorting inputs as the
// chosen algorithm's sort ordering requires and accounting every
// operator's cost.
package engine

import (
	"fmt"
	"path/filepath"
	"sort"

	"tdb/internal/catalog"
	"tdb/internal/constraints"
	"tdb/internal/obs"
	"tdb/internal/relation"
	"tdb/internal/storage"
)

// DB is a named collection of temporal relations with statistics and
// declared integrity constraints. Relations may optionally be backed by
// paged heap files (StoreRelation), in which case every scan goes through
// the storage layer's buffer pool and its page I/O is accounted per
// operator — making the paper's Section 3 observation that "conventional
// systems would scan the relation several times" directly measurable.
type DB struct {
	rels   map[string]*relation.Relation
	stored map[string]*storage.HeapFile
	cat    *catalog.Catalog
	ics    []constraints.ChronOrder
	reg    *obs.Registry
	live   map[string]*liveStats
}

// SetMetrics publishes database-shape gauges (relation count, total rows,
// stored files) to reg, refreshed on every Register/StoreRelation, and
// routes storage-layer page counters there too. Pass nil to disconnect.
func (db *DB) SetMetrics(reg *obs.Registry) {
	db.reg = reg
	storage.ObserveIO(reg)
	db.refreshGauges()
}

func (db *DB) refreshGauges() {
	if db.reg == nil {
		return
	}
	var rows int64
	for _, r := range db.rels {
		rows += int64(r.Cardinality())
	}
	db.reg.Gauge("tdb_db_relations", "registered relations").Set(int64(len(db.rels)))
	db.reg.Gauge("tdb_db_rows", "total rows across in-memory relations").Set(rows)
	db.reg.Gauge("tdb_db_stored_files", "relations backed by heap files").Set(int64(len(db.stored)))
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		rels:   map[string]*relation.Relation{},
		stored: map[string]*storage.HeapFile{},
		cat:    catalog.New(),
		live:   map[string]*liveStats{},
	}
}

// StoreRelation moves a registered relation onto a paged heap file in dir
// with a buffer pool of poolPages frames; subsequent scans stream from the
// file and count page reads. The in-memory rows are released.
func (db *DB) StoreRelation(name, dir string, poolPages int) error {
	rel, err := db.Relation(name)
	if err != nil {
		return err
	}
	hf, err := storage.Create(filepath.Join(dir, name+".tdb"), rel.Schema, poolPages)
	if err != nil {
		return err
	}
	if err := hf.AppendAll(rel.Rows); err != nil {
		_ = hf.Close() // best-effort cleanup; the append error wins
		return err
	}
	if err := hf.Flush(); err != nil {
		_ = hf.Close() // best-effort cleanup; the flush error wins
		return err
	}
	db.stored[name] = hf
	rel.Rows = nil // scans now come from disk
	db.refreshGauges()
	return nil
}

// StoredIO returns the I/O counters of a stored relation, or nil.
func (db *DB) StoredIO(name string) *storage.IOStats {
	if hf, ok := db.stored[name]; ok {
		return hf.Stats()
	}
	return nil
}

// Close releases the heap files of stored relations.
func (db *DB) Close() error {
	var first error
	for _, hf := range db.stored {
		if err := hf.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Register adds (or replaces) a relation and refreshes its statistics.
func (db *DB) Register(rel *relation.Relation) error {
	if err := rel.Check(); err != nil {
		return err
	}
	db.rels[rel.Name] = rel
	if rel.Schema.Temporal() {
		if _, err := db.cat.Analyze(rel); err != nil {
			return err
		}
	}
	db.refreshGauges()
	return nil
}

// MustRegister is Register that panics, for fixtures and examples.
func (db *DB) MustRegister(rel *relation.Relation) {
	if err := db.Register(rel); err != nil {
		panic(err) // lint:allow panic — Must* constructor for statically known fixtures
	}
}

// Relation returns a registered relation.
func (db *DB) Relation(name string) (*relation.Relation, error) {
	r, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown relation %q", name)
	}
	return r, nil
}

// SchemaOf implements algebra.SchemaSource.
func (db *DB) SchemaOf(name string) (*relation.Schema, error) {
	r, err := db.Relation(name)
	if err != nil {
		return nil, err
	}
	return r.Schema, nil
}

// Stats returns the recorded statistics for a relation, or nil.
func (db *DB) Stats(name string) *catalog.Stats { return db.cat.Lookup(name) }

// Names returns the registered relation names, sorted.
func (db *DB) Names() []string {
	out := make([]string, 0, len(db.rels))
	for n := range db.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DeclareChronOrder registers a chronological-ordering integrity
// constraint (Section 2's Rank example); it is validated against the
// current contents of the relation.
func (db *DB) DeclareChronOrder(ic constraints.ChronOrder) error {
	rel, err := db.Relation(ic.Relation)
	if err != nil {
		return err
	}
	if err := validateChronOrder(rel, ic); err != nil {
		return err
	}
	db.ics = append(db.ics, ic)
	return nil
}

// ChronOrders returns the declared constraints.
func (db *DB) ChronOrders() []constraints.ChronOrder {
	return append([]constraints.ChronOrder{}, db.ics...)
}

// validateChronOrder checks every pair of same-key rows against the
// declared ordering, so a constraint the data violates is rejected rather
// than silently producing wrong "semantic" optimizations.
func validateChronOrder(rel *relation.Relation, ic constraints.ChronOrder) error {
	key := rel.Schema.ColumnIndex(ic.KeyCol)
	val := rel.Schema.ColumnIndex(ic.ValCol)
	if key < 0 || val < 0 {
		return fmt.Errorf("engine: constraint columns %s/%s not in %s", ic.KeyCol, ic.ValCol, rel.Schema)
	}
	if !rel.Schema.Temporal() {
		return fmt.Errorf("engine: chronological ordering needs a temporal relation")
	}
	rank := func(v string) int {
		for i, o := range ic.Order {
			if o == v {
				return i
			}
		}
		return -1
	}
	type occ struct {
		rank int
		row  int
	}
	byKey := map[string][]occ{}
	for i, row := range rel.Rows {
		r := rank(row[val].String())
		if r < 0 {
			return fmt.Errorf("engine: row %d: value %q outside declared order %v", i, row[val], ic.Order)
		}
		k := row[key].String()
		byKey[k] = append(byKey[k], occ{rank: r, row: i})
	}
	for k, occs := range byKey {
		for i, a := range occs {
			for _, b := range occs[i+1:] {
				lo, hi := a, b
				if lo.rank > hi.rank {
					lo, hi = hi, lo
				}
				if lo.rank == hi.rank {
					continue
				}
				loSpan, hiSpan := rel.Span(lo.row), rel.Span(hi.row)
				if !loSpan.BeforeOrMeets(hiSpan) {
					return fmt.Errorf("engine: key %s violates %s ordering: %v at %s not before %v at %s",
						k, ic.ValCol, rel.Rows[lo.row][val], loSpan, rel.Rows[hi.row][val], hiSpan)
				}
				if ic.Continuous && hi.rank == lo.rank+1 && !loSpan.Meets(hiSpan) {
					return fmt.Errorf("engine: key %s violates continuity: %v ends %v, %v starts %v",
						k, rel.Rows[lo.row][val], loSpan.End, rel.Rows[hi.row][val], hiSpan.Start)
				}
			}
		}
	}
	return nil
}
