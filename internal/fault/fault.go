// Package fault is a deterministic fault-injection registry. Code under
// test declares named failpoints ("sites") and consults them at the
// risky moments — a page write, a worker step, a delta delivery. In
// production the registry is disarmed and a site check is a single
// atomic load returning nil. Under test (or `tdb -faults` / the
// TDB_FAULTS environment variable) sites are armed with a mode and a
// deterministic trigger, so a chaos schedule replays identically from
// its seed.
//
// Spec grammar (one or more clauses joined by ';'):
//
//	site=mode[:key=value]...
//
// Modes:
//
//	error          return ErrInjected from Check
//	delay          sleep key ms=N (default 1) then continue
//	panic          panic with a tagged value (workers must recover)
//	torn           truncate the write: Torn returns a prefix length
//
// Triggers (combine with any mode):
//
//	n=K            fire on the K-th hit only (1-based)
//	every=K        fire on every K-th hit
//	p=F:seed=S     fire with probability F from a seeded PRNG
//	limit=K        fire at most K times (default unlimited)
//
// Example:
//
//	storage/page-write=torn:n=2;live/deliver=error:p=0.5:seed=7
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the typed error returned by an armed error-mode site.
// Callers wrap it (%w) so it survives package boundaries and tests can
// assert errors.Is(err, fault.ErrInjected).
var ErrInjected = errors.New("fault: injected failure")

// PanicValue tags panics raised by panic-mode sites so recovery code
// can distinguish an injected panic from a genuine one.
type PanicValue struct{ Site string }

func (p PanicValue) String() string { return "fault: injected panic at " + p.Site }

// Mode is a failpoint's action when its trigger fires.
type Mode int

const (
	ModeError Mode = iota
	ModeDelay
	ModePanic
	ModeTorn
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeDelay:
		return "delay"
	case ModePanic:
		return "panic"
	case ModeTorn:
		return "torn"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// point is one armed failpoint.
type point struct {
	site  string
	mode  Mode
	nth   int64 // fire on exactly the nth hit (1-based); 0 = off
	every int64 // fire on every k-th hit; 0 = off
	prob  float64
	rng   *rand.Rand // non-nil iff prob > 0
	limit int64      // max fires; 0 = unlimited
	delay time.Duration
	hits  int64
	fires int64
}

// fire decides whether this hit triggers, updating counters. Called
// with the registry lock held.
func (p *point) fire() bool {
	p.hits++
	if p.limit > 0 && p.fires >= p.limit {
		return false
	}
	trig := true
	switch {
	case p.nth > 0:
		trig = p.hits == p.nth
	case p.every > 0:
		trig = p.hits%p.every == 0
	case p.rng != nil:
		trig = p.rng.Float64() < p.prob
	}
	if trig {
		p.fires++
	}
	return trig
}

// Status describes one armed site for display (\faults, tests).
type Status struct {
	Site  string
	Mode  string
	Hits  int64
	Fires int64
}

var (
	// armed is the zero-cost gate: sites consult it with one atomic
	// load before taking the registry lock.
	armed  atomic.Bool
	mu     sync.Mutex
	points = map[string]*point{}

	// sites records every Declare'd failpoint so Arm can reject typos
	// and List can document the surface. Declared at init time.
	sitesMu sync.Mutex
	sites   = map[string]string{}
)

// Declare registers a failpoint name with a one-line doc. Call from
// package init of the code hosting the site. Idempotent.
func Declare(site, doc string) {
	sitesMu.Lock()
	sites[site] = doc
	sitesMu.Unlock()
}

// Sites returns the declared failpoints as site → doc.
func Sites() map[string]string {
	sitesMu.Lock()
	defer sitesMu.Unlock()
	out := make(map[string]string, len(sites))
	for k, v := range sites {
		out[k] = v
	}
	return out
}

// Enabled reports whether any site is armed (the fast-path gate).
func Enabled() bool { return armed.Load() }

// Check consults a failpoint. Disarmed: one atomic load, nil. Armed
// error mode returns an error wrapping ErrInjected; delay sleeps;
// panic raises PanicValue; torn mode is inert here (use Torn).
func Check(site string) error {
	if !armed.Load() {
		return nil
	}
	return check(site)
}

func check(site string) error {
	mu.Lock()
	p, ok := points[site]
	if !ok || !p.fire() {
		mu.Unlock()
		return nil
	}
	mode, d := p.mode, p.delay
	mu.Unlock()
	switch mode {
	case ModeError:
		return fmt.Errorf("%w (site %s)", ErrInjected, site)
	case ModeDelay:
		time.Sleep(d)
	case ModePanic:
		// lint:allow panic — panic mode exists to exercise recovery paths; tagged for recover()
		panic(PanicValue{Site: site})
	}
	return nil
}

// Torn consults a torn-write failpoint: given the intended write size,
// it returns the number of bytes to actually write. A disarmed or
// non-firing site returns size unchanged. A firing torn-mode site
// returns a strict prefix (size/2, at least 1 for size > 1, 0 for
// size ≤ 1); other firing modes behave as in Check.
func Torn(site string, size int) (int, error) {
	if !armed.Load() {
		return size, nil
	}
	mu.Lock()
	p, ok := points[site]
	if !ok || !p.fire() {
		mu.Unlock()
		return size, nil
	}
	mode, d := p.mode, p.delay
	mu.Unlock()
	switch mode {
	case ModeTorn:
		if size <= 1 {
			return 0, nil
		}
		return size / 2, nil
	case ModeError:
		return size, fmt.Errorf("%w (site %s)", ErrInjected, site)
	case ModeDelay:
		time.Sleep(d)
	case ModePanic:
		// lint:allow panic — panic mode exists to exercise recovery paths; tagged for recover()
		panic(PanicValue{Site: site})
	}
	return size, nil
}

// Arm parses a spec (see package doc) and arms its sites, replacing
// any prior arming of the same sites. Unknown sites (never Declare'd)
// are rejected so schedules can't silently rot.
func Arm(spec string) error {
	pts, err := parse(spec)
	if err != nil {
		return err
	}
	mu.Lock()
	for _, p := range pts {
		points[p.site] = p
	}
	armed.Store(len(points) > 0)
	mu.Unlock()
	return nil
}

// Disarm removes one site's arming.
func Disarm(site string) {
	mu.Lock()
	delete(points, site)
	armed.Store(len(points) > 0)
	mu.Unlock()
}

// Reset disarms every site. Tests defer this.
func Reset() {
	mu.Lock()
	points = map[string]*point{}
	armed.Store(false)
	mu.Unlock()
}

// List returns the armed sites, sorted by name.
func List() []Status {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Status, 0, len(points))
	for _, p := range points {
		out = append(out, Status{Site: p.site, Mode: p.mode.String(), Hits: p.hits, Fires: p.fires})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Fires returns how many times a site has fired (0 if not armed).
func Fires(site string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[site]; ok {
		return p.fires
	}
	return 0
}

func parse(spec string) ([]*point, error) {
	var pts []*point
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		site, rest, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("fault: clause %q: want site=mode[:k=v...]", clause)
		}
		site = strings.TrimSpace(site)
		sitesMu.Lock()
		_, known := sites[site]
		sitesMu.Unlock()
		if !known {
			return nil, fmt.Errorf("fault: unknown site %q (declared: %s)", site, strings.Join(knownSites(), ", "))
		}
		fields := strings.Split(rest, ":")
		p := &point{site: site, delay: time.Millisecond}
		switch strings.TrimSpace(fields[0]) {
		case "error":
			p.mode = ModeError
		case "delay":
			p.mode = ModeDelay
		case "panic":
			p.mode = ModePanic
		case "torn":
			p.mode = ModeTorn
		default:
			return nil, fmt.Errorf("fault: site %s: unknown mode %q", site, fields[0])
		}
		var seed int64 = 1
		for _, kv := range fields[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("fault: site %s: malformed option %q", site, kv)
			}
			switch k {
			case "n":
				x, err := strconv.ParseInt(v, 10, 64)
				if err != nil || x < 1 {
					return nil, fmt.Errorf("fault: site %s: bad n=%s", site, v)
				}
				p.nth = x
			case "every":
				x, err := strconv.ParseInt(v, 10, 64)
				if err != nil || x < 1 {
					return nil, fmt.Errorf("fault: site %s: bad every=%s", site, v)
				}
				p.every = x
			case "p":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f < 0 || f > 1 {
					return nil, fmt.Errorf("fault: site %s: bad p=%s", site, v)
				}
				p.prob = f
			case "seed":
				x, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("fault: site %s: bad seed=%s", site, v)
				}
				seed = x
			case "limit":
				x, err := strconv.ParseInt(v, 10, 64)
				if err != nil || x < 1 {
					return nil, fmt.Errorf("fault: site %s: bad limit=%s", site, v)
				}
				p.limit = x
			case "ms":
				x, err := strconv.ParseInt(v, 10, 64)
				if err != nil || x < 0 {
					return nil, fmt.Errorf("fault: site %s: bad ms=%s", site, v)
				}
				p.delay = time.Duration(x) * time.Millisecond
			default:
				return nil, fmt.Errorf("fault: site %s: unknown option %q", site, k)
			}
		}
		if p.prob > 0 {
			p.rng = rand.New(rand.NewSource(seed)) // lint:allow determinism — seeded explicitly for replayable schedules
		}
		pts = append(pts, p)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("fault: empty spec")
	}
	return pts, nil
}

func knownSites() []string {
	sitesMu.Lock()
	defer sitesMu.Unlock()
	out := make([]string, 0, len(sites))
	for s := range sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
