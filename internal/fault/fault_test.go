package fault

import (
	"errors"
	"testing"
	"time"
)

func init() {
	Declare("test/a", "test site a")
	Declare("test/b", "test site b")
	Declare("test/torn", "test torn site")
}

func TestDisarmedIsNoop(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("registry armed after Reset")
	}
	if err := Check("test/a"); err != nil {
		t.Fatalf("disarmed Check returned %v", err)
	}
	if n, err := Torn("test/torn", 100); n != 100 || err != nil {
		t.Fatalf("disarmed Torn = %d, %v", n, err)
	}
}

func TestErrorModeNthHit(t *testing.T) {
	Reset()
	defer Reset()
	if err := Arm("test/a=error:n=3"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		err := Check("test/a")
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: want ErrInjected, got %v", i, err)
			}
		} else if err != nil {
			t.Fatalf("hit %d: unexpected %v", i, err)
		}
	}
	if f := Fires("test/a"); f != 1 {
		t.Fatalf("fires = %d, want 1", f)
	}
}

func TestEveryAndLimit(t *testing.T) {
	Reset()
	defer Reset()
	if err := Arm("test/a=error:every=2:limit=2"); err != nil {
		t.Fatal(err)
	}
	var fired int
	for i := 0; i < 10; i++ {
		if Check("test/a") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2 (every=2 capped by limit=2)", fired)
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	run := func() []bool {
		Reset()
		if err := Arm("test/a=error:p=0.5:seed=42"); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 20)
		for i := range out {
			out[i] = Check("test/a") != nil
		}
		return out
	}
	a, b := run(), run()
	Reset()
	var any bool
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded schedule diverged at hit %d", i)
		}
		any = any || a[i]
	}
	if !any {
		t.Fatal("p=0.5 over 20 hits never fired")
	}
}

func TestTornReturnsStrictPrefix(t *testing.T) {
	Reset()
	defer Reset()
	if err := Arm("test/torn=torn:n=1"); err != nil {
		t.Fatal(err)
	}
	n, err := Torn("test/torn", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || n >= 4096 {
		t.Fatalf("torn write of 4096 returned %d, want strict prefix", n)
	}
	// Site fired once (n=1): subsequent writes pass through whole.
	if n, _ := Torn("test/torn", 4096); n != 4096 {
		t.Fatalf("second write torn to %d, want 4096", n)
	}
}

func TestPanicMode(t *testing.T) {
	Reset()
	defer Reset()
	if err := Arm("test/a=panic:n=1"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok || pv.Site != "test/a" {
			t.Fatalf("recover() = %v, want PanicValue{test/a}", r)
		}
	}()
	_ = Check("test/a")
	t.Fatal("panic mode did not panic")
}

func TestDelayMode(t *testing.T) {
	Reset()
	defer Reset()
	if err := Arm("test/a=delay:ms=10:n=1"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Check("test/a"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("delay mode slept only %v", d)
	}
}

func TestSpecErrors(t *testing.T) {
	Reset()
	defer Reset()
	for _, bad := range []string{
		"",
		"test/a",
		"nosuchsite=error",
		"test/a=frobnicate",
		"test/a=error:n=0",
		"test/a=error:p=2",
		"test/a=error:wat",
	} {
		if err := Arm(bad); err == nil {
			t.Errorf("Arm(%q) accepted", bad)
		}
	}
	if Enabled() {
		t.Fatal("failed Arm left registry armed")
	}
}

func TestDisarmSite(t *testing.T) {
	Reset()
	defer Reset()
	if err := Arm("test/a=error:every=1;test/b=error:every=1"); err != nil {
		t.Fatal(err)
	}
	Disarm("test/a")
	if Check("test/a") != nil {
		t.Fatal("disarmed site still fires")
	}
	if Check("test/b") == nil {
		t.Fatal("sibling site disarmed too")
	}
	Disarm("test/b")
	if Enabled() {
		t.Fatal("registry armed with no points")
	}
}

func TestDeclareAndList(t *testing.T) {
	Reset()
	defer Reset()
	if _, ok := Sites()["test/a"]; !ok {
		t.Fatal("declared site missing from Sites()")
	}
	if err := Arm("test/a=error:n=1;test/b=delay"); err != nil {
		t.Fatal(err)
	}
	_ = Check("test/a")
	st := List()
	if len(st) != 2 || st[0].Site != "test/a" || st[1].Site != "test/b" {
		t.Fatalf("List() = %+v", st)
	}
	if st[0].Hits != 1 || st[0].Fires != 1 {
		t.Fatalf("test/a status = %+v", st[0])
	}
}
