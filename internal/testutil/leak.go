// Package testutil holds cross-package test helpers. Its only current
// export is the goroutine leak check that the parallel-executor, live
// ingestion and standing-query suites install: the fault-injection and
// governor work guarantees that every error path unwinds its workers, and
// this helper is how the tests hold that guarantee — any goroutine created
// by module code that survives the test is a failure, not a warning.
package testutil

import (
	"runtime"
	"strings"
	"time"
)

// TB is the subset of *testing.T the helpers need. Taking the interface
// keeps this package free of a testing import, so it can never be linked
// into a release binary by accident.
type TB interface {
	Cleanup(func())
	Errorf(format string, args ...any)
	Helper()
}

// VerifyNoLeaks registers a cleanup that fails the test if any goroutine
// spawned by module code is still running when the test (and its other
// cleanups — Cleanup runs LIFO, so register this first) has finished.
// Goroutines are given a grace window to unwind: a worker observing a
// context cancellation or a closed quit channel needs a few scheduler
// rounds to reach its return, and flagging it mid-exit would make the
// check flaky exactly where it must be trustworthy.
func VerifyNoLeaks(t TB) {
	t.Helper()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = moduleGoroutines()
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("%d goroutine(s) spawned by module code leaked past the test:\n\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// moduleGoroutines snapshots every live goroutine and keeps the ones
// created by this module's code — the "created by tdb/..." line the
// runtime appends to each stack identifies the spawn site precisely, so
// test-runner and stdlib goroutines never count.
func moduleGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if strings.Contains(g, "created by tdb/") {
			out = append(out, g)
		}
	}
	return out
}
