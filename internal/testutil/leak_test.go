package testutil

import (
	"fmt"
	"strings"
	"testing"
)

// fakeTB records what VerifyNoLeaks does to it, so the check can be
// exercised against a deliberate leak without failing the real test.
type fakeTB struct {
	cleanups []func()
	failed   bool
	msg      string
}

func (f *fakeTB) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) Helper()           {}
func (f *fakeTB) Errorf(format string, args ...any) {
	f.failed = true
	f.msg = fmt.Sprintf(format, args...)
}

// runCleanups mirrors testing's LIFO cleanup order.
func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func TestVerifyNoLeaksClean(t *testing.T) {
	fake := &fakeTB{}
	VerifyNoLeaks(fake)
	// A short-lived module goroutine that exits on its own is not a leak:
	// the grace window lets it unwind.
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	fake.runCleanups()
	if fake.failed {
		t.Fatalf("clean run flagged a leak:\n%s", fake.msg)
	}
}

func TestVerifyNoLeaksCatchesBlockedGoroutine(t *testing.T) {
	fake := &fakeTB{}
	VerifyNoLeaks(fake)
	release := make(chan struct{})
	parked := make(chan struct{})
	go func() {
		close(parked)
		<-release
	}()
	<-parked
	fake.runCleanups()
	close(release) // let the decoy exit before other tests snapshot
	if !fake.failed {
		t.Fatal("blocked module goroutine was not reported")
	}
	if !strings.Contains(fake.msg, "created by tdb/") {
		t.Fatalf("report does not identify the spawn site:\n%s", fake.msg)
	}
}
