// Command tdb is a small interactive shell for the temporal query engine:
// it loads temporal relations from CSV files, accepts Quel-style statements
// (terminated by a line containing only "go", INGRES-style), optimizes them
// through the paper's full pipeline — temporal-operator expansion, semantic
// optimization against declared integrity constraints, conventional
// pushdown, temporal operator recognition — and executes them with the
// stream algorithms, printing results, plans, and operator costs.
//
// Usage:
//
//	tdb -load Faculty=faculty.csv [-rankorder Faculty:Name:Rank=Assistant,Associate,Full[:continuous]] [-e query.quel]
//	    [-listen 127.0.0.1:8080 [-serve]] [-max-concurrent N] [-max-queue N] [-queue-timeout D]
//	    [-idle-timeout D] [-drain-timeout D] [-trace trace.jsonl] [-parallelism N]
//	    [-parallel-min-rows N] [-govern] [-profile] [-slow-query 250ms]
//	    [-faults "site=mode[:k=v...];..."]
//
// With -listen the process serves the versioned wire protocol under /v1 —
// sessions, queries, prepared statements, appends and subscription
// streams; the driver package is the database/sql client — alongside
// /metrics (Prometheus text), /debug/vars (expvar) and /debug/pprof,
// while the shell keeps running against the same catalog (shell live
// commands and network sessions share one set of live tables and
// standing queries). -serve drops the shell and runs headless until
// SIGINT or SIGTERM starts a graceful drain: new requests are refused,
// open subscription streams get a final drain event, and in-flight
// queries finish within -drain-timeout. The -max-concurrent, -max-queue
// and -queue-timeout flags set the default tenant's admission quota.
// With -trace every traced query appends its per-query spans to the
// given JSONL file, and the operational event journal streams there too,
// interleaved as JSON lines.
//
// -profile turns on per-query resource accounting: traced plans report
// allocs/op, B/op and the hot-loop counters per node in EXPLAIN ANALYZE
// output, and the executing goroutines carry pprof labels (tdb.query,
// tdb.node, tdb.op) so CPU and heap profiles from /debug/pprof slice by
// operator. -slow-query D journals any query slower than D.
//
// -govern arms the workspace governor: serial temporal joins whose
// measured workspace breaches the optimizer's admission ceiling degrade to
// the baseline sort-merge (an explain note and the
// tdb_governor_fallbacks_total counter record it), and standing queries
// are registered with the breaker (trip → re-admit → degrade/decline).
//
// -faults arms deterministic fault-injection failpoints for robustness
// drills, e.g. -faults "storage/page-read=error:n=3;live/append=delay:ms=5".
// The TDB_FAULTS environment variable is an equivalent spelling for
// harnesses that cannot pass flags. Disarmed failpoints cost one atomic
// load; see DESIGN.md for the site table and the spec grammar.
//
// Shell commands: \d (relations), \stats R, \explain on|off,
// \streams on|off, \trace on|off, \profile on|off, \set parallelism N,
// \metrics, \events [json], \faults [arm SPEC | reset], \q.
//
// Live ingestion: a "subscribe NAME (targets) where …" statement registers
// a standing temporal query (admitted incrementally when its Tables 1–3
// workspace characterization is bounded, degraded to periodic batch
// re-execution otherwise); \append REL v1,v2,… ingests one tuple,
// \live lists tables and standing queries, \deltas NAME polls a query's
// fresh result deltas, \verify NAME checks accumulated deltas against a
// batch re-execution, and \flush force-releases the reorder buffers.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"tdb/internal/constraints"
	"tdb/internal/engine"
	"tdb/internal/fault"
	"tdb/internal/interval"
	"tdb/internal/live"
	"tdb/internal/obs"
	"tdb/internal/optimizer"
	"tdb/internal/quel"
	"tdb/internal/relation"
	"tdb/internal/server"
	"tdb/internal/storage"
	"tdb/internal/value"
)

type loadFlags []string

func (l *loadFlags) String() string     { return strings.Join(*l, ",") }
func (l *loadFlags) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	var loads loadFlags
	flag.Var(&loads, "load", "NAME=path.csv — load a temporal relation (repeatable)")
	rankOrder := flag.String("rankorder", "", "REL:KEY:VAL=v1,v2,...[:continuous] — declare a chronological ordering")
	script := flag.String("e", "", "execute statements from this file and exit")
	listen := flag.String("listen", "", "serve the wire protocol (/v1), /metrics, expvar and pprof on this address (e.g. 127.0.0.1:8080)")
	serve := flag.Bool("serve", false, "headless service mode: no shell, serve -listen until SIGINT/SIGTERM drains the process")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission quota: concurrent queries per tenant (0 = server default)")
	maxQueue := flag.Int("max-queue", 0, "admission quota: queued admissions per tenant before rejection (0 = default, <0 = no queue)")
	queueTimeout := flag.Duration("queue-timeout", 0, "admission quota: longest a request waits for a slot (0 = server default)")
	idleTimeout := flag.Duration("idle-timeout", 0, "expire sessions idle for this long (0 = server default)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "bound on graceful drain when shutting the server down")
	traceFile := flag.String("trace", "", "append per-query JSONL trace spans to this file (also enables \\trace on)")
	parallelism := flag.Int("parallelism", 0, "worker cap for time-range parallel execution; 0 = GOMAXPROCS, 1 = serial")
	parallelMinRows := flag.Int("parallel-min-rows", 0, "combined-input floor below which operators stay serial (0 = default)")
	govern := flag.Bool("govern", false, "abort-and-degrade joins whose workspace breaches the admission ceiling; govern standing queries")
	profile := flag.Bool("profile", false, "per-query resource accounting: allocs/B per node in the analyze tree, pprof labels by operator")
	slowQuery := flag.Duration("slow-query", 0, "journal queries slower than this duration (0 disables the slow-query log)")
	faults := flag.String("faults", "", `arm failpoints, e.g. "storage/page-read=error:n=3;live/append=delay:ms=5" (or TDB_FAULTS)`)
	flag.Parse()

	spec := *faults
	if spec == "" {
		spec = os.Getenv("TDB_FAULTS")
	}
	if spec != "" {
		if err := fault.Arm(spec); err != nil {
			fatal("%v", err)
		}
		for _, st := range fault.List() {
			fmt.Printf("failpoint armed: %s=%s\n", st.Site, st.Mode)
		}
	}

	db := engine.NewDB()
	for _, l := range loads {
		name, path, ok := strings.Cut(l, "=")
		if !ok {
			fatal("bad -load %q, want NAME=path", l)
		}
		rel, err := storage.LoadCSV(path, name, relation.TupleSchema)
		if err != nil {
			// Retry with the Faculty-style schema if the header differs.
			rel, err = loadFlexible(path, name)
			if err != nil {
				fatal("loading %s: %v", path, err)
			}
		}
		if err := db.Register(rel); err != nil {
			fatal("registering %s: %v", name, err)
		}
		fmt.Printf("loaded %s: %d rows\n", name, rel.Cardinality())
	}
	if *rankOrder != "" {
		ic, err := parseRankOrder(*rankOrder)
		if err != nil {
			fatal("%v", err)
		}
		if err := db.DeclareChronOrder(ic); err != nil {
			fatal("declaring constraint: %v", err)
		}
		fmt.Printf("declared chronological ordering on %s.%s\n", ic.Relation, ic.ValCol)
	}

	sh := &shell{db: db, explain: true, streams: true, out: os.Stdout, reg: obs.NewRegistry(),
		parallelism: *parallelism, parallelMinRows: *parallelMinRows, govern: *govern,
		profile: *profile, slowQuery: *slowQuery, events: obs.NewEventLog(obs.DefaultEventCap)}
	db.SetMetrics(sh.reg)
	defer storage.ObserveIO(nil)
	if *serve && *listen == "" {
		fatal("-serve requires -listen")
	}
	if *listen != "" {
		so := serveOptions{maxConcurrent: *maxConcurrent, maxQueue: *maxQueue,
			queueTimeout: *queueTimeout, idleTimeout: *idleTimeout, drainTimeout: *drainTimeout}
		srv := newServer(sh, so)
		addr, err := srv.Start(*listen)
		if err != nil {
			fatal("listen %s: %v", *listen, err)
		}
		sh.srv = srv
		fmt.Printf("serving tdb protocol %s on http://%s/%s/ (metrics /metrics, expvar /debug/vars, profiles /debug/pprof/)\n",
			server.Protocol, addr, server.Protocol)
		if *serve {
			runServe(srv, *drainTimeout, os.Stdout)
			return
		}
		// Interactive or scripted runs still drain before exiting, and a
		// signal mid-session drains in-flight network clients instead of
		// cutting them off — the shell's stdin loop cannot observe it.
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		// lint:allow goroutine-hygiene — exits the process after the drain; no joinable lifetime exists
		go func() {
			sig := <-sigc
			fmt.Fprintf(os.Stderr, "received %s; draining\n", sig)
			drainServer(srv, *drainTimeout, os.Stderr)
			os.Exit(0)
		}()
		defer drainServer(srv, *drainTimeout, os.Stdout)
	}
	if *traceFile != "" {
		f, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal("open trace file: %v", err)
		}
		defer func() { _ = f.Close() }()
		sh.trace = true
		sh.traceOut = f
		// The event journal shares the trace sink: operational events
		// interleave with span batches as self-describing JSON lines.
		sh.events.SetSink(f)
	}
	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fatal("%v", err)
		}
		if err := sh.runStatements(string(data)); err != nil {
			fatal("%v", err)
		}
		return
	}
	sh.repl()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tdb: "+format+"\n", args...)
	os.Exit(1)
}

// loadFlexible reads a CSV whose header defines the schema: every column
// named ValidFrom/ValidTo becomes a temporal attribute, others default to
// strings.
func loadFlexible(path, name string) (*relation.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, err
	}
	cols := strings.Split(strings.TrimSpace(header), ",")
	schemaCols := make([]relation.Column, len(cols))
	ts, te := -1, -1
	for i, c := range cols {
		kind := value.KindString
		if strings.EqualFold(c, "ValidFrom") || strings.EqualFold(c, "ValidTo") {
			kind = value.KindTime
		}
		schemaCols[i] = relation.Column{Name: c, Kind: kind}
		if strings.EqualFold(c, "ValidFrom") {
			ts = i
		}
		if strings.EqualFold(c, "ValidTo") {
			te = i
		}
	}
	schema, err := relation.NewSchema(schemaCols, ts, te)
	if err != nil {
		return nil, err
	}
	return storage.LoadCSV(path, name, schema)
}

func parseRankOrder(s string) (constraints.ChronOrder, error) {
	continuous := false
	if strings.HasSuffix(s, ":continuous") {
		continuous = true
		s = strings.TrimSuffix(s, ":continuous")
	}
	head, vals, ok := strings.Cut(s, "=")
	if !ok {
		return constraints.ChronOrder{}, fmt.Errorf("bad -rankorder %q", s)
	}
	parts := strings.Split(head, ":")
	if len(parts) != 3 {
		return constraints.ChronOrder{}, fmt.Errorf("bad -rankorder head %q, want REL:KEY:VAL", head)
	}
	return constraints.ChronOrder{
		Relation: parts[0], KeyCol: parts[1], ValCol: parts[2],
		Order: strings.Split(vals, ","), Continuous: continuous,
	}, nil
}

type shell struct {
	db      *engine.DB
	explain bool
	streams bool
	trace   bool
	out     io.Writer
	// reg accumulates metrics across queries; traceOut, when set, receives
	// every traced query's spans as JSONL.
	reg      *obs.Registry
	traceOut io.Writer
	// parallelism and parallelMinRows feed engine.Options verbatim; see
	// \set parallelism. govern arms the workspace governor for batch joins
	// and the breaker for standing queries.
	parallelism     int
	parallelMinRows int
	govern          bool
	// profile turns on per-query resource accounting (allocs/B per node,
	// pprof labels); slowQuery journals queries slower than the cutoff;
	// events is the bounded operational journal behind \events.
	profile   bool
	slowQuery time.Duration
	events    *obs.EventLog
	// liveMgr owns live tables and standing queries; created on the first
	// subscribe or \append. When srv is set (the process is serving the
	// wire protocol) the server's manager is used instead, so shell
	// commands and network sessions share one set of live tables and
	// standing queries.
	liveMgr *live.Manager
	srv     *server.Server
}

// liveManager lazily creates the live manager over the shell's database.
func (sh *shell) liveManager() *live.Manager {
	if sh.liveMgr == nil {
		sh.liveMgr = live.NewManager(sh.db, sh.reg, engine.Options{
			Registry: sh.reg, Parallelism: sh.parallelism, ParallelMinRows: sh.parallelMinRows,
			Events: sh.events, SlowQuery: sh.slowQuery})
	}
	return sh.liveMgr
}

// withLive runs fn against the live manager: the server's, under its
// exclusive catalog lock, when the process is serving network clients;
// the shell's own otherwise.
func (sh *shell) withLive(fn func(*live.Manager) error) error {
	if sh.srv != nil {
		return sh.srv.WithLive(fn)
	}
	return fn(sh.liveManager())
}

// hasLive reports whether any live state can exist yet.
func (sh *shell) hasLive() bool { return sh.srv != nil || sh.liveMgr != nil }

// printf writes best-effort shell output; a broken pipe on interactive
// output is not worth propagating through every display path.
func (sh *shell) printf(format string, args ...any) {
	_, _ = fmt.Fprintf(sh.out, format, args...)
}

func (sh *shell) println(args ...any) {
	_, _ = fmt.Fprintln(sh.out, args...)
}

func (sh *shell) print(args ...any) {
	_, _ = fmt.Fprint(sh.out, args...)
}

func (sh *shell) repl() {
	fmt.Println(`tdb — temporal query shell. End statements with a line "go"; \q quits.`)
	sc := bufio.NewScanner(os.Stdin)
	var buf strings.Builder
	for {
		fmt.Print("tdb> ")
		if !sc.Scan() {
			break
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == `\q`:
			return
		case trimmed == `\d`:
			sh.describe()
			continue
		case strings.HasPrefix(trimmed, `\stats `):
			sh.statsOf(strings.TrimSpace(strings.TrimPrefix(trimmed, `\stats`)))
			continue
		case trimmed == `\explain on`, trimmed == `\explain off`:
			sh.explain = trimmed == `\explain on`
			continue
		case trimmed == `\streams on`, trimmed == `\streams off`:
			sh.streams = trimmed == `\streams on`
			continue
		case trimmed == `\trace on`, trimmed == `\trace off`:
			sh.trace = trimmed == `\trace on`
			continue
		case trimmed == `\profile on`, trimmed == `\profile off`:
			sh.profile = trimmed == `\profile on`
			continue
		case trimmed == `\metrics`:
			sh.metrics()
			continue
		case trimmed == `\events`, trimmed == `\events json`:
			sh.showEvents(strings.HasSuffix(trimmed, "json"))
			continue
		case trimmed == `\faults` || strings.HasPrefix(trimmed, `\faults `):
			sh.faults(strings.TrimSpace(strings.TrimPrefix(trimmed, `\faults`)))
			continue
		case trimmed == `\live`:
			sh.liveStatus()
			continue
		case trimmed == `\flush`:
			sh.flushLive()
			continue
		case strings.HasPrefix(trimmed, `\append `):
			sh.appendRow(strings.TrimSpace(strings.TrimPrefix(trimmed, `\append`)))
			continue
		case strings.HasPrefix(trimmed, `\deltas `):
			sh.pollDeltas(strings.TrimSpace(strings.TrimPrefix(trimmed, `\deltas`)))
			continue
		case strings.HasPrefix(trimmed, `\verify `):
			sh.verifyStanding(strings.TrimSpace(strings.TrimPrefix(trimmed, `\verify`)))
			continue
		case strings.HasPrefix(trimmed, `\set parallelism `):
			sh.setParallelism(strings.TrimSpace(strings.TrimPrefix(trimmed, `\set parallelism`)))
			continue
		case strings.EqualFold(trimmed, "go"):
			if err := sh.runStatements(buf.String()); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			}
			buf.Reset()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
	}
}

func (sh *shell) describe() {
	for _, name := range sh.db.Names() {
		rel, err := sh.db.Relation(name)
		if err != nil {
			continue
		}
		sh.printf("%s%s  [%d rows]\n", name, rel.Schema, rel.Cardinality())
	}
}

// metrics renders the registry in the Prometheus text format.
func (sh *shell) metrics() {
	if err := sh.reg.WritePrometheus(sh.out); err != nil {
		sh.printf("metrics: %v\n", err)
	}
}

// showEvents renders the operational event journal (\events): slow
// queries, governor fallbacks, breaker trips, backpressure suspensions.
// With asJSON it dumps the buffer as JSONL instead.
func (sh *shell) showEvents(asJSON bool) {
	if asJSON {
		if err := sh.events.WriteJSONL(sh.out); err != nil {
			sh.printf("events: %v\n", err)
		}
		return
	}
	evs := sh.events.Events()
	if len(evs) == 0 {
		sh.println("events: journal empty")
		return
	}
	if d := sh.events.Dropped(); d > 0 {
		sh.printf("events: %d buffered (%d older dropped)\n", len(evs), d)
	}
	for _, e := range evs {
		keys := make([]string, 0, len(e.Detail))
		for k := range e.Detail {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var detail strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&detail, " %s=%s", k, e.Detail[k])
		}
		sh.printf("#%-4d %s  %-18s %s%s\n",
			e.Seq, time.Unix(0, e.TimeNS).Format("15:04:05.000"), e.Kind, e.Query, detail.String())
	}
}

// faults handles \faults: bare lists the declared sites and what is armed,
// "arm SPEC" arms a schedule, "reset" disarms everything.
func (sh *shell) faults(arg string) {
	switch {
	case arg == "":
		armed := map[string]fault.Status{}
		for _, st := range fault.List() {
			armed[st.Site] = st
		}
		sites := fault.Sites()
		names := make([]string, 0, len(sites))
		for name := range sites {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if st, ok := armed[name]; ok {
				sh.printf("%-26s ARMED %s (hits %d, fires %d) — %s\n",
					name, st.Mode, st.Hits, st.Fires, sites[name])
				continue
			}
			sh.printf("%-26s disarmed — %s\n", name, sites[name])
		}
	case arg == "reset":
		fault.Reset()
		sh.println("all failpoints disarmed")
	case strings.HasPrefix(arg, "arm "):
		spec := strings.TrimSpace(strings.TrimPrefix(arg, "arm"))
		if err := fault.Arm(spec); err != nil {
			sh.printf("faults: %v\n", err)
			return
		}
		for _, st := range fault.List() {
			sh.printf("failpoint armed: %s=%s\n", st.Site, st.Mode)
		}
	default:
		sh.println(`\faults wants: \faults | \faults arm SPEC | \faults reset`)
	}
}

// setParallelism handles \set parallelism N: 0 restores the GOMAXPROCS
// default, 1 disables parallel execution. The answer is identical at any
// setting; only the worker fan-out changes.
func (sh *shell) setParallelism(arg string) {
	var n int
	if _, err := fmt.Sscanf(arg, "%d", &n); err != nil || n < 0 {
		sh.printf("\\set parallelism wants a non-negative integer, got %q\n", arg)
		return
	}
	sh.parallelism = n
	switch n {
	case 0:
		sh.println("parallelism: GOMAXPROCS default")
	case 1:
		sh.println("parallelism: serial execution")
	default:
		sh.printf("parallelism: up to %d shard workers\n", n)
	}
}

// appendRow handles \append REL v1,v2,… — one tuple into a live table,
// values matched positionally against the relation schema.
func (sh *shell) appendRow(arg string) {
	name, rest, ok := strings.Cut(arg, " ")
	if !ok {
		sh.println(`\append wants: \append REL v1,v2,...`)
		return
	}
	rel, err := sh.db.Relation(name)
	if err != nil {
		sh.printf("append: %v\n", err)
		return
	}
	vals := strings.Split(rest, ",")
	if len(vals) != rel.Schema.Arity() {
		sh.printf("append: %d values for %s%s\n", len(vals), name, rel.Schema)
		return
	}
	row := make(relation.Row, len(vals))
	for i, c := range rel.Schema.Cols {
		s := strings.TrimSpace(vals[i])
		switch c.Kind {
		case value.KindString:
			row[i] = value.String_(strings.Trim(s, `"`))
		case value.KindTime:
			var n int64
			if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
				sh.printf("append: column %s wants a time, got %q\n", c.Name, s)
				return
			}
			row[i] = value.TimeVal(interval.Time(n))
		case value.KindInt:
			var n int64
			if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
				sh.printf("append: column %s wants an integer, got %q\n", c.Name, s)
				return
			}
			row[i] = value.Int(n)
		default:
			sh.printf("append: column %s has unsupported kind\n", c.Name)
			return
		}
	}
	if err := sh.withLive(func(m *live.Manager) error {
		if err := m.Append(name, row); err != nil {
			return err
		}
		t := m.Table(name)
		sh.printf("appended to %s (watermark %d, buffered %d, released %d)\n",
			name, t.Watermark(), t.Buffered(), t.Released())
		return nil
	}); err != nil {
		sh.printf("append: %v\n", err)
	}
}

// liveStatus renders live tables and standing queries for \live.
func (sh *shell) liveStatus() {
	if !sh.hasLive() {
		sh.println("live: nothing ingested or subscribed")
		return
	}
	_ = sh.withLive(func(m *live.Manager) error {
		for _, t := range m.Tables() {
			sh.printf("table %s: watermark %d, buffered %d, released %d, rejected %d\n",
				t.Name(), t.Watermark(), t.Buffered(), t.Released(), t.Rejected())
		}
		for _, q := range m.Queries() {
			sh.printf("query %s: %s — %d deltas, workspace %d (bound %.0f), %s\n",
				q.Name(), q.Explain(), len(q.Deltas()), q.Workspace(), q.Bound(), q.Suspended())
		}
		return nil
	})
}

// flushLive force-releases every reorder buffer (\flush).
func (sh *shell) flushLive() {
	if !sh.hasLive() {
		sh.println("live: nothing to flush")
		return
	}
	if err := sh.withLive(func(m *live.Manager) error { return m.Flush() }); err != nil {
		sh.println("flush: " + err.Error())
	}
	sh.liveStatus()
}

// pollDeltas handles \deltas NAME: poll the standing query and print the
// fresh delta rows.
func (sh *shell) pollDeltas(name string) {
	if err := sh.withLive(func(m *live.Manager) error {
		q := m.Query(name)
		if q == nil {
			sh.printf("no standing query %q\n", name)
			return nil
		}
		rows, err := q.Poll()
		if err != nil {
			return err
		}
		if schema := q.Schema(); schema != nil {
			out := relation.New(name+"Δ", schema)
			out.Rows = rows
			sh.print(out)
			return nil
		}
		sh.printf("%sΔ: %d rows\n", name, len(rows))
		for _, row := range rows {
			sh.println("  " + row.Key())
		}
		return nil
	}); err != nil {
		sh.printf("poll %s: %v\n", name, err)
	}
}

// verifyStanding handles \verify NAME: check accumulated deltas against a
// batch re-execution over the current contents.
func (sh *shell) verifyStanding(name string) {
	_ = sh.withLive(func(m *live.Manager) error {
		q := m.Query(name)
		if q == nil {
			sh.printf("no standing query %q\n", name)
			return nil
		}
		deltas, ref, err := q.Verify()
		if err != nil {
			sh.printf("verify %s: FAILED: %v\n", name, err)
			return nil
		}
		sh.printf("verify %s: OK — %d accumulated deltas consistent with %d-row batch re-execution\n",
			name, deltas, ref)
		return nil
	})
}

func (sh *shell) statsOf(name string) {
	if st := sh.db.Stats(name); st != nil {
		sh.println(st)
		return
	}
	sh.printf("no statistics for %q\n", name)
}

func (sh *shell) runStatements(src string) error {
	prog, err := quel.Parse(src)
	if err != nil {
		return err
	}
	queries, err := quel.Translate(prog, sh.db)
	if err != nil {
		return err
	}
	if sh.explain {
		sh.printf("-- normalized --\n%s", quel.Print(prog))
	}
	for _, q := range queries {
		res, err := optimizer.Optimize(q.Tree, sh.db, optimizer.Options{ICs: sh.db.ChronOrders()})
		if err != nil {
			return err
		}
		if sh.explain {
			for _, st := range res.Stages {
				sh.printf("-- %s --\n%s", st.Name, st.Tree)
			}
			for _, a := range res.Removed {
				sh.printf("semantic: removed redundant conjunct %s\n", a)
			}
		}
		if res.Contradiction {
			sh.println("semantic: query is contradictory — empty result without data access")
			continue
		}
		if q.Standing != "" {
			if err := sh.withLive(func(m *live.Manager) error {
				sq, err := m.Register(q.Standing, res.Tree,
					live.RegisterOptions{AllowDegrade: true, Govern: sh.govern})
				if err != nil {
					return err
				}
				sh.printf("subscribed %s: %s\n", sq.Name(), sq.Explain())
				return nil
			}); err != nil {
				return err
			}
			continue
		}
		opt := engine.Options{ForceNestedLoop: !sh.streams, Registry: sh.reg,
			Parallelism: sh.parallelism, ParallelMinRows: sh.parallelMinRows,
			GovernWorkspace: sh.govern, Profile: sh.profile,
			Events: sh.events, SlowQuery: sh.slowQuery}
		// A profiled run always gets a tracer: the per-node resource
		// columns render in the span tree, so -profile without -trace
		// would otherwise pay the accounting cost and show nothing.
		var tracer *obs.Tracer
		if sh.trace || sh.profile {
			tracer = obs.NewTracer()
			opt.Tracer = tracer
		}
		out, stats, err := engine.Run(sh.db, res.Tree, opt)
		if err != nil {
			return err
		}
		if q.Into != "" {
			out.Name = q.Into
			if err := sh.db.Register(out); err != nil {
				return err
			}
		}
		sh.print(out)
		if sh.explain {
			sh.print(stats)
		}
		if tracer != nil {
			sh.print(tracer.Tree())
			if sh.traceOut != nil {
				if err := tracer.WriteJSONL(sh.traceOut); err != nil {
					return fmt.Errorf("writing trace: %w", err)
				}
			}
		}
	}
	return nil
}
