package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	tdbdriver "tdb/driver"
	"tdb/internal/engine"
	"tdb/internal/live"
	"tdb/internal/obs"
	"tdb/internal/relation"
	"tdb/internal/workload"
)

// TestServeUntilSignalDrains: a signal to the service loop drains the
// server gracefully — the loop returns, the server reports draining, and
// the listener stops accepting — instead of cutting connections off.
func TestServeUntilSignalDrains(t *testing.T) {
	db := engine.NewDB()
	db.MustRegister(workload.Faculty(workload.FacultyConfig{N: 20, Seed: 3}))
	sh := &shell{db: db, out: io.Discard, reg: obs.NewRegistry(), events: obs.NewEventLog(64)}
	srv := newServer(sh, serveOptions{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// The protocol is up before the signal.
	resp, err := http.Post("http://"+addr+"/v1/ping", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("ping before drain: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ping status %d before drain", resp.StatusCode)
	}

	var out bytes.Buffer
	sigc := make(chan os.Signal, 1)
	done := make(chan struct{})
	go func() {
		serveUntilSignal(srv, sigc, 5*time.Second, &out)
		close(done)
	}()
	sigc <- syscall.SIGTERM
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete after the signal")
	}
	if !srv.Draining() {
		t.Error("server not draining after the signal")
	}
	for _, frag := range []string{"terminated", "draining", "server drained"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("service output missing %q:\n%s", frag, out.String())
		}
	}
	// The listener is closed: a new connection fails outright.
	if resp, err := http.Post("http://"+addr+"/v1/ping", "application/json", strings.NewReader("{}")); err == nil {
		_ = resp.Body.Close()
		t.Error("listener still accepting after drain")
	}
}

// TestShellLiveRoutesThroughServer: when the process is serving, shell
// live commands operate on the server's manager — a standing query
// subscribed in the shell sees tuples appended by a network client.
func TestShellLiveRoutesThroughServer(t *testing.T) {
	db := engine.NewDB()
	db.MustRegister(relation.New("F", workload.FacultySchema))
	db.MustRegister(relation.New("G", workload.FacultySchema))
	var buf bytes.Buffer
	sh := &shell{db: db, streams: true, out: &buf, reg: obs.NewRegistry(), events: obs.NewEventLog(64)}
	srv := newServer(sh, serveOptions{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	sh.srv = srv

	err = sh.runStatements("range of f is F\nrange of g is G\nsubscribe watch (Name=f.Name) where (f overlap g)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "subscribed watch: incremental") {
		t.Fatalf("subscribe output: %s", buf.String())
	}
	if sh.liveMgr != nil {
		t.Fatal("shell created its own live manager while serving")
	}

	// A network client appends through the wire protocol. alice × bob is
	// the overlapping pair; carol and dave advance both input frontiers
	// past it so the stream operator may emit.
	c, err := tdbdriver.NewConnector("http://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, app := range []struct {
		rel string
		row []any
	}{
		{"F", []any{"alice", "Assistant", 1, 10}},
		{"G", []any{"bob", "Full", 2, 8}},
		{"F", []any{"carol", "Full", 20, 25}},
		{"G", []any{"dave", "Full", 21, 26}},
	} {
		if _, err := c.Append(ctx, app.rel, [][]any{app.row}, 0, true); err != nil {
			t.Fatalf("append %s: %v", app.rel, err)
		}
	}

	buf.Reset()
	sh.pollDeltas("watch")
	if !strings.Contains(buf.String(), "alice") {
		t.Fatalf("shell deltas missed the network append: %s", buf.String())
	}
	buf.Reset()
	sh.liveStatus()
	if out := buf.String(); !strings.Contains(out, "table F:") || !strings.Contains(out, "query watch:") {
		t.Fatalf("live status over the shared manager: %s", out)
	}
	if err := srv.WithLive(func(m *live.Manager) error {
		if len(m.Queries()) != 1 {
			t.Errorf("server sees %d standing queries, want 1", len(m.Queries()))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
