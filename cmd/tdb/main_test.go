package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tdb/internal/engine"
	"tdb/internal/storage"
	"tdb/internal/workload"
)

func TestParseRankOrder(t *testing.T) {
	ic, err := parseRankOrder("Faculty:Name:Rank=Assistant,Associate,Full")
	if err != nil {
		t.Fatal(err)
	}
	if ic.Relation != "Faculty" || ic.KeyCol != "Name" || ic.ValCol != "Rank" {
		t.Errorf("parsed %+v", ic)
	}
	if len(ic.Order) != 3 || ic.Order[2] != "Full" || ic.Continuous {
		t.Errorf("parsed %+v", ic)
	}
	ic, err = parseRankOrder("F:K:V=a,b:continuous")
	if err != nil {
		t.Fatal(err)
	}
	if !ic.Continuous || len(ic.Order) != 2 {
		t.Errorf("continuous form parsed %+v", ic)
	}
	for _, bad := range []string{"nope", "A:B=x", "A:B:C:D=x"} {
		if _, err := parseRankOrder(bad); err == nil {
			t.Errorf("parseRankOrder(%q) accepted", bad)
		}
	}
}

func TestLoadFlexible(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.csv")
	fac := workload.Faculty(workload.FacultyConfig{N: 8, Seed: 1})
	if err := storage.SaveCSV(path, fac); err != nil {
		t.Fatal(err)
	}
	rel, err := loadFlexible(path, "Faculty")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != fac.Cardinality() {
		t.Errorf("loaded %d rows, want %d", rel.Cardinality(), fac.Cardinality())
	}
	if !rel.Schema.Temporal() {
		t.Error("temporal columns not recognized from header")
	}
	if _, err := loadFlexible(filepath.Join(dir, "missing.csv"), "X"); err == nil {
		t.Error("missing file accepted")
	}
	// A header without temporal columns loads as a snapshot relation.
	snap := filepath.Join(dir, "s.csv")
	if err := os.WriteFile(snap, []byte("A,B\nx,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rel, err = loadFlexible(snap, "S")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Schema.Temporal() || rel.Cardinality() != 1 {
		t.Errorf("snapshot load wrong: %v", rel)
	}
}

func TestShellRunStatements(t *testing.T) {
	db := engine.NewDB()
	db.MustRegister(workload.Faculty(workload.FacultyConfig{N: 40, Seed: 5}))
	ic, err := parseRankOrder("Faculty:Name:Rank=Assistant,Associate,Full")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DeclareChronOrder(ic); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sh := &shell{db: db, explain: true, streams: true, out: &buf}
	err = sh.runStatements(`
range of f1 is Faculty
range of f2 is Faculty
range of f3 is Faculty
retrieve into Stars (Name=f1.Name, ValidFrom=f1.ValidFrom, ValidTo=f2.ValidTo)
where f3.Rank="Associate" and f1.Name=f2.Name and f1.Rank="Assistant"
  and f2.Rank="Full" and (f1 overlap f3) and (f2 overlap f3)
`)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"semantic: removed redundant conjunct",
		"⋉contained",
		"Stars(",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("shell output missing %q:\n%s", frag, out)
		}
	}
	// The into-relation is registered and queryable.
	if _, err := db.Relation("Stars"); err != nil {
		t.Errorf("into relation not registered: %v", err)
	}
	var buf2 bytes.Buffer
	sh.out = &buf2
	if err := sh.runStatements("range of s is Stars\nretrieve (s.Name)"); err != nil {
		t.Fatalf("querying the stored result: %v", err)
	}

	// Errors surface.
	if err := sh.runStatements("retrieve (zz.Name)"); err == nil {
		t.Error("bad statement accepted")
	}
	// describe and stats write to the shell writer.
	var buf3 bytes.Buffer
	sh.out = &buf3
	sh.describe()
	if !strings.Contains(buf3.String(), "Faculty") {
		t.Errorf("describe output: %q", buf3.String())
	}
	buf3.Reset()
	sh.statsOf("Faculty")
	if !strings.Contains(buf3.String(), "λ=") {
		t.Errorf("stats output: %q", buf3.String())
	}
	buf3.Reset()
	sh.statsOf("nope")
	if !strings.Contains(buf3.String(), "no statistics") {
		t.Errorf("missing-stats output: %q", buf3.String())
	}
}
