package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tdb/internal/engine"
	"tdb/internal/obs"
	"tdb/internal/relation"
	"tdb/internal/storage"
	"tdb/internal/workload"
)

func TestParseRankOrder(t *testing.T) {
	ic, err := parseRankOrder("Faculty:Name:Rank=Assistant,Associate,Full")
	if err != nil {
		t.Fatal(err)
	}
	if ic.Relation != "Faculty" || ic.KeyCol != "Name" || ic.ValCol != "Rank" {
		t.Errorf("parsed %+v", ic)
	}
	if len(ic.Order) != 3 || ic.Order[2] != "Full" || ic.Continuous {
		t.Errorf("parsed %+v", ic)
	}
	ic, err = parseRankOrder("F:K:V=a,b:continuous")
	if err != nil {
		t.Fatal(err)
	}
	if !ic.Continuous || len(ic.Order) != 2 {
		t.Errorf("continuous form parsed %+v", ic)
	}
	for _, bad := range []string{"nope", "A:B=x", "A:B:C:D=x"} {
		if _, err := parseRankOrder(bad); err == nil {
			t.Errorf("parseRankOrder(%q) accepted", bad)
		}
	}
}

func TestLoadFlexible(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.csv")
	fac := workload.Faculty(workload.FacultyConfig{N: 8, Seed: 1})
	if err := storage.SaveCSV(path, fac); err != nil {
		t.Fatal(err)
	}
	rel, err := loadFlexible(path, "Faculty")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != fac.Cardinality() {
		t.Errorf("loaded %d rows, want %d", rel.Cardinality(), fac.Cardinality())
	}
	if !rel.Schema.Temporal() {
		t.Error("temporal columns not recognized from header")
	}
	if _, err := loadFlexible(filepath.Join(dir, "missing.csv"), "X"); err == nil {
		t.Error("missing file accepted")
	}
	// A header without temporal columns loads as a snapshot relation.
	snap := filepath.Join(dir, "s.csv")
	if err := os.WriteFile(snap, []byte("A,B\nx,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rel, err = loadFlexible(snap, "S")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Schema.Temporal() || rel.Cardinality() != 1 {
		t.Errorf("snapshot load wrong: %v", rel)
	}
}

func TestShellRunStatements(t *testing.T) {
	db := engine.NewDB()
	db.MustRegister(workload.Faculty(workload.FacultyConfig{N: 40, Seed: 5}))
	ic, err := parseRankOrder("Faculty:Name:Rank=Assistant,Associate,Full")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DeclareChronOrder(ic); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sh := &shell{db: db, explain: true, streams: true, out: &buf}
	err = sh.runStatements(`
range of f1 is Faculty
range of f2 is Faculty
range of f3 is Faculty
retrieve into Stars (Name=f1.Name, ValidFrom=f1.ValidFrom, ValidTo=f2.ValidTo)
where f3.Rank="Associate" and f1.Name=f2.Name and f1.Rank="Assistant"
  and f2.Rank="Full" and (f1 overlap f3) and (f2 overlap f3)
`)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"semantic: removed redundant conjunct",
		"⋉contained",
		"Stars(",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("shell output missing %q:\n%s", frag, out)
		}
	}
	// The into-relation is registered and queryable.
	if _, err := db.Relation("Stars"); err != nil {
		t.Errorf("into relation not registered: %v", err)
	}
	var buf2 bytes.Buffer
	sh.out = &buf2
	if err := sh.runStatements("range of s is Stars\nretrieve (s.Name)"); err != nil {
		t.Fatalf("querying the stored result: %v", err)
	}

	// Errors surface.
	if err := sh.runStatements("retrieve (zz.Name)"); err == nil {
		t.Error("bad statement accepted")
	}
	// describe and stats write to the shell writer.
	var buf3 bytes.Buffer
	sh.out = &buf3
	sh.describe()
	if !strings.Contains(buf3.String(), "Faculty") {
		t.Errorf("describe output: %q", buf3.String())
	}
	buf3.Reset()
	sh.statsOf("Faculty")
	if !strings.Contains(buf3.String(), "λ=") {
		t.Errorf("stats output: %q", buf3.String())
	}
	buf3.Reset()
	sh.statsOf("nope")
	if !strings.Contains(buf3.String(), "no statistics") {
		t.Errorf("missing-stats output: %q", buf3.String())
	}
}

// TestShellObservability is the end-to-end acceptance check: a query run
// with tracing on while the metrics endpoint is listening produces a JSONL
// span per plan node whose probe totals roll up to the query root, the
// shell prints the trace tree and serves \metrics, and the HTTP endpoint
// answers /metrics, /debug/vars and /debug/pprof/.
func TestShellObservability(t *testing.T) {
	db := engine.NewDB()
	db.MustRegister(workload.Faculty(workload.FacultyConfig{N: 40, Seed: 5}))
	ic, err := parseRankOrder("Faculty:Name:Rank=Assistant,Associate,Full")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DeclareChronOrder(ic); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	db.SetMetrics(reg)
	defer storage.ObserveIO(nil)
	srv, addr, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	var out, trace bytes.Buffer
	sh := &shell{db: db, explain: true, streams: true, trace: true,
		out: &out, reg: reg, traceOut: &trace}
	err = sh.runStatements(`
range of f1 is Faculty
range of f2 is Faculty
range of f3 is Faculty
retrieve into Stars (Name=f1.Name, ValidFrom=f1.ValidFrom, ValidTo=f2.ValidTo)
where f3.Rank="Associate" and f1.Name=f2.Name and f1.Rank="Assistant"
  and f2.Rank="Full" and (f1 overlap f3) and (f2 overlap f3)
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "query #1") {
		t.Errorf("shell output missing trace tree:\n%s", out.String())
	}

	// The JSONL trace: one well-formed line per span, exactly one root,
	// and the root probe is the sum of the per-operator probes.
	type line struct {
		Parent  int64  `json:"parent"`
		Label   string `json:"label"`
		OutRows int64  `json:"out_rows"`
		Probe   struct {
			ReadLeft    int64 `json:"read_left"`
			ReadRight   int64 `json:"read_right"`
			Emitted     int64 `json:"emitted"`
			Comparisons int64 `json:"comparisons"`
		} `json:"probe"`
	}
	var root *line
	var nodes []line
	for i, raw := range strings.Split(strings.TrimSuffix(trace.String(), "\n"), "\n") {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("bad JSONL line %d: %v\n%s", i+1, err, raw)
		}
		if l.Parent == 0 {
			if root != nil {
				t.Fatal("two root spans in trace")
			}
			root = new(line)
			*root = l
			continue
		}
		nodes = append(nodes, l)
	}
	if root == nil || len(nodes) == 0 {
		t.Fatalf("trace has root=%v with %d operator spans:\n%s", root, len(nodes), trace.String())
	}
	stars, err := db.Relation("Stars")
	if err != nil {
		t.Fatal(err)
	}
	if root.OutRows != int64(stars.Cardinality()) {
		t.Errorf("root out_rows = %d, result rows = %d", root.OutRows, stars.Cardinality())
	}
	var sum line
	for _, n := range nodes {
		sum.Probe.ReadLeft += n.Probe.ReadLeft
		sum.Probe.ReadRight += n.Probe.ReadRight
		sum.Probe.Emitted += n.Probe.Emitted
		sum.Probe.Comparisons += n.Probe.Comparisons
	}
	if sum.Probe != root.Probe {
		t.Errorf("operator probes %+v do not sum to root %+v", sum.Probe, root.Probe)
	}

	// \metrics renders the registry the run just populated.
	var mbuf bytes.Buffer
	sh.out = &mbuf
	sh.metrics()
	for _, frag := range []string{"tdb_queries_total 1", "tdb_db_relations"} {
		if !strings.Contains(mbuf.String(), frag) {
			t.Errorf("\\metrics output missing %q:\n%s", frag, mbuf.String())
		}
	}

	// The HTTP endpoint serves the same registry plus expvar and pprof.
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}
	prom := get("/metrics")
	for _, frag := range []string{
		"# TYPE tdb_query_duration_seconds histogram",
		"tdb_queries_total 1",
		"tdb_db_relations",
	} {
		if !strings.Contains(prom, frag) {
			t.Errorf("/metrics missing %q", frag)
		}
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Errorf("/debug/vars is not JSON: %v", err)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "profile") {
		t.Errorf("/debug/pprof/ index unexpected:\n%.200s", idx)
	}
}

// TestShellLiveSubscribe drives the full live loop through the shell:
// subscribe a standing query, \append tuples, \deltas, \verify, \live,
// \flush — and check an unbounded subscribe degrades with an explain note.
func TestShellLiveSubscribe(t *testing.T) {
	db := engine.NewDB()
	db.MustRegister(relation.New("F", workload.FacultySchema))
	db.MustRegister(relation.New("G", workload.FacultySchema))
	var buf bytes.Buffer
	sh := &shell{db: db, explain: false, streams: true, out: &buf, reg: obs.NewRegistry()}

	err := sh.runStatements(`
range of f is F
range of g is G
subscribe watch (Name=f.Name) where (f overlap g)
`)
	if err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); !strings.Contains(out, "subscribed watch: incremental") {
		t.Fatalf("subscribe output: %s", out)
	}

	buf.Reset()
	sh.appendRow(`F alice,Assistant,1,10`)
	sh.appendRow(`G bob,Full,2,8`)
	sh.appendRow(`F carol,Full,20,30`)
	if out := buf.String(); !strings.Contains(out, "appended to F") || !strings.Contains(out, "appended to G") {
		t.Fatalf("append output: %s", out)
	}

	buf.Reset()
	sh.pollDeltas("watch")
	if out := buf.String(); !strings.Contains(out, "alice") {
		t.Fatalf("deltas output missing the overlap match: %s", out)
	}
	buf.Reset()
	sh.verifyStanding("watch")
	if out := buf.String(); !strings.Contains(out, "verify watch: OK") {
		t.Fatalf("verify output: %s", out)
	}
	buf.Reset()
	sh.liveStatus()
	out := buf.String()
	if !strings.Contains(out, "table F:") || !strings.Contains(out, "query watch:") {
		t.Fatalf("live status: %s", out)
	}
	buf.Reset()
	sh.flushLive()
	if out := buf.String(); !strings.Contains(out, "buffered 0") {
		t.Fatalf("flush output: %s", out)
	}

	// An unbounded characterization degrades with an explain note.
	buf.Reset()
	if err := sh.runStatements("range of f is F\nrange of g is G\nsubscribe late (Name=f.Name) where (f before g)"); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); !strings.Contains(out, "subscribed late: batch · degraded") {
		t.Fatalf("degrade output: %s", out)
	}

	// Errors surfaced, not fatal: bad relation, bad arity, bad query name.
	buf.Reset()
	sh.appendRow(`Nope 1,2,3,4`)
	sh.appendRow(`F onlyone`)
	sh.pollDeltas("missing")
	sh.verifyStanding("missing")
	out = buf.String()
	for _, frag := range []string{"append: ", "no standing query"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("error handling output missing %q: %s", frag, out)
		}
	}
}
