// Network-service mode: with -listen the shell process also serves the
// versioned wire protocol (see internal/server and the driver package);
// with -serve it runs headless until a signal drains it.
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tdb/internal/engine"
	"tdb/internal/server"
)

// serveOptions collects the network-service flags.
type serveOptions struct {
	maxConcurrent int
	maxQueue      int
	queueTimeout  time.Duration
	idleTimeout   time.Duration
	drainTimeout  time.Duration
}

// newServer assembles the protocol server over the shell's catalog,
// metrics registry and event journal, so network clients and shell
// statements observe one engine.
func newServer(sh *shell, o serveOptions) *server.Server {
	return server.New(server.Config{
		DB:       sh.db,
		Registry: sh.reg,
		Events:   sh.events,
		Exec: engine.Options{
			Parallelism: sh.parallelism, ParallelMinRows: sh.parallelMinRows,
			Profile: sh.profile, SlowQuery: sh.slowQuery,
		},
		Tenants: []server.TenantConfig{{
			Name: "default", MaxConcurrent: o.maxConcurrent, MaxQueue: o.maxQueue,
			QueueTimeout: o.queueTimeout, Govern: sh.govern,
		}},
		IdleTimeout: o.idleTimeout,
	})
}

// drainServer gracefully drains srv: new requests are refused, open
// subscription streams get a final drain event, in-flight queries finish
// (bounded by timeout).
func drainServer(srv *server.Server, timeout time.Duration, out io.Writer) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		_, _ = fmt.Fprintf(out, "drain: %v\n", err)
		return
	}
	_, _ = fmt.Fprintln(out, "server drained")
}

// serveUntilSignal blocks until a signal arrives on sigc, then drains
// srv. Split from runServe so a test can deliver a synthetic signal.
func serveUntilSignal(srv *server.Server, sigc <-chan os.Signal, drainTimeout time.Duration, out io.Writer) {
	sig := <-sigc
	_, _ = fmt.Fprintf(out, "received %s; draining (timeout %s)\n", sig, drainTimeout)
	drainServer(srv, drainTimeout, out)
}

// runServe is headless service mode: block until SIGINT or SIGTERM,
// then drain and return.
func runServe(srv *server.Server, drainTimeout time.Duration, out io.Writer) {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	serveUntilSignal(srv, sigc, drainTimeout, out)
}
