package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleRecord() runRecord {
	return runRecord{
		TimeUnix: 1700000000, GitSHA: "abc123", GoVersion: "go1.22",
		GOMAXPROCS: 4, N: 256, Faculty: 32, Seed: 1, Policy: "sweep",
		Experiment: []expRecord{
			{Name: "table1", ElapsedNS: int64(20 * time.Millisecond), Rows: 12},
			{Name: "superstar-gaps", ElapsedNS: int64(5 * time.Millisecond), Rows: 3},
		},
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	rec := sampleRecord()
	if err := appendHistory(path, rec); err != nil {
		t.Fatal(err)
	}
	rec.TimeUnix++
	if err := appendHistory(path, rec); err != nil {
		t.Fatal(err)
	}
	recs, err := readHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].GitSHA != "abc123" || recs[0].GOMAXPROCS != 4 || len(recs[0].Experiment) != 2 {
		t.Errorf("first record mangled: %+v", recs[0])
	}
	if recs[1].TimeUnix != recs[0].TimeUnix+1 {
		t.Errorf("append order lost: %d then %d", recs[0].TimeUnix, recs[1].TimeUnix)
	}
}

func TestBaselineRoundTripAndPass(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	rec := sampleRecord()
	if err := writeBaselineFile(path, rec); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.N != 256 || len(base.Experiment) != 2 {
		t.Fatalf("baseline mangled: %+v", base)
	}
	if base.Experiment[0].MaxRatio != defaultMaxRatio || base.Experiment[0].FloorNS != defaultFloorNS {
		t.Errorf("default thresholds not written out: %+v", base.Experiment[0])
	}
	// The identical run must pass its own baseline.
	regs, err := checkAgainst(base, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("self-check regressed: %v", regs)
	}
}

func TestCheckCatchesSlowdown(t *testing.T) {
	base := &baselineDoc{N: 256, Faculty: 32, Seed: 1, Policy: "sweep",
		Experiment: []expBaseline{{Name: "table1", ElapsedNS: int64(20 * time.Millisecond), Rows: 12}}}
	slow := sampleRecord()
	slow.Experiment = []expRecord{{Name: "table1", ElapsedNS: int64(400 * time.Millisecond), Rows: 12}}
	regs, err := checkAgainst(base, slow)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "table1") {
		t.Fatalf("slowdown not caught: %v", regs)
	}
}

func TestCheckToleratesNoise(t *testing.T) {
	base := &baselineDoc{N: 256, Faculty: 32, Seed: 1, Policy: "sweep",
		Experiment: []expBaseline{{Name: "table1", ElapsedNS: int64(20 * time.Millisecond), Rows: 12}}}
	// 2x slower but under the absolute floor: a slower machine, not a
	// regression.
	noisy := sampleRecord()
	noisy.Experiment = []expRecord{{Name: "table1", ElapsedNS: int64(40 * time.Millisecond), Rows: 12}}
	regs, err := checkAgainst(base, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("noise flagged as regression: %v", regs)
	}
	// Huge absolute delta but within the ratio: a big experiment drifting
	// 10% stays green.
	base.Experiment[0].ElapsedNS = int64(10 * time.Second)
	noisy.Experiment[0].ElapsedNS = int64(11 * time.Second)
	regs, err = checkAgainst(base, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("within-ratio drift flagged: %v", regs)
	}
}

func TestCheckCatchesRowDriftAndMissing(t *testing.T) {
	base := &baselineDoc{N: 256, Faculty: 32, Seed: 1, Policy: "sweep",
		Experiment: []expBaseline{
			{Name: "table1", ElapsedNS: 100, Rows: 12},
			{Name: "gone", ElapsedNS: 100, Rows: 1},
		}}
	rec := sampleRecord()
	rec.Experiment = []expRecord{{Name: "table1", ElapsedNS: 100, Rows: 13}}
	regs, err := checkAgainst(base, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("want row-drift and missing-experiment findings, got %v", regs)
	}
	if !strings.Contains(regs[0], "row count changed") || !strings.Contains(regs[1], "not in this run") {
		t.Errorf("unexpected findings: %v", regs)
	}
}

func TestCheckRejectsConfigMismatch(t *testing.T) {
	base := &baselineDoc{N: 4000, Faculty: 32, Seed: 1, Policy: "sweep"}
	if _, err := checkAgainst(base, sampleRecord()); err == nil {
		t.Fatal("config mismatch accepted")
	}
}
