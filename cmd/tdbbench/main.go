// Command tdbbench runs the full experiment suite of the reproduction —
// one harness per table and figure of the paper — and prints the report
// tables: Figure 2 (the thirteen relationships), Figure 3 (parse-tree
// optimization), Figure 4 (stream aggregation), Tables 1–3 (workspace vs.
// sort order for every temporal join and semijoin), Section 4.2.4 (the
// Before operators), Figure 8 / Section 5 (the Superstar query three
// ways), the Section 4.1 sort/workspace/passes tradeoff, the Section 6
// workspace-prediction sweep, and E25, the row-vs-columnar serial operator
// sweep (the batch-kernel speedup with byte-identical output).
//
// Usage:
//
//	tdbbench [-n 4000] [-faculty 200] [-seed 1] [-policy sweep|lambda]
//	         [-json results.json] [-listen 127.0.0.1:8080] [-parallel]
//	         [-live] [-live-json BENCH_LIVE.json]
//	         [-chaos] [-chaos-json BENCH_CHAOS.json]
//	         [-serve] [-serve-json BENCH_SERVER.json] [-serve-queries 25]
//	         [-record] [-history BENCH_HISTORY.jsonl]
//	         [-check] [-write-baseline] [-baseline BENCH_BASELINE.json]
//	         [-slowdown 0s]
//
// -parallel additionally runs E22, the time-range partitioned parallel
// execution sweep: the contain-join at k ∈ {1,2,4,8} workers, verifying
// byte-identical output and reporting speedup and boundary replication.
//
// -live additionally runs E23, the sustained live-ingest sweep: two tuple
// streams at λ ∈ {0.5, 2, 10} through the live manager with standing
// incremental and degraded-batch temporal queries, verifying the delta
// contract and the workspace admission ceiling, and writing the structured
// document to BENCH_LIVE.json (-live-json).
//
// -chaos additionally runs E24, the degradation sweep: the workspace
// governor under statistics drift (stream path vs governed baseline
// fallback), the standing-query breaker ladder (re-admit, degrade to
// batch, typed decline), and seeded fault-injection batches over the
// parallel executor — every run ends byte-identical or with a clean typed
// error. The structured document goes to BENCH_CHAOS.json (-chaos-json).
//
// -serve additionally runs E26, the concurrent network-client sweep: an
// in-process protocol server over a Faculty catalog queried by 1, 8 and
// 64 database/sql clients through the public driver (ad-hoc queries
// alternating with a shared prepared statement), reporting throughput,
// mean and p99 latency, and the server's per-tenant admission counters.
// The structured document goes to BENCH_SERVER.json (-serve-json).
//
// -resilience additionally runs E27, the wire-resilience recovery sweep:
// 1, 8 and 64 concurrent driver subscriptions fed synchronized delta
// rounds while the delivery path is severed on a fixed schedule and
// every keyed append is deliberately double-sent. It reports recovery
// latency (sever to resumed stream), the resume/sever and dedup/dup
// ledgers, and the client-side seq-violation count — all of which must
// balance for the point to pass. The structured document goes to
// BENCH_RESILIENCE.json (-resilience-json).
//
// The human-readable tables always go to stdout; -json additionally writes
// the same tables (plus per-experiment wall time) as a machine-readable
// JSON document. -listen serves /metrics and /debug/pprof while the suite
// runs, so long benchmarks can be profiled live.
//
// The regression observatory rides on the same suite: -record appends a
// structured run record (git SHA, Go version, GOMAXPROCS, per-experiment
// wall times and row counts) to BENCH_HISTORY.jsonl; -write-baseline
// seeds BENCH_BASELINE.json from the run just taken; -check compares the
// run against the committed baseline with per-experiment noise
// thresholds (a generous slowdown ratio AND an absolute floor must both
// be exceeded) and exits non-zero on regression, which is what the CI
// bench gate runs. -slowdown injects a synthetic per-experiment delay so
// the gate itself can be tested: a slowed run must make -check fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"tdb/internal/core"
	"tdb/internal/experiments"
	"tdb/internal/obs"
	"tdb/internal/storage"
)

// benchResult is the -json document: the run configuration plus every
// experiment table with its wall time.
type benchResult struct {
	N       int          `json:"n"`
	Faculty int          `json:"faculty"`
	Seed    int64        `json:"seed"`
	Policy  string       `json:"policy"`
	Tables  []benchTable `json:"tables"`
}

type benchTable struct {
	Name      string     `json:"name"`
	Title     string     `json:"title"`
	Header    []string   `json:"header"`
	Rows      [][]string `json:"rows"`
	Notes     []string   `json:"notes,omitempty"`
	ElapsedNS int64      `json:"elapsed_ns"`
}

func main() {
	n := flag.Int("n", 4000, "tuples per operand for the table experiments")
	faculty := flag.Int("faculty", 200, "faculty members for the Superstar experiments")
	seed := flag.Int64("seed", 1, "workload seed")
	policyName := flag.String("policy", "sweep", "stream read policy: sweep or lambda")
	jsonOut := flag.String("json", "", "also write machine-readable results to this file")
	listen := flag.String("listen", "", "serve /metrics and /debug/pprof on this address while running")
	parallel := flag.Bool("parallel", false, "also run E22, the parallel speedup sweep (k = 1,2,4,8)")
	liveRun := flag.Bool("live", false, "also run E23, the sustained live-ingest sweep, writing BENCH_LIVE.json")
	liveOut := flag.String("live-json", "BENCH_LIVE.json", "where -live writes its machine-readable document")
	chaosRun := flag.Bool("chaos", false, "also run E24, the fault/degradation sweep, writing BENCH_CHAOS.json")
	chaosOut := flag.String("chaos-json", "BENCH_CHAOS.json", "where -chaos writes its machine-readable document")
	serveRun := flag.Bool("serve", false, "also run E26, the concurrent network-client sweep, writing BENCH_SERVER.json")
	serveOut := flag.String("serve-json", "BENCH_SERVER.json", "where -serve writes its machine-readable document")
	serveClients := flag.Int("serve-queries", 25, "queries per client in the E26 sweep")
	resRun := flag.Bool("resilience", false, "also run E27, the wire-resilience recovery sweep, writing BENCH_RESILIENCE.json")
	resOut := flag.String("resilience-json", "BENCH_RESILIENCE.json", "where -resilience writes its machine-readable document")
	resRounds := flag.Int("resilience-rounds", 6, "delta rounds per point in the E27 sweep")
	record := flag.Bool("record", false, "append this run (git SHA, GOMAXPROCS, per-experiment times) to the history journal")
	historyPath := flag.String("history", "BENCH_HISTORY.jsonl", "where -record appends run records")
	check := flag.Bool("check", false, "compare this run against the baseline; exit non-zero on regression")
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "baseline document for -check / -write-baseline")
	writeBase := flag.Bool("write-baseline", false, "write this run as the new baseline document")
	slowdown := flag.Duration("slowdown", 0, "add a synthetic per-experiment delay (CI uses this to prove -check trips)")
	flag.Parse()

	if *n < 1 {
		fail(fmt.Errorf("-n must be at least 1, got %d", *n))
	}
	if *faculty < 0 {
		fail(fmt.Errorf("-faculty must not be negative, got %d", *faculty))
	}

	policy := core.ReadSweep
	if *policyName == "lambda" {
		policy = core.ReadLambda
	}

	if *listen != "" {
		reg := obs.NewRegistry()
		storage.ObserveIO(reg)
		defer storage.ObserveIO(nil)
		srv, addr, err := obs.Serve(*listen, reg)
		if err != nil {
			fail(err)
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("metrics on http://%s/metrics (profiles /debug/pprof/)\n", addr)
	}

	dir, err := os.MkdirTemp("", "tdbbench")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)

	// The suite, in report order. Each entry produces one table; drop is
	// the structured result, which the CLI does not need.
	drop := func(_ any, tab *experiments.Table, err error) (*experiments.Table, error) {
		return tab, err
	}
	suite := []struct {
		name string
		run  func() (*experiments.Table, error)
	}{
		{"figure2", func() (*experiments.Table, error) { return experiments.Figure2(), nil }},
		{"figure3", func() (*experiments.Table, error) { return drop(experiments.Figure3(25, *seed)) }},
		{"figure4", func() (*experiments.Table, error) {
			_, tab := experiments.Figure4(100, 50, *seed)
			return tab, nil
		}},
		{"table1", func() (*experiments.Table, error) { return drop(experiments.Table1(*n, *seed, policy)) }},
		{"table2", func() (*experiments.Table, error) { return drop(experiments.Table2(*n, *seed, policy)) }},
		{"table3", func() (*experiments.Table, error) { return drop(experiments.Table3(*n, *seed)) }},
		{"before", func() (*experiments.Table, error) { return drop(experiments.Before(*n/2, *seed)) }},
		{"prefilter", func() (*experiments.Table, error) { return drop(experiments.Prefilter(*n, *seed)) }},
		{"superstar-continuous", func() (*experiments.Table, error) { return drop(experiments.Superstar(*faculty, *seed, true)) }},
		{"superstar-gaps", func() (*experiments.Table, error) { return drop(experiments.Superstar(*faculty, *seed, false)) }},
		{"scan-passes", func() (*experiments.Table, error) { return drop(experiments.ScanPasses(*faculty*2, *seed, dir)) }},
		{"tradeoffs", func() (*experiments.Table, error) {
			return drop(experiments.Tradeoffs([]int{*n / 16, *n / 4, *n}, 256, dir, *seed))
		}},
		{"statistics", func() (*experiments.Table, error) {
			return drop(experiments.Statistics(*n, []float64{0.1, 0.5, 1, 5, 10}, 12, *seed))
		}},
		{"cost-model", func() (*experiments.Table, error) {
			return drop(experiments.CostModel([]int{*n / 16, *n / 4, *n}, *seed))
		}},
		{"order-choice", func() (*experiments.Table, error) {
			return drop(experiments.OrderChoice(*n, []float64{2, 12, 60}, *seed))
		}},
		{"columnar", func() (*experiments.Table, error) { return drop(experiments.Columnar(*n, *seed)) }},
	}
	if *parallel {
		suite = append(suite, struct {
			name string
			run  func() (*experiments.Table, error)
		}{"parallel", func() (*experiments.Table, error) {
			return drop(experiments.Parallel(*n, []int{1, 2, 4, 8}, *seed))
		}})
	}

	if *liveRun {
		suite = append(suite, struct {
			name string
			run  func() (*experiments.Table, error)
		}{"live-ingest", func() (*experiments.Table, error) {
			res, tab, err := experiments.LiveIngest(*n/2, []float64{0.5, 2, 10}, 8, *seed)
			if err != nil {
				return nil, err
			}
			if err := writeLiveJSON(*liveOut, res); err != nil {
				return nil, err
			}
			fmt.Printf("live-ingest document written to %s\n", *liveOut)
			return tab, nil
		}})
	}

	if *chaosRun {
		suite = append(suite, struct {
			name string
			run  func() (*experiments.Table, error)
		}{"chaos", func() (*experiments.Table, error) {
			res, tab, err := experiments.Chaos(*n/2, 16, *seed)
			if err != nil {
				return nil, err
			}
			if err := writeChaosJSON(*chaosOut, res); err != nil {
				return nil, err
			}
			fmt.Printf("chaos document written to %s\n", *chaosOut)
			return tab, nil
		}})
	}

	if *serveRun {
		suite = append(suite, struct {
			name string
			run  func() (*experiments.Table, error)
		}{"server", func() (*experiments.Table, error) {
			res, tab, err := experiments.ServerSweep(*n/4, []int{1, 8, 64}, *serveClients, *seed)
			if err != nil {
				return nil, err
			}
			if err := writeServerJSON(*serveOut, res); err != nil {
				return nil, err
			}
			fmt.Printf("server document written to %s\n", *serveOut)
			return tab, nil
		}})
	}

	if *resRun {
		suite = append(suite, struct {
			name string
			run  func() (*experiments.Table, error)
		}{"resilience", func() (*experiments.Table, error) {
			res, tab, err := experiments.ResilienceSweep([]int{1, 8, 64}, *resRounds, 2, 5)
			if err != nil {
				return nil, err
			}
			if err := writeResilienceJSON(*resOut, res); err != nil {
				return nil, err
			}
			fmt.Printf("resilience document written to %s\n", *resOut)
			return tab, nil
		}})
	}

	result := benchResult{N: *n, Faculty: *faculty, Seed: *seed, Policy: *policyName}
	for _, exp := range suite {
		start := time.Now()
		tab, err := exp.run()
		if err != nil {
			fail(err)
		}
		if *slowdown > 0 {
			time.Sleep(*slowdown)
		}
		fmt.Println(tab)
		result.Tables = append(result.Tables, benchTable{
			Name:      exp.name,
			Title:     tab.Title,
			Header:    tab.Header,
			Rows:      tab.Rows,
			Notes:     tab.Notes,
			ElapsedNS: time.Since(start).Nanoseconds(),
		})
	}

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, &result); err != nil {
			fail(err)
		}
	}

	if *record || *check || *writeBase {
		rec := newRunRecord(&result, *faculty, *slowdown)
		ok, err := runRegression(rec, *record, *historyPath, *writeBase, *check, *baselinePath)
		if err != nil {
			fail(err)
		}
		if !ok {
			os.Exit(1)
		}
	}
}

// writeLiveJSON writes the E23 structured document (BENCH_LIVE.json).
func writeLiveJSON(path string, res *experiments.LiveResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		_ = f.Close() // best-effort cleanup; the encode error wins
		return err
	}
	return f.Close()
}

// writeChaosJSON writes the E24 structured document (BENCH_CHAOS.json).
func writeChaosJSON(path string, res *experiments.ChaosResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		_ = f.Close() // best-effort cleanup; the encode error wins
		return err
	}
	return f.Close()
}

// writeServerJSON writes the E26 structured document (BENCH_SERVER.json).
func writeServerJSON(path string, res *experiments.ServerResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		_ = f.Close() // best-effort cleanup; the encode error wins
		return err
	}
	return f.Close()
}

// writeResilienceJSON writes the E27 structured document
// (BENCH_RESILIENCE.json).
func writeResilienceJSON(path string, res *experiments.ResilienceResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		_ = f.Close() // best-effort cleanup; the encode error wins
		return err
	}
	return f.Close()
}

// writeJSON writes the result document, indented for diffability.
func writeJSON(path string, result *benchResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(result); err != nil {
		_ = f.Close() // best-effort cleanup; the encode error wins
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tdbbench:", err)
	os.Exit(1)
}
