// Command tdbbench runs the full experiment suite of the reproduction —
// one harness per table and figure of the paper — and prints the report
// tables: Figure 2 (the thirteen relationships), Figure 3 (parse-tree
// optimization), Figure 4 (stream aggregation), Tables 1–3 (workspace vs.
// sort order for every temporal join and semijoin), Section 4.2.4 (the
// Before operators), Figure 8 / Section 5 (the Superstar query three
// ways), the Section 4.1 sort/workspace/passes tradeoff, and the Section 6
// workspace-prediction sweep.
//
// Usage:
//
//	tdbbench [-n 4000] [-faculty 200] [-seed 1] [-policy sweep|lambda]
package main

import (
	"flag"
	"fmt"
	"os"

	"tdb/internal/core"
	"tdb/internal/experiments"
)

func main() {
	n := flag.Int("n", 4000, "tuples per operand for the table experiments")
	faculty := flag.Int("faculty", 200, "faculty members for the Superstar experiments")
	seed := flag.Int64("seed", 1, "workload seed")
	policyName := flag.String("policy", "sweep", "stream read policy: sweep or lambda")
	flag.Parse()

	if *n < 1 {
		fail(fmt.Errorf("-n must be at least 1, got %d", *n))
	}
	if *faculty < 0 {
		fail(fmt.Errorf("-faculty must not be negative, got %d", *faculty))
	}

	policy := core.ReadSweep
	if *policyName == "lambda" {
		policy = core.ReadLambda
	}

	fmt.Println(experiments.Figure2())

	if _, tab, err := experiments.Figure3(25, *seed); err != nil {
		fail(err)
	} else {
		fmt.Println(tab)
	}

	_, tab4 := experiments.Figure4(100, 50, *seed)
	fmt.Println(tab4)

	if _, tab, err := experiments.Table1(*n, *seed, policy); err != nil {
		fail(err)
	} else {
		fmt.Println(tab)
	}

	if _, tab, err := experiments.Table2(*n, *seed, policy); err != nil {
		fail(err)
	} else {
		fmt.Println(tab)
	}

	if _, tab, err := experiments.Table3(*n, *seed); err != nil {
		fail(err)
	} else {
		fmt.Println(tab)
	}

	if _, tab, err := experiments.Before(*n/2, *seed); err != nil {
		fail(err)
	} else {
		fmt.Println(tab)
	}

	if _, tab, err := experiments.Prefilter(*n, *seed); err != nil {
		fail(err)
	} else {
		fmt.Println(tab)
	}

	if _, tab, err := experiments.Superstar(*faculty, *seed, true); err != nil {
		fail(err)
	} else {
		fmt.Println(tab)
	}
	if _, tab, err := experiments.Superstar(*faculty, *seed, false); err != nil {
		fail(err)
	} else {
		fmt.Println(tab)
	}

	dir, err := os.MkdirTemp("", "tdbbench")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)

	if _, tab, err := experiments.ScanPasses(*faculty*2, *seed, dir); err != nil {
		fail(err)
	} else {
		fmt.Println(tab)
	}
	if _, tab, err := experiments.Tradeoffs([]int{*n / 16, *n / 4, *n}, 256, dir, *seed); err != nil {
		fail(err)
	} else {
		fmt.Println(tab)
	}

	if _, tab, err := experiments.Statistics(*n, []float64{0.1, 0.5, 1, 5, 10}, 12, *seed); err != nil {
		fail(err)
	} else {
		fmt.Println(tab)
	}

	if _, tab, err := experiments.CostModel([]int{*n / 16, *n / 4, *n}, *seed); err != nil {
		fail(err)
	} else {
		fmt.Println(tab)
	}

	if _, tab, err := experiments.OrderChoice(*n, []float64{2, 12, 60}, *seed); err != nil {
		fail(err)
	} else {
		fmt.Println(tab)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tdbbench:", err)
	os.Exit(1)
}
