// Benchmark regression observatory: -record appends structured run
// records to a history journal (BENCH_HISTORY.jsonl), -write-baseline
// seeds the committed baseline document, and -check compares the run
// just taken against that baseline with per-experiment noise thresholds,
// exiting non-zero on regression so CI can gate on it.
//
// The thresholds are deliberately generous: a run regresses only when it
// is both MaxRatio times slower than the baseline AND more than FloorNS
// absolutely slower. The ratio absorbs machine-speed differences between
// the baseline recorder and the CI runner; the absolute floor keeps
// sub-millisecond experiments from tripping on scheduler noise. Row
// counts are seeded-deterministic, so those must match exactly — a row
// drift is a correctness regression, not noise.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Default per-experiment noise thresholds, used when a baseline entry
// leaves them zero.
const (
	defaultMaxRatio = 2.5
	defaultFloorNS  = int64(150 * time.Millisecond)
)

// runRecord is one history-journal line: the run configuration and
// environment plus every experiment's wall time and row count.
type runRecord struct {
	TimeUnix   int64       `json:"time_unix"`
	GitSHA     string      `json:"git_sha,omitempty"`
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	N          int         `json:"n"`
	Faculty    int         `json:"faculty"`
	Seed       int64       `json:"seed"`
	Policy     string      `json:"policy"`
	SlowdownNS int64       `json:"slowdown_ns,omitempty"`
	Experiment []expRecord `json:"experiments"`
}

type expRecord struct {
	Name      string `json:"name"`
	ElapsedNS int64  `json:"elapsed_ns"`
	Rows      int    `json:"rows"`
}

// baselineDoc is the committed BENCH_BASELINE.json: the configuration it
// was recorded under (a -check against a different configuration is a
// hard error, not a comparison) and per-experiment reference numbers
// with their thresholds.
type baselineDoc struct {
	GitSHA     string        `json:"git_sha,omitempty"`
	GoVersion  string        `json:"go_version,omitempty"`
	GOMAXPROCS int           `json:"gomaxprocs,omitempty"`
	N          int           `json:"n"`
	Faculty    int           `json:"faculty"`
	Seed       int64         `json:"seed"`
	Policy     string        `json:"policy"`
	Experiment []expBaseline `json:"experiments"`
}

type expBaseline struct {
	Name      string  `json:"name"`
	ElapsedNS int64   `json:"elapsed_ns"`
	Rows      int     `json:"rows"`
	MaxRatio  float64 `json:"max_ratio,omitempty"`
	FloorNS   int64   `json:"floor_ns,omitempty"`
}

// gitSHA returns the current commit, best-effort: benchmarks run outside
// a checkout (or without git on PATH) record an empty SHA rather than
// failing.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// newRunRecord captures the environment and the per-experiment numbers
// of the run just taken.
func newRunRecord(result *benchResult, faculty int, slowdown time.Duration) runRecord {
	rec := runRecord{
		TimeUnix:   time.Now().Unix(),
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		N:          result.N,
		Faculty:    faculty,
		Seed:       result.Seed,
		Policy:     result.Policy,
		SlowdownNS: slowdown.Nanoseconds(),
	}
	for _, t := range result.Tables {
		rec.Experiment = append(rec.Experiment, expRecord{
			Name: t.Name, ElapsedNS: t.ElapsedNS, Rows: len(t.Rows),
		})
	}
	return rec
}

// appendHistory appends the record as one JSON line to the journal.
func appendHistory(path string, rec runRecord) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	b, err := json.Marshal(rec)
	if err != nil {
		_ = f.Close()
		return err
	}
	b = append(b, '\n')
	if _, err := f.Write(b); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// readHistory parses a journal, skipping blank lines. Exposed for the
// tests and for future trend tooling.
func readHistory(path string) ([]runRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []runRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec runRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("history %s: %w", path, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// writeBaselineFile seeds the baseline from the run just taken, with the
// default thresholds written out explicitly so the committed document is
// self-describing and hand-tunable per experiment.
func writeBaselineFile(path string, rec runRecord) error {
	doc := baselineDoc{
		GitSHA: rec.GitSHA, GoVersion: rec.GoVersion, GOMAXPROCS: rec.GOMAXPROCS,
		N: rec.N, Faculty: rec.Faculty, Seed: rec.Seed, Policy: rec.Policy,
	}
	for _, e := range rec.Experiment {
		doc.Experiment = append(doc.Experiment, expBaseline{
			Name: e.Name, ElapsedNS: e.ElapsedNS, Rows: e.Rows,
			MaxRatio: defaultMaxRatio, FloorNS: defaultFloorNS,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&doc); err != nil {
		_ = f.Close() // best-effort cleanup; the encode error wins
		return err
	}
	return f.Close()
}

// loadBaseline reads the committed baseline document.
func loadBaseline(path string) (*baselineDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc baselineDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return &doc, nil
}

// checkAgainst compares the run against the baseline and returns the
// regression descriptions (empty = pass). A configuration mismatch is an
// error: comparing different workloads would be noise dressed as signal.
func checkAgainst(base *baselineDoc, rec runRecord) ([]string, error) {
	if base.N != rec.N || base.Seed != rec.Seed || base.Policy != rec.Policy || base.Faculty != rec.Faculty {
		return nil, fmt.Errorf(
			"baseline configuration (n=%d faculty=%d seed=%d policy=%s) does not match this run (n=%d faculty=%d seed=%d policy=%s); re-record the baseline",
			base.N, base.Faculty, base.Seed, base.Policy, rec.N, rec.Faculty, rec.Seed, rec.Policy)
	}
	got := make(map[string]expRecord, len(rec.Experiment))
	for _, e := range rec.Experiment {
		got[e.Name] = e
	}
	var regressions []string
	for _, b := range base.Experiment {
		e, ok := got[b.Name]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("%s: in baseline but not in this run", b.Name))
			continue
		}
		if e.Rows != b.Rows {
			regressions = append(regressions,
				fmt.Sprintf("%s: row count changed %d -> %d (seeded workload; this is a correctness drift)",
					b.Name, b.Rows, e.Rows))
		}
		ratio, floor := b.MaxRatio, b.FloorNS
		if ratio <= 0 {
			ratio = defaultMaxRatio
		}
		if floor <= 0 {
			floor = defaultFloorNS
		}
		limit := int64(float64(b.ElapsedNS) * ratio)
		if e.ElapsedNS > limit && e.ElapsedNS-b.ElapsedNS > floor {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1fms vs baseline %.1fms (limit %.1fms = %.1fx, floor +%dms)",
					b.Name, ms(e.ElapsedNS), ms(b.ElapsedNS), ms(limit), ratio, floor/int64(time.Millisecond)))
		}
	}
	return regressions, nil
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// runRegression drives the post-suite observatory stages and returns
// false when -check found regressions (the caller exits non-zero).
func runRegression(rec runRecord, record bool, historyPath string,
	writeBase bool, check bool, baselinePath string) (bool, error) {
	if record {
		if err := appendHistory(historyPath, rec); err != nil {
			return false, err
		}
		fmt.Printf("run recorded to %s (git %.12s, GOMAXPROCS %d, %d experiments)\n",
			historyPath, rec.GitSHA, rec.GOMAXPROCS, len(rec.Experiment))
	}
	if writeBase {
		if err := writeBaselineFile(baselinePath, rec); err != nil {
			return false, err
		}
		fmt.Printf("baseline written to %s\n", baselinePath)
	}
	if !check {
		return true, nil
	}
	base, err := loadBaseline(baselinePath)
	if err != nil {
		return false, err
	}
	regressions, err := checkAgainst(base, rec)
	if err != nil {
		return false, err
	}
	if len(regressions) == 0 {
		fmt.Printf("bench-check PASS: %d experiments within thresholds of %s\n",
			len(base.Experiment), baselinePath)
		return true, nil
	}
	fmt.Printf("bench-check FAIL: %d regression(s) against %s\n", len(regressions), baselinePath)
	for _, r := range regressions {
		fmt.Println("  " + r)
	}
	return false, nil
}
