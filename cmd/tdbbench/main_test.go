package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	in := &benchResult{
		N: 64, Faculty: 12, Seed: 1, Policy: "sweep",
		Tables: []benchTable{{
			Name: "figure2", Title: "Figure 2", Header: []string{"a", "b"},
			Rows: [][]string{{"1", "2"}}, ElapsedNS: 5,
		}},
	}
	if err := writeJSON(path, in); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out benchResult
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if out.N != in.N || len(out.Tables) != 1 || out.Tables[0].Name != "figure2" ||
		len(out.Tables[0].Rows) != 1 {
		t.Errorf("round-trip mismatch: %+v", out)
	}
	if err := writeJSON(filepath.Join(path, "nope", "x.json"), in); err == nil {
		t.Error("writing under a file path accepted")
	}
}
