// Command tdblint runs the repo-specific static-analysis pass: the
// analyzers that mechanically enforce the paper's invariants (see
// internal/lint and the "Static analysis" section of DESIGN.md) over the
// type-checked module, using only the standard library.
//
// Usage:
//
//	tdblint [-deep] [-rules r1,r2] [-baseline file] [-write-baseline]
//	        [-json] [-list] [dir | ./...]
//
// The argument names the module to lint: a directory, or a ./... pattern
// whose root directory is used (every package of the module is always
// checked). The default run is the syntactic tier; -deep adds the
// dataflow tier (hotpath-alloc, lock-order, failpoint-coverage) built on
// internal/lint/flow. -baseline diffs the findings against a checked-in
// ledger: covered findings are suppressed, new ones and stale ledger
// entries gate; -write-baseline regenerates the ledger instead. Exit
// status is 0 when the tree is clean (modulo baseline), 1 when findings
// were reported, 2 on a load or usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tdb/internal/lint"
)

func main() {
	rules := flag.String("rules", "", "comma-separated rule names to run (default: the selected tier)")
	deep := flag.Bool("deep", false, "run the dataflow tier (hotpath-alloc, lock-order, failpoint-coverage) too")
	baseline := flag.String("baseline", "", "baseline file to diff findings against")
	writeBaseline := flag.Bool("write-baseline", false, "regenerate the -baseline file from the current findings")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			tier := ""
			if a.Deep {
				tier = " (deep)"
			}
			fmt.Printf("%-24s %s%s\n", a.Name, a.Doc, tier)
		}
		return
	}

	dir := "."
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "tdblint: at most one directory argument")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		dir = flag.Arg(0)
		dir = strings.TrimSuffix(dir, "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	}

	n, err := lint.Run(lint.Config{
		Dir:           dir,
		Rules:         *rules,
		Deep:          *deep,
		JSON:          *jsonOut,
		Baseline:      *baseline,
		WriteBaseline: *writeBaseline,
	}, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdblint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "tdblint: %d finding(s)\n", n)
		os.Exit(1)
	}
}
