// Command tdblint runs the repo-specific static-analysis pass: six rules
// that mechanically enforce the paper's invariants (see internal/lint and
// the "Static analysis" section of DESIGN.md) over the type-checked
// module, using only the standard library.
//
// Usage:
//
//	tdblint [-rules r1,r2] [-json] [-list] [dir | ./...]
//
// The argument names the module to lint: a directory, or a ./... pattern
// whose root directory is used (every package of the module is always
// checked). Exit status is 0 when the tree is clean, 1 when findings were
// reported, 2 on a load or usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tdb/internal/lint"
)

func main() {
	rules := flag.String("rules", "", "comma-separated rule names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list the registered rules and exit")
	flag.Parse()

	if *list {
		for _, r := range lint.Rules() {
			fmt.Printf("%-24s %s\n", r.Name, r.Doc)
		}
		return
	}

	dir := "."
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "tdblint: at most one directory argument")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		dir = flag.Arg(0)
		dir = strings.TrimSuffix(dir, "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	}

	n, err := lint.Run(dir, *rules, *jsonOut, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdblint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "tdblint: %d finding(s)\n", n)
		os.Exit(1)
	}
}
