// Command tdbgen generates synthetic temporal workloads as CSV files: the
// Poisson-arrival interval populations of the Section 4 experiments and
// the Faculty career histories of the running example.
//
// Usage:
//
//	tdbgen -kind poisson -n 10000 -lambda 1 -meandur 12 -o intervals.csv
//	tdbgen -kind faculty -n 500 [-continuous] -o faculty.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"tdb/internal/relation"
	"tdb/internal/storage"
	"tdb/internal/workload"
)

func main() {
	kind := flag.String("kind", "poisson", "workload kind: poisson or faculty")
	n := flag.Int("n", 1000, "population size")
	lambda := flag.Float64("lambda", 1, "arrival rate (poisson)")
	meanDur := flag.Float64("meandur", 10, "mean lifespan duration (poisson)")
	longFrac := flag.Float64("longfrac", 0, "fraction of 10× longer lifespans (poisson)")
	continuous := flag.Bool("continuous", false, "continuous employment (faculty)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output CSV path (required)")
	flag.Parse()

	if *out == "" {
		fail(fmt.Errorf("-o is required"))
	}

	var rel *relation.Relation
	switch *kind {
	case "poisson":
		ts := workload.Tuples(workload.Config{
			N: *n, Lambda: *lambda, MeanDur: *meanDur, LongFrac: *longFrac, Seed: *seed,
		}, "t")
		rel = relation.FromTuples("Intervals", ts)
	case "faculty":
		rel = workload.Faculty(workload.FacultyConfig{N: *n, Continuous: *continuous, Seed: *seed})
	default:
		fail(fmt.Errorf("unknown kind %q", *kind))
	}

	if err := storage.SaveCSV(*out, rel); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d rows to %s\n", rel.Cardinality(), *out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tdbgen:", err)
	os.Exit(1)
}
