// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark corresponds to one artifact (see DESIGN.md's
// experiment index); the cmd/tdbbench binary prints the matching report
// tables with workspace measurements, while these testing.B benchmarks
// measure throughput of the same code paths.
package tdb_test

import (
	"fmt"
	"testing"

	"tdb/internal/algebra"
	"tdb/internal/baseline"
	"tdb/internal/core"
	"tdb/internal/engine"
	"tdb/internal/experiments"
	"tdb/internal/interval"
	"tdb/internal/metrics"
	"tdb/internal/obs"
	"tdb/internal/optimizer"
	"tdb/internal/relation"
	"tdb/internal/rollback"
	"tdb/internal/storage"
	"tdb/internal/stream"
	"tdb/internal/workload"
)

func tupleSpan(t relation.Tuple) interval.Interval { return t.Span }

func benchTuples(n int, seed int64, o relation.Order) []relation.Tuple {
	ts := workload.Tuples(workload.Config{N: n, Lambda: 1, MeanDur: 12, LongFrac: 0.1, Seed: seed}, "t")
	relation.SortSpans(ts, tupleSpan, o)
	return ts
}

func containTheta(a, b interval.Interval) bool { return a.Start < b.Start && b.End < a.End }

// --- Table 1: Contain-join under its two streamable sort orders, both
// read policies, against the nested-loop baseline. ---

func BenchmarkTable1_ContainJoin(b *testing.B) {
	const n = 20000
	xsTS := benchTuples(n, 1, relation.Order{relation.TSAsc})
	ysTS := benchTuples(n, 2, relation.Order{relation.TSAsc})
	ysTE := benchTuples(n, 2, relation.Order{relation.TEAsc})

	b.Run("TSTS/sweep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := core.ContainJoinTSTS(stream.FromSlice(xsTS), stream.FromSlice(ysTS),
				tupleSpan, core.Options{}, func(a, c relation.Tuple) {})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TSTS/lambda", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := core.ContainJoinTSTS(stream.FromSlice(xsTS), stream.FromSlice(ysTS),
				tupleSpan, core.Options{Policy: core.ReadLambda, LambdaX: 1, LambdaY: 1},
				func(a, c relation.Tuple) {})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TSTE/sweep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := core.ContainJoinTSTE(stream.FromSlice(xsTS), stream.FromSlice(ysTE),
				tupleSpan, core.Options{}, func(a, c relation.Tuple) {})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nested-loop-baseline", func(b *testing.B) {
		// The quadratic baseline at this size is slow; it is here to make
		// the factor visible in the same run.
		small := 2000
		xs := xsTS[:small]
		ys := ysTS[:small]
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			baseline.NestedLoopJoin(xs, ys, tupleSpan, containTheta, nil, func(a, c relation.Tuple) {})
		}
	})
}

// --- Resource accounting: the cost of the prof layer on the E22 serial
// contain-join. "bare" is the sweep with instrumentation compiled in but
// every hook nil/off (the production default — compare against the seed
// to hold the ≤1% budget); "probe" adds the hot-loop counters; the
// engine pair shows the whole traced query with Profile off vs on. ---

func BenchmarkProfiling_SerialContainJoin(b *testing.B) {
	const n = 20000
	xs := benchTuples(n, 21, relation.Order{relation.TSAsc})
	ys := benchTuples(n, 22, relation.Order{relation.TSAsc})
	sink := func(a, c relation.Tuple) {}

	b.Run("bare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := core.ContainJoinTSTS(stream.FromSlice(xs), stream.FromSlice(ys),
				tupleSpan, core.Options{}, sink); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("probe", func(b *testing.B) {
		var p metrics.Probe
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Reset()
			if err := core.ContainJoinTSTS(stream.FromSlice(xs), stream.FromSlice(ys),
				tupleSpan, core.Options{Probe: &p}, sink); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E25: the columnar batch core against the row reference on the same
// serial contain-join (the tentpole claim). "batch-kernel" is the pure
// sweep over prebuilt columns; "batch-conversion" pins the row→column
// shredding overhead alone (endpoint columns, the engine's per-node cost);
// "row-kernel" is the row reference; the engine pair measures the whole
// node including sorting and materialization. ---

func BenchmarkColumnar_SerialContainJoin(b *testing.B) {
	const n = 20000
	xs := benchTuples(n, 21, relation.Order{relation.TSAsc})
	ys := benchTuples(n, 22, relation.Order{relation.TSAsc})
	colsOf := func(ts []relation.Tuple) core.Cols {
		c := core.Cols{
			TS: make([]interval.Time, 0, len(ts)),
			TE: make([]interval.Time, 0, len(ts)),
		}
		for i := range ts {
			c.TS = append(c.TS, ts[i].Span.Start)
			c.TE = append(c.TE, ts[i].Span.End)
		}
		return c
	}
	xc, yc := colsOf(xs), colsOf(ys)

	b.Run("row-kernel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := core.ContainJoinTSTS(stream.FromSlice(xs), stream.FromSlice(ys),
				tupleSpan, core.Options{}, func(a, c relation.Tuple) {}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch-kernel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := core.BatchContainJoinTSTS(xc, yc, core.Options{}, func(xi, yi int32) {}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch-conversion", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cx, cy := colsOf(xs), colsOf(ys)
			if cx.Len()+cy.Len() != 2*n {
				b.Fatal("conversion dropped rows")
			}
		}
	})

	db := engine.NewDB()
	db.MustRegister(relation.FromTuples("X", xs))
	db.MustRegister(relation.FromTuples("Y", ys))
	q := &algebra.Join{
		L: &algebra.Scan{Relation: "X", As: "a"}, R: &algebra.Scan{Relation: "Y", As: "b"},
		Kind: algebra.KindContain,
		LSpan: algebra.SpanRef{
			TS: algebra.ColRef{Var: "a", Col: "ValidFrom"}, TE: algebra.ColRef{Var: "a", Col: "ValidTo"}},
		RSpan: algebra.SpanRef{
			TS: algebra.ColRef{Var: "b", Col: "ValidFrom"}, TE: algebra.ColRef{Var: "b", Col: "ValidTo"}},
	}
	b.Run("engine-row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.Run(db, q, engine.Options{RowExec: true, Parallelism: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("engine-columnar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.Run(db, q, engine.Options{Parallelism: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- The relation-level batch layout: row↔batch conversion with string
// interning, the storage-facing edition of the columnar core. ---

func BenchmarkColumnar_BatchRoundTrip(b *testing.B) {
	rel := relation.FromTuples("R", benchTuples(20000, 23, relation.Order{relation.TSAsc}))
	b.Run("from-rows", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if batch := relation.BatchFromRows(rel.Schema, rel.Rows, nil); batch.Len() != len(rel.Rows) {
				b.Fatal("batch dropped rows")
			}
		}
	})
	batch := relation.BatchFromRows(rel.Schema, rel.Rows, nil)
	b.Run("to-rows", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if rows := batch.Rows(); len(rows) != batch.Len() {
				b.Fatal("rehydration dropped rows")
			}
		}
	})
}

func BenchmarkProfiling_TracedQuery(b *testing.B) {
	db := engine.NewDB()
	fac := workload.Faculty(workload.FacultyConfig{N: 300, Continuous: true, Seed: 10})
	db.MustRegister(fac)
	if err := db.DeclareChronOrder(experiments.RankOrder(true)); err != nil {
		b.Fatal(err)
	}
	tree, err := experiments.SuperstarTree(db)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := optimizer.Optimize(tree, db, optimizer.Options{ICs: db.ChronOrders()})
	if err != nil {
		b.Fatal(err)
	}
	for _, profile := range []bool{false, true} {
		name := "profile-off"
		if profile {
			name = "profile-on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := engine.Run(db, plan.Tree,
					engine.Options{Tracer: obs.NewTracer(), Profile: profile}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 1 case (d): the buffers-only Figure 6 semijoins. ---

func BenchmarkTable1_SemijoinBuffersOnly(b *testing.B) {
	const n = 50000
	xsTS := benchTuples(n, 3, relation.Order{relation.TSAsc})
	ysTE := benchTuples(n, 4, relation.Order{relation.TEAsc})
	xsTE := benchTuples(n, 3, relation.Order{relation.TEAsc})
	ysTS := benchTuples(n, 4, relation.Order{relation.TSAsc})

	b.Run("contain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := core.ContainSemijoin(stream.FromSlice(xsTS), stream.FromSlice(ysTE),
				tupleSpan, core.Options{}, func(relation.Tuple) {})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("contained", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := core.ContainedSemijoin(stream.FromSlice(xsTE), stream.FromSlice(ysTS),
				tupleSpan, core.Options{}, func(relation.Tuple) {})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("contain-TSTS-case-c", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := core.ContainSemijoinTSTS(stream.FromSlice(xsTS), stream.FromSlice(ysTS),
				tupleSpan, core.Options{}, func(relation.Tuple) {})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nested-loop-baseline", func(b *testing.B) {
		small := 3000
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			baseline.NestedLoopSemijoin(xsTS[:small], ysTS[:small], tupleSpan, containTheta, nil, func(relation.Tuple) {})
		}
	})
}

// --- Table 2: Overlap join and semijoin. ---

func BenchmarkTable2_Overlap(b *testing.B) {
	const n = 20000
	xs := benchTuples(n, 5, relation.Order{relation.TSAsc})
	ys := benchTuples(n, 6, relation.Order{relation.TSAsc})
	b.Run("join", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := core.OverlapJoin(stream.FromSlice(xs), stream.FromSlice(ys),
				tupleSpan, core.Options{}, func(a, c relation.Tuple) {})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("semijoin", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := core.OverlapSemijoin(stream.FromSlice(xs), stream.FromSlice(ys),
				tupleSpan, core.Options{}, func(relation.Tuple) {})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Table 3 / Figure 7: self semijoins, optimal vs. suboptimal order. ---

func BenchmarkTable3_SelfSemijoin(b *testing.B) {
	const n = 50000
	asc := benchTuples(n, 7, relation.Order{relation.TSAsc, relation.TEAsc})
	desc := benchTuples(n, 7, relation.Order{relation.TSDesc, relation.TEDesc})

	b.Run("contained/TSasc-1-state-tuple", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := core.ContainedSelfSemijoin(stream.FromSlice(asc), tupleSpan,
				core.Options{}, func(relation.Tuple) {})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("contain/TSdesc-1-state-tuple", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := core.ContainSelfSemijoin(stream.FromSlice(desc), tupleSpan,
				core.Options{}, func(relation.Tuple) {})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("contain/TSasc-overlap-state", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := core.ContainSelfSemijoinTSAsc(stream.FromSlice(asc), tupleSpan,
				core.Options{}, func(relation.Tuple) {})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Figure 3: the conventional optimization gain on the Superstar tree. ---

func BenchmarkFigure3(b *testing.B) {
	db := engine.NewDB()
	db.MustRegister(workload.Faculty(workload.FacultyConfig{N: 20, Seed: 8}))
	tree, err := experiments.SuperstarTree(db)
	if err != nil {
		b.Fatal(err)
	}
	naive, err := optimizer.Optimize(tree, db, optimizer.Options{NoSemantic: true, NoConventional: true, NoRecognition: true})
	if err != nil {
		b.Fatal(err)
	}
	pushed, err := optimizer.Optimize(tree, db, optimizer.Options{NoSemantic: true, NoRecognition: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("naive-cartesian", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.Run(db, naive.Tree, engine.Options{ForceNestedLoop: true, ForceNoHash: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pushed-down", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.Run(db, pushed.Tree, engine.Options{ForceNestedLoop: true, ForceNoHash: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Figure 4: the grouped-sum stream processor. ---

func BenchmarkFigure4_GroupSum(b *testing.B) {
	emps := workload.Employees(1000, 100, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := stream.GroupSum(stream.FromSlice(emps),
			func(e workload.Employee) string { return e.Dept },
			func(e workload.Employee) int64 { return e.Salary })
		for {
			if _, ok := s.Next(); !ok {
				break
			}
		}
	}
}

// --- Figure 8 / Section 5: the three Superstar plans. ---

func BenchmarkFigure8_Superstar(b *testing.B) {
	db := engine.NewDB()
	fac := workload.Faculty(workload.FacultyConfig{N: 300, Continuous: true, Seed: 10})
	db.MustRegister(fac)
	if err := db.DeclareChronOrder(experiments.RankOrder(true)); err != nil {
		b.Fatal(err)
	}
	tree, err := experiments.SuperstarTree(db)
	if err != nil {
		b.Fatal(err)
	}
	planA, err := optimizer.Optimize(tree, db, optimizer.Options{NoSemantic: true, NoRecognition: true})
	if err != nil {
		b.Fatal(err)
	}
	planB, err := optimizer.Optimize(tree, db, optimizer.Options{ICs: db.ChronOrders()})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("planA-conventional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.Run(db, planA.Tree, engine.Options{ForceNestedLoop: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("planB-stream-semijoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.Run(db, planB.Tree, engine.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimizer-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := optimizer.Optimize(tree, db, optimizer.Options{ICs: db.ChronOrders()}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Section 4.2.4: Before operators. ---

func BenchmarkSection424_Before(b *testing.B) {
	const n = 20000
	xs := benchTuples(n, 11, relation.Order{relation.TEAsc})
	ys := benchTuples(n, 12, relation.Order{relation.TSAsc})
	b.Run("semijoin", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := core.BeforeSemijoin(stream.FromSlice(xs), stream.FromSlice(ys),
				tupleSpan, core.Options{}, func(relation.Tuple) {})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("join-sorted-suffix", func(b *testing.B) {
		// The join output is Θ(n²); use a small slice to keep the bench fast.
		xsSmall, ysSmall := xs[:1500], ys[:1500]
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			err := core.BeforeJoinSorted(stream.FromSlice(xsSmall), ysSmall,
				tupleSpan, core.Options{}, func(a, c relation.Tuple) { n++ })
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Section 4.1: the crossover between sorting-then-streaming and the
// nested loop as n grows. ---

func BenchmarkCrossover(b *testing.B) {
	for _, n := range []int{500, 2000, 8000} {
		xsU := benchTuples(n, 13, relation.Order{relation.TEAsc}) // "stored" in the useless order
		ysU := benchTuples(n, 14, relation.Order{relation.TEAsc})
		b.Run(fmt.Sprintf("stream-sort-first/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				xs := append([]relation.Tuple{}, xsU...)
				ys := append([]relation.Tuple{}, ysU...)
				relation.SortSpans(xs, tupleSpan, relation.Order{relation.TSAsc})
				relation.SortSpans(ys, tupleSpan, relation.Order{relation.TSAsc})
				err := core.ContainJoinTSTS(stream.FromSlice(xs), stream.FromSlice(ys),
					tupleSpan, core.Options{}, func(a, c relation.Tuple) {})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("nested-loop/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.NestedLoopJoin(xsU, ysU, tupleSpan, containTheta, nil, func(a, c relation.Tuple) {})
			}
		})
	}
}

// --- Event joins (the non-inequality operators, via merge). ---

func BenchmarkEventJoins(b *testing.B) {
	const n = 20000
	ts := workload.Tuples(workload.Config{N: n, Lambda: 5, MeanDur: 4, Seed: 15}, "t")
	xsTE := append([]relation.Tuple{}, ts...)
	relation.SortSpans(xsTE, tupleSpan, relation.Order{relation.TEAsc})
	ysTS := append([]relation.Tuple{}, ts...)
	relation.SortSpans(ysTS, tupleSpan, relation.Order{relation.TSAsc})
	xsTS := ysTS

	b.Run("meets", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := core.MeetsJoin(stream.FromSlice(xsTE), stream.FromSlice(ysTS),
				tupleSpan, core.Options{}, func(a, c relation.Tuple) {})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("equal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := core.EqualJoin(stream.FromSlice(xsTS), stream.FromSlice(ysTS),
				tupleSpan, core.Options{}, func(a, c relation.Tuple) {})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- The storage substrate: external sort passes. ---

func BenchmarkExternalSort(b *testing.B) {
	rel := relation.FromTuples("R", workload.Tuples(workload.Config{N: 20000, Lambda: 1, MeanDur: 10, Seed: 16}, "t"))
	less := func(a, c relation.Row) bool {
		return a.Span(rel.Schema).Start < c.Span(rel.Schema).Start
	}
	for _, mem := range []int{256, 100000} {
		b.Run(fmt.Sprintf("memRows=%d", mem), func(b *testing.B) {
			dir := b.TempDir()
			for i := 0; i < b.N; i++ {
				out, err := storage.ExternalSort(stream.FromSlice(rel.Rows), rel.Schema, less, mem, dir, nil)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := stream.Collect(out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Section 4.2.3 closing remark: the semijoin prefilter ablation. ---

func BenchmarkPrefilter(b *testing.B) {
	b.Run("report", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := experiments.Prefilter(10000, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Coalescing (the Time Sequence canonical form). ---

func BenchmarkCoalesce(b *testing.B) {
	ts := workload.Tuples(workload.Config{N: 50000, Lambda: 2, MeanDur: 6, Seed: 19}, "t")
	// Group by the value attribute, sorted by ValidFrom within groups.
	relation.SortSpans(ts, tupleSpan, relation.Order{relation.TSAsc})
	key := func(t relation.Tuple) string { return t.V.String() }
	grouped := make([]relation.Tuple, 0, len(ts))
	byKey := map[string][]relation.Tuple{}
	var order []string
	for _, t := range ts {
		k := key(t)
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], t)
	}
	for _, k := range order {
		grouped = append(grouped, byKey[k]...)
	}
	rewrap := func(t relation.Tuple, iv interval.Interval) relation.Tuple {
		t.Span = iv
		return t
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := core.Coalesce(stream.FromSlice(grouped), key, tupleSpan, rewrap,
			core.Options{}, func(relation.Tuple) {})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Transaction time: AsOf reconstruction (Section 6 future work). ---

func BenchmarkRollbackAsOf(b *testing.B) {
	store := rollback.NewStore("Faculty", workload.FacultySchema)
	fac := workload.Faculty(workload.FacultyConfig{N: 2000, Seed: 20})
	tx := interval.Time(1)
	for _, row := range fac.Rows {
		if err := store.Insert(tx, row); err != nil {
			b.Fatal(err)
		}
		tx++
	}
	// Delete a third of them.
	for i := 0; i < 2000; i += 3 {
		name := fmt.Sprintf("prof%04d", i)
		if _, err := store.Delete(tx, func(r relation.Row) bool {
			return r[0].AsString() == name
		}); err != nil {
			b.Fatal(err)
		}
		tx++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rel := store.AsOf(tx / 2); rel.Cardinality() == 0 {
			b.Fatal("empty reconstruction")
		}
	}
}

// --- The read-policy ablation (DESIGN.md decision 2): workspace of the
// λ-guided policy vs. the sweep on the same data. Reported via metrics as
// custom benchmark units. ---

func BenchmarkReadPolicyWorkspace(b *testing.B) {
	const n = 20000
	xs := benchTuples(n, 17, relation.Order{relation.TSAsc})
	ys := benchTuples(n, 18, relation.Order{relation.TSAsc})
	for _, policy := range []core.ReadPolicy{core.ReadSweep, core.ReadLambda} {
		b.Run(policy.String(), func(b *testing.B) {
			var ws int64
			for i := 0; i < b.N; i++ {
				probe := &metrics.Probe{}
				err := core.ContainJoinTSTS(stream.FromSlice(xs), stream.FromSlice(ys),
					tupleSpan, core.Options{Probe: probe, Policy: policy, LambdaX: 1, LambdaY: 1},
					func(a, c relation.Tuple) {})
				if err != nil {
					b.Fatal(err)
				}
				ws = probe.Workspace()
			}
			b.ReportMetric(float64(ws), "workspace-tuples")
		})
	}
}
