# Development targets. Everything is stdlib-only and offline.

GO ?= go

.PHONY: all build vet test bench report cover fmt

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One benchmark per paper table/figure (see DESIGN.md's experiment index).
bench:
	$(GO) test -bench=. -benchmem .

# The full experiment report: every table and figure of the paper,
# regenerated with workspace measurements.
report:
	$(GO) run ./cmd/tdbbench -n 4000 -faculty 200

cover:
	$(GO) test -cover ./...

fmt:
	gofmt -w .
