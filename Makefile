# Development targets. Everything is stdlib-only and offline.

GO ?= go

.PHONY: all build vet fmt-check lint lint-deep test race chaos bench bench-server bench-resilience report cover fmt bench-check bench-record bench-baseline

all: build vet fmt-check lint lint-deep test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails (listing the files) when anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# The repo-specific static-analysis pass (see internal/lint and the
# "Static analysis" section of DESIGN.md). Nonzero exit on findings.
lint:
	$(GO) run ./cmd/tdblint ./...

# The deep tier (dataflow + module-wide facts): hotpath-alloc,
# lock-order and failpoint-coverage, gated on the checked-in baseline.
# Regenerate the baseline with:
#   $(GO) run ./cmd/tdblint -deep -baseline tdblint.baseline.json -write-baseline ./...
lint-deep:
	$(GO) run ./cmd/tdblint -deep -baseline tdblint.baseline.json ./...

# Tier-1 gate: vet plus the full test suite.
test:
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The robustness drills: fault-injection, governor and breaker suites
# under the race detector, then the E24 degradation sweep.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Torn|Breaker|Governor|Leak' ./internal/engine/ ./internal/live/ ./internal/storage/ ./internal/fault/ ./internal/testutil/
	$(GO) run ./cmd/tdbbench -n 512 -chaos

# One benchmark per paper table/figure (see DESIGN.md's experiment index).
bench:
	$(GO) test -bench=. -benchmem .

# The E26 concurrent network-client sweep: an in-process protocol server
# queried by 1/8/64 database/sql clients through the public driver.
bench-server:
	$(GO) run ./cmd/tdbbench -n 1024 -serve -serve-json BENCH_SERVER.json

# The E27 wire-resilience recovery sweep: 1/8/64 driver subscriptions
# surviving scheduled delivery severs with exactly-once accounting.
bench-resilience:
	$(GO) run ./cmd/tdbbench -n 1024 -resilience -resilience-json BENCH_RESILIENCE.json

# The benchmark regression gate. BENCH_CONFIG must match the committed
# baseline exactly — a mismatch is a hard error, not a comparison.
BENCH_CONFIG = -n 256 -faculty 32 -seed 1

# Compare this machine's run against BENCH_BASELINE.json; nonzero exit
# on regression (CI runs this with -record too).
bench-check:
	$(GO) run ./cmd/tdbbench $(BENCH_CONFIG) -check

# Append a structured run record (git SHA, GOMAXPROCS, per-experiment
# wall times) to BENCH_HISTORY.jsonl.
bench-record:
	$(GO) run ./cmd/tdbbench $(BENCH_CONFIG) -record

# Re-seed the committed baseline from this machine (after a deliberate
# performance change; commit the result).
bench-baseline:
	$(GO) run ./cmd/tdbbench $(BENCH_CONFIG) -write-baseline

# The full experiment report: every table and figure of the paper,
# regenerated with workspace measurements.
report:
	$(GO) run ./cmd/tdbbench -n 4000 -faculty 200

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

fmt:
	gofmt -w .
