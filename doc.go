// Package tdb is a reproduction of "Query Processing for Temporal
// Databases" (T.Y. Cliff Leung and Richard R. Muntz, UCLA CSD-890024 /
// ICDE 1990): stream processing algorithms for temporal join and semijoin
// operators, the sort-order/workspace/passes tradeoff analysis of the
// paper's Tables 1–3, and semantic query optimization over temporal
// integrity constraints, embedded in a small temporal relational engine
// with a Quel-style query language.
//
// The implementation lives under internal/: see internal/core for the
// paper's algorithms, internal/optimizer for the semantic pass, and
// internal/experiments for the per-table/figure reproduction harnesses.
// The benchmarks in bench_test.go regenerate every table and figure; the
// runnable reports live in cmd/tdbbench.
package tdb
